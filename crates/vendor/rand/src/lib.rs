//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate vendors the small slice of the `rand` 0.8 API the workspace
//! actually uses: [`Rng::gen_range`] / [`Rng::gen_bool`] over integer
//! ranges, [`SeedableRng::seed_from_u64`], a deterministic [`rngs::StdRng`]
//! and the [`seq::SliceRandom`] shuffle/choose helpers.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid for simulations and fully deterministic per seed, which is all the
//! experiments and tests rely on.

#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

/// A source of randomness.
///
/// Unlike the real `rand` crate there is no `RngCore`/`Rng` split: the one
/// required method is [`Rng::next_u64`] and everything else is derived.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value in the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        // 53 uniformly random mantissa bits, the standard float-in-[0,1) trick.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform sampling below `bound` without modulo bias (Lemire rejection).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * bound as u128) >> 64) as u64;
        let lo = x.wrapping_mul(bound);
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return hi;
        }
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            let s2 = s2 ^ t;
            let s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, Rng};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u16..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(11);
        let r = &mut rng;
        let _ = takes_generic(r);
        let _ = takes_generic(&mut StdRng::seed_from_u64(0));
    }
}
