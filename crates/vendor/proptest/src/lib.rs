//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of the proptest 1.x API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (`fn name(pattern in strategy, ...) { body }`);
//! * [`strategy::Strategy`] with `prop_map`, integer-range and tuple
//!   strategies, [`strategy::Just`] and [`prop_oneof!`];
//! * [`arbitrary::any`] for unsigned integers and `bool`;
//! * [`collection::vec`] with fixed or ranged sizes;
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Each generated test runs a fixed number of deterministic cases (seeded
//! from the test's name), so failures are reproducible without a persisted
//! regression file.  Shrinking is not implemented — on failure the panic
//! message reports the raw failing case via the standard assertion text.

#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

/// Number of random cases each [`proptest!`] test executes.
pub const NUM_CASES: usize = 64;

pub mod test_runner {
    //! The deterministic RNG driving the generated tests.

    /// Per-block configuration, set with `#![proptest_config(...)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of cases each test in the block runs.
        pub cases: usize,
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: usize) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: crate::NUM_CASES,
            }
        }
    }

    /// A self-contained xorshift-based generator seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator whose stream depends only on `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h | 1, // xorshift must not start at zero
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            // xorshift64* — plenty for test-case generation.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// A uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift uniform sampling; the tiny bias is irrelevant
            // for test-case generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Generates values of an associated type from a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );

    /// Uniform choice between boxed strategies (behind [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over the given non-empty option list.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    /// Boxes a strategy, unifying heterogeneous options for [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub mod arbitrary {
    //! `any::<T>()` strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full value domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A fixed or ranged collection size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced module tree, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item expands to a `#[test]` running [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_config: $crate::test_runner::Config = $config;
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..__proptest_config.cases {
                    let _ = __proptest_case;
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn parity() -> impl Strategy<Value = u32> {
        prop_oneof![Just(0u32), (1u32..100).prop_map(|x| x * 2 + 1)]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 5u16..=9) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (1usize..4, 1usize..4), p in parity()) {
            prop_assert!(a * b <= 9, "a={} b={}", a, b);
            prop_assert!(p == 0 || p % 2 == 1);
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(0u8..5, 2..6), w in prop::collection::vec(any::<u64>(), 4)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
            for x in v {
                prop_assert!(x < 5);
            }
        }
    }

    #[test]
    fn deterministic_streams_differ_by_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("a");
        let mut a2 = TestRng::deterministic("a");
        let mut b = TestRng::deterministic("b");
        assert_eq!(a.next_u64(), a2.next_u64());
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
