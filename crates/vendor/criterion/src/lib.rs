//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of the criterion 0.5 API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Throughput::Elements`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros (both forms).
//!
//! Measurement is a straightforward warm-up + timed-batch loop: no
//! statistics beyond the mean, no plots, no regression reports.  The
//! numbers are honest wall-clock means and are what the workspace's
//! throughput acceptance checks read.

#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` for benches that import it
/// from here instead of `std::hint`.
pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration applied before each measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; this harness sizes its measurement
    /// by wall-clock windows, not sample counts, so the value is unused.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let (warm_up, measurement) = (self.warm_up, self.measurement);
        run_one(&name.to_string(), warm_up, measurement, None, &mut f);
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; unused, see [`Criterion::sample_size`].
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.criterion.warm_up,
            self.criterion.measurement,
            self.throughput,
            &mut f,
        );
    }

    /// Runs a benchmark that receives a reference to its input.
    pub fn bench_with_input<I, F>(&mut self, id: impl fmt::Display, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean time per iteration of the last `iter` call.
    mean: Option<Duration>,
}

impl Bencher {
    /// Calls `f` repeatedly, first for the warm-up window and then for the
    /// measurement window, and records the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.warm_up;
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if Instant::now() >= warm_deadline {
                // Size batches so each takes roughly 1/20 of the window.
                if elapsed < self.measurement / 100 {
                    batch = batch.saturating_mul(2);
                    continue;
                }
                break;
            }
            if elapsed < Duration::from_millis(1) {
                batch = batch.saturating_mul(2);
            }
        }

        let mut iters: u64 = 0;
        let deadline = Instant::now() + self.measurement;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
            if Instant::now() >= deadline {
                break;
            }
        }
        let elapsed = start.elapsed();
        // Divide in f64: a u32 cast of the iteration count would truncate
        // (and can hit zero) for very cheap benchmark bodies.
        self.mean = Some(Duration::from_secs_f64(
            elapsed.as_secs_f64() / iters.max(1) as f64,
        ));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        warm_up,
        measurement,
        mean: None,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => {
            let per_iter = mean.as_secs_f64();
            let rate = throughput
                .map(|t| match t {
                    Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / per_iter),
                    Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / per_iter),
                })
                .unwrap_or_default();
            println!("bench: {label:<56} {:>12.3?}/iter{rate}", mean);
        }
        None => println!("bench: {label:<56} (no measurement)"),
    }
}

/// Per-iteration workload declaration used for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A structured benchmark identifier, `function_name/parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An identifier with a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_benches_run() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        group.sample_size(10);
        let mut count = 0u64;
        group.bench_function(BenchmarkId::new("count", 10), |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter("in"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        assert!(count > 0);
    }

    criterion_group!(plain_group, noop_bench);
    criterion_group! {
        name = configured_group;
        config = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        let mut c = std::mem::replace(
            c,
            Criterion::default()
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(2)),
        );
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn macro_generated_groups_run() {
        plain_group();
        configured_group();
    }
}
