//! The experiment abstraction and registry.

use crate::table::Table;

/// How much work an experiment should do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Small parameter ranges, suitable for unit tests and CI.
    Quick,
    /// The full sweeps reported in EXPERIMENTS.md.
    Full,
}

impl Mode {
    /// Scales a size list: `Quick` keeps only the first few entries.
    pub fn take<T: Clone>(&self, items: &[T], quick_count: usize) -> Vec<T> {
        match self {
            Mode::Quick => items.iter().take(quick_count).cloned().collect(),
            Mode::Full => items.to_vec(),
        }
    }
}

/// The outcome of one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentRecord {
    /// Stable identifier (`fig1`, `thm7`, …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// What the paper claims (the statement being reproduced).
    pub paper_claim: String,
    /// The measured table.
    pub table: Table,
    /// Free-form observations (differences, caveats, reproduction notes).
    pub observations: Vec<String>,
    /// Whether the measurement is consistent with the paper's claim.
    pub passed: bool,
}

impl ExperimentRecord {
    /// Renders the record as a markdown section.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## `{}` — {}\n\n", self.id, self.title));
        out.push_str(&format!("**Paper claim.** {}\n\n", self.paper_claim));
        out.push_str(&format!(
            "**Status.** {}\n\n",
            if self.passed {
                "reproduced"
            } else {
                "NOT reproduced (see observations)"
            }
        ));
        out.push_str(&self.table.render_markdown());
        out.push('\n');
        if !self.observations.is_empty() {
            out.push_str("**Observations.**\n");
            for obs in &self.observations {
                out.push_str(&format!("- {obs}\n"));
            }
            out.push('\n');
        }
        out
    }
}

/// A reproducible experiment tied to one figure, theorem or proposition of
/// the paper.
pub trait Experiment: Send + Sync {
    /// Stable identifier used on the command line (`fig1`, `thm7`, …).
    fn id(&self) -> &'static str;
    /// Human-readable title.
    fn title(&self) -> &'static str;
    /// Runs the experiment.
    fn run(&self, mode: Mode) -> ExperimentRecord;
}

/// All experiments, in the order they appear in the paper.
pub fn all_experiments() -> Vec<Box<dyn Experiment>> {
    use crate::experiments::*;
    vec![
        Box::new(figures::Figure1),
        Box::new(figures::Figure2),
        Box::new(figures::Figure3),
        Box::new(figures::Figure4),
        Box::new(figures::Figure5),
        Box::new(figures::Figure6),
        Box::new(bounds::Theorem1),
        Box::new(bounds::Proposition3),
        Box::new(constructions::Theorem2),
        Box::new(bounds::Theorem3),
        Box::new(constructions::Theorem4),
        Box::new(bounds::Theorem5),
        Box::new(constructions::Theorem6),
        Box::new(rounds::Theorem7),
        Box::new(rounds::Theorem8),
        Box::new(baselines::Propositions1And2),
        Box::new(tss_ext::ScaleFreeExtension),
        Box::new(engine_lanes::EngineLanes),
    ]
}

/// Runs an experiment by identifier.
pub fn run_by_id(id: &str, mode: Mode) -> Option<ExperimentRecord> {
    all_experiments()
        .into_iter()
        .find(|e| e.id() == id)
        .map(|e| e.run(mode))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_unique_ids_in_paper_order() {
        let experiments = all_experiments();
        assert_eq!(experiments.len(), 18);
        let ids: Vec<&str> = experiments.iter().map(|e| e.id()).collect();
        let unique: std::collections::HashSet<&&str> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len(), "duplicate experiment ids");
        assert!(ids.contains(&"fig5"));
        assert!(ids.contains(&"thm8"));
        assert!(ids.contains(&"prop12"));
    }

    #[test]
    fn unknown_id_returns_none() {
        assert!(run_by_id("does-not-exist", Mode::Quick).is_none());
    }

    #[test]
    fn mode_take_limits_quick_runs() {
        let items = vec![1, 2, 3, 4, 5];
        assert_eq!(Mode::Quick.take(&items, 2), vec![1, 2]);
        assert_eq!(Mode::Full.take(&items, 2), items);
    }

    #[test]
    fn record_render_includes_all_sections() {
        let mut table = Table::new(vec!["a"]);
        table.add_row(vec!["1"]);
        let record = ExperimentRecord {
            id: "fig1",
            title: "test",
            paper_claim: "something".into(),
            table,
            observations: vec!["a note".into()],
            passed: true,
        };
        let text = record.render();
        assert!(text.contains("## `fig1`"));
        assert!(text.contains("reproduced"));
        assert!(text.contains("a note"));
    }
}
