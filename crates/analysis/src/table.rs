//! Minimal text-table rendering for experiment output.

/// A simple text table with a header row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row; missing cells are padded with empty strings, extra cells
    /// are kept (the renderer widens the table).
    pub fn add_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The header row.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for row in &self.rows {
            measure(&mut widths, row);
        }

        let render_row = |row: &[String], widths: &[usize]| -> String {
            let mut out = String::from("|");
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                out.push(' ');
                out.push_str(cell);
                out.push_str(&" ".repeat(width - cell.chars().count()));
                out.push_str(" |");
            }
            out
        };

        let mut out = String::new();
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        out.push('|');
        for width in &widths {
            out.push_str(&"-".repeat(width + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown (same layout, usable
    /// directly in EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        self.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["size", "predicted", "measured"]);
        t.add_row(vec!["5x5", "3", "3"]);
        t.add_row(vec!["128x128", "127", "127"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("predicted"));
        assert!(lines[1].starts_with("|-"));
        // all rows have the same width
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["1"]);
        t.add_row(vec!["1", "2", "3"]);
        let s = t.render();
        assert!(s.contains('3'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.headers().len(), 2);
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
        assert_eq!(t.render(), t.render_markdown());
    }
}
