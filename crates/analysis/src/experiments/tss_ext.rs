//! Experiment `tss`: the paper's future-work question — the SMP-Protocol
//! and threshold diffusion on scale-free networks.
//!
//! The paper's conclusions propose studying the SMP-Protocol on scale-free
//! networks and comparing with other algorithmic models of social
//! influence.  This experiment builds Barabási–Albert networks, seeds them
//! with the standard TSS heuristics, and measures (a) the linear-threshold
//! spread and (b) the SMP-Protocol spread from the same seeds, reporting
//! how much of the network each seed-selection strategy eventually
//! convinces.

use crate::experiment::{Experiment, ExperimentRecord, Mode};
use crate::table::Table;
use ctori_coloring::Color;
use ctori_topology::Topology;
use ctori_tss::diffusion::{simple_majority_thresholds, smp_on_graph, spread};
use ctori_tss::generators::barabasi_albert;
use ctori_tss::selection::{greedy_seeds, highest_degree_seeds, random_seeds};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `tss`: scale-free extension experiment.
pub struct ScaleFreeExtension;

impl Experiment for ScaleFreeExtension {
    fn id(&self) -> &'static str {
        "tss"
    }
    fn title(&self) -> &'static str {
        "Future work: SMP-Protocol and threshold diffusion on scale-free networks"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        let (nodes, budget_fractions): (usize, Vec<f64>) = match mode {
            Mode::Quick => (300, vec![0.05, 0.10]),
            Mode::Full => (3000, vec![0.02, 0.05, 0.10, 0.20]),
        };
        let mut rng = StdRng::seed_from_u64(99);
        let graph = barabasi_albert(nodes, 3, &mut rng);
        let thresholds = simple_majority_thresholds(&graph);
        let k = Color::new(1);
        let others: Vec<Color> = (2..=9).map(Color::new).collect();

        let mut table = Table::new(vec![
            "seed budget",
            "strategy",
            "threshold spread",
            "SMP spread",
        ]);
        let mut passed = true;
        let mut degree_beats_random = true;

        for &fraction in &budget_fractions {
            let budget = ((nodes as f64) * fraction).round() as usize;
            let degree = highest_degree_seeds(&graph, budget);
            let random = random_seeds(&graph, budget, &mut rng);
            // The greedy heuristic is O(n^2) spreads; keep it to the small
            // budgets so the Full run stays tractable.
            let strategies: Vec<(&str, Vec<ctori_topology::NodeId>)> =
                if budget <= nodes / 20 && mode == Mode::Full || mode == Mode::Quick {
                    vec![
                        ("highest degree", degree.clone()),
                        ("greedy", greedy_seeds(&graph, &thresholds, budget.min(40))),
                        ("random", random.clone()),
                    ]
                } else {
                    vec![
                        ("highest degree", degree.clone()),
                        ("random", random.clone()),
                    ]
                };

            let mut spreads = std::collections::HashMap::new();
            for (name, seeds) in &strategies {
                let lt = spread(&graph, &thresholds, seeds);
                let (smp_count, _rounds, _mono) = smp_on_graph(&graph, seeds, k, &others);
                spreads.insert(*name, lt.activated_count);
                table.add_row(vec![
                    format!("{budget} ({:.0}%)", fraction * 100.0),
                    (*name).to_string(),
                    format!("{} / {}", lt.activated_count, graph.node_count()),
                    format!("{} / {}", smp_count, graph.node_count()),
                ]);
                // sanity: spreads never shrink below the seed budget
                passed &= lt.activated_count >= seeds.len().min(graph.node_count());
            }
            if let (Some(&d), Some(&r)) = (spreads.get("highest degree"), spreads.get("random")) {
                if d < r {
                    degree_beats_random = false;
                }
            }
        }

        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim: "Future work of the paper: study the SMP-Protocol on scale-free networks \
                          and compare with other models of social influence (no quantitative \
                          claim is made in the paper)."
                .into(),
            table,
            observations: vec![
                format!(
                    "hub-based seeding {} uniformly random seeding on the swept budgets",
                    if degree_beats_random {
                        "dominates"
                    } else {
                        "does not always dominate"
                    }
                ),
                "scale-free inputs are synthetic Barabási–Albert graphs (see the substitution \
                 note in DESIGN.md)."
                    .into(),
            ],
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tss_quick_runs_and_passes() {
        let record = ScaleFreeExtension.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
        assert!(record.table.len() >= 4);
    }
}
