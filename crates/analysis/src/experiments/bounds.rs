//! Experiments `thm1`, `thm3`, `thm5`, `prop3`: the lower bounds.
//!
//! Each lower bound is checked two ways:
//!
//! * **exhaustively** on small tori — no monotone dynamo below the bound
//!   exists, over all seed placements and all colourings of the remaining
//!   vertices (Section III's claim made computational);
//! * **constructively** across a sweep of sizes — the matching construction
//!   of Theorem 2/4/6 achieves the bound exactly (tightness).

use crate::experiment::{Experiment, ExperimentRecord, Mode};
use crate::table::Table;
use ctori_coloring::{Color, Palette};
use ctori_core::bounds;
use ctori_core::construct::minimum_dynamo;
use ctori_core::search::{search_dynamo_of_size, verify_lower_bound, SearchConfig};
use ctori_topology::{Torus, TorusKind};

fn k() -> Color {
    Color::new(1)
}

fn exhaustive_sizes(kind: TorusKind, mode: Mode) -> Vec<(usize, usize)> {
    match (kind, mode) {
        // The 3x3 serpentinus contains triangles (three mutually adjacent
        // vertices), which admit a monotone dynamo of size 3 — one below
        // the Theorem-5 bound.  The exhaustive check therefore uses a
        // triangle-free size; the anomaly is reported as an observation.
        (TorusKind::TorusSerpentinus, Mode::Quick) => vec![(4, 3)],
        (TorusKind::TorusSerpentinus, Mode::Full) => vec![(4, 3)],
        (_, Mode::Quick) => vec![(3, 3)],
        (_, Mode::Full) => vec![(3, 3), (3, 4)],
    }
}

fn bound_experiment(
    id: &'static str,
    title: &'static str,
    kind: TorusKind,
    claim: String,
    mode: Mode,
) -> ExperimentRecord {
    let mut table = Table::new(vec![
        "torus",
        "bound",
        "exhaustive: none below bound",
        "construction size",
        "tight",
    ]);
    let mut passed = true;
    let mut observations = vec![
        "exhaustive verification enumerates every seed placement and every colouring of the \
         remaining vertices over a 4-colour palette, with Lemma-1/Lemma-2 pruning."
            .into(),
    ];
    if kind == TorusKind::TorusSerpentinus {
        observations.push(
            "reproduction note: on the 3x3 torus serpentinus the chained wrap-around edges create \
             triangles, and an exhaustive search finds a monotone dynamo of size 3 — one below \
             the min(m,n)+1 bound.  The bound holds from triangle-free sizes (m >= 4) onwards, \
             which is what the table verifies."
                .into(),
        );
    }

    for (m, n) in exhaustive_sizes(kind, mode) {
        let torus = Torus::new(kind, m, n);
        let bound = bounds::lower_bound(kind, m, n);
        let palette = Palette::new(4);
        let none_below = verify_lower_bound(&torus, k(), palette, bound);
        let at_bound = match minimum_dynamo(kind, m, n, k()) {
            Ok(built) => built.seed_size() == bound,
            Err(_) => {
                search_dynamo_of_size(&torus, k(), bound, &SearchConfig::monotone(Palette::new(4)))
                    .found()
            }
        };
        passed &= none_below && at_bound;
        table.add_row(vec![
            format!("{kind} {m}x{n}"),
            bound.to_string(),
            none_below.to_string(),
            if at_bound {
                format!("{bound} (witness)")
            } else {
                "not found".to_string()
            },
            (none_below && at_bound).to_string(),
        ]);
    }

    // Constructive tightness on larger sizes.
    let sweep: Vec<(usize, usize)> = match mode {
        Mode::Quick => vec![(6, 6)],
        Mode::Full => vec![(6, 6), (9, 9), (12, 9), (9, 12), (15, 15)],
    };
    for (m, n) in sweep {
        let bound = bounds::lower_bound(kind, m, n);
        match minimum_dynamo(kind, m, n, k()) {
            Ok(built) => {
                let tight = built.seed_size() == bound;
                passed &= tight;
                table.add_row(vec![
                    format!("{kind} {m}x{n}"),
                    bound.to_string(),
                    "(not exhaustively checked)".to_string(),
                    built.seed_size().to_string(),
                    tight.to_string(),
                ]);
            }
            Err(e) => {
                passed = false;
                table.add_row(vec![
                    format!("{kind} {m}x{n}"),
                    bound.to_string(),
                    "-".to_string(),
                    format!("construction failed: {e}"),
                    "false".to_string(),
                ]);
            }
        }
    }

    ExperimentRecord {
        id,
        title,
        paper_claim: claim,
        table,
        observations,
        passed,
    }
}

/// `thm1`: toroidal-mesh lower bound `m + n − 2`.
pub struct Theorem1;

impl Experiment for Theorem1 {
    fn id(&self) -> &'static str {
        "thm1"
    }
    fn title(&self) -> &'static str {
        "Theorem 1: |Sk| >= m + n - 2 on the toroidal mesh"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        bound_experiment(
            self.id(),
            self.title(),
            TorusKind::ToroidalMesh,
            "A monotone dynamo of a coloured m x n toroidal mesh has at least m + n − 2 vertices, \
             and the bound is tight."
                .into(),
            mode,
        )
    }
}

/// `thm3`: torus-cordalis lower bound `n + 1`.
pub struct Theorem3;

impl Experiment for Theorem3 {
    fn id(&self) -> &'static str {
        "thm3"
    }
    fn title(&self) -> &'static str {
        "Theorem 3: |Sk| >= n + 1 on the torus cordalis"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        bound_experiment(
            self.id(),
            self.title(),
            TorusKind::TorusCordalis,
            "A monotone dynamo of a coloured m x n torus cordalis has at least n + 1 vertices, \
             and the bound is tight."
                .into(),
            mode,
        )
    }
}

/// `thm5`: torus-serpentinus lower bound `min(m, n) + 1`.
pub struct Theorem5;

impl Experiment for Theorem5 {
    fn id(&self) -> &'static str {
        "thm5"
    }
    fn title(&self) -> &'static str {
        "Theorem 5: |Sk| >= min(m, n) + 1 on the torus serpentinus"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        bound_experiment(
            self.id(),
            self.title(),
            TorusKind::TorusSerpentinus,
            "A monotone dynamo of a coloured m x n torus serpentinus has at least min(m, n) + 1 \
             vertices, and the bound is tight."
                .into(),
            mode,
        )
    }
}

/// `prop3`: colour-count necessity for minimum-size dynamos.
pub struct Proposition3;

impl Experiment for Proposition3 {
    fn id(&self) -> &'static str {
        "prop3"
    }
    fn title(&self) -> &'static str {
        "Proposition 3: minimum-size dynamos need |C| >= min(m, n) colours (for min(m,n) <= 3)"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        let mut table = Table::new(vec![
            "torus",
            "seed budget (m + n - 2)",
            "colours",
            "monotone dynamo exists",
        ]);
        let mut passed = true;

        // N = 3 case: with two colours no minimum-size monotone dynamo
        // exists, with three (or more) it does.
        let cases: Vec<(usize, usize, u16, bool)> = match mode {
            Mode::Quick => vec![(3, 3, 2, false), (3, 3, 4, true)],
            Mode::Full => vec![
                (3, 3, 2, false),
                (3, 3, 3, true),
                (3, 3, 4, true),
                (3, 4, 2, false),
            ],
        };
        for (m, n, colors, expected) in cases {
            let torus = ctori_topology::toroidal_mesh(m, n);
            let budget = bounds::toroidal_mesh_lower_bound(m, n);
            let config = SearchConfig::monotone(Palette::new(colors));
            let mut found = false;
            for size in 1..=budget {
                if search_dynamo_of_size(&torus, Color::new(colors), size, &config).found() {
                    found = true;
                    break;
                }
            }
            passed &= found == expected;
            table.add_row(vec![
                format!("toroidal mesh {m}x{n}"),
                budget.to_string(),
                colors.to_string(),
                found.to_string(),
            ]);
        }

        // The formula itself.
        let mut formula = String::from("required colours by Prop. 3: ");
        for nmin in 2..=4 {
            formula.push_str(&format!(
                "min(m,n)={} -> {}; ",
                nmin,
                bounds::prop3_minimum_colors(nmin, nmin)
            ));
        }

        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim: "If a minimum-size dynamo exists then |C| >= N for 1 < N <= 3, where \
                          N = min(m, n); two colours are not enough when N = 3."
                .into(),
            table,
            observations: vec![formula],
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_quick_reproduces() {
        let record = Theorem1.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
    }

    #[test]
    fn theorem3_quick_reproduces() {
        let record = Theorem3.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
    }

    #[test]
    fn theorem5_quick_reproduces() {
        let record = Theorem5.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
    }

    #[test]
    fn proposition3_quick_reproduces() {
        let record = Proposition3.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
    }
}
