//! One module per group of paper artefacts.

pub mod baselines;
pub mod bounds;
pub mod constructions;
pub mod figures;
pub mod rounds;
pub mod tss_ext;
