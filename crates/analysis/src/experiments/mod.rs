//! One module per group of paper artefacts.

pub mod baselines;
pub mod bounds;
pub mod constructions;
pub mod engine_lanes;
pub mod figures;
pub mod rounds;
pub mod tss_ext;
