//! Experiments `thm2`, `thm4`, `thm6`: the minimum-dynamo constructions.
//!
//! For every swept size the experiment builds the construction, machine
//! checks the theorem hypotheses, verifies by simulation that the result is
//! a *monotone* dynamo, and records the seed size (which must equal the
//! lower bound), the number of colours used, and the filler strategy.

use crate::experiment::{Experiment, ExperimentRecord, Mode};
use crate::table::Table;
use ctori_coloring::Color;
use ctori_core::bounds;
use ctori_core::construct::minimum_dynamo;
use ctori_core::dynamo::verify_dynamo;
use ctori_core::hypotheses::check_hypotheses;
use ctori_topology::TorusKind;

fn k() -> Color {
    Color::new(1)
}

fn construction_experiment(
    id: &'static str,
    title: &'static str,
    kind: TorusKind,
    claim: String,
    sizes: Vec<(usize, usize)>,
) -> ExperimentRecord {
    let mut table = Table::new(vec![
        "torus",
        "lower bound",
        "seed size",
        "colours",
        "filler",
        "hypotheses hold",
        "monotone dynamo",
        "rounds",
    ]);
    let mut passed = true;
    let mut observations = Vec::new();

    for (m, n) in sizes {
        let bound = bounds::lower_bound(kind, m, n);
        match minimum_dynamo(kind, m, n, k()) {
            Ok(built) => {
                let hypotheses_ok =
                    check_hypotheses(built.torus(), built.coloring(), k()).is_empty();
                let report = verify_dynamo(built.torus(), built.coloring(), k());
                let ok = hypotheses_ok && report.is_monotone_dynamo() && built.seed_size() == bound;
                passed &= ok;
                table.add_row(vec![
                    format!("{kind} {m}x{n}"),
                    bound.to_string(),
                    built.seed_size().to_string(),
                    built.colors_used().to_string(),
                    built.filler().to_string(),
                    hypotheses_ok.to_string(),
                    report.is_monotone_dynamo().to_string(),
                    report.rounds.to_string(),
                ]);
                if built.colors_used() > 4 {
                    observations.push(format!(
                        "{m}x{n}: our filler needed {} colours (the paper claims 4 suffice; its \
                         Figure-2 pattern is not recoverable from the text, see DESIGN.md)",
                        built.colors_used()
                    ));
                }
            }
            Err(e) => {
                passed = false;
                table.add_row(vec![
                    format!("{kind} {m}x{n}"),
                    bound.to_string(),
                    format!("construction failed: {e}"),
                    "-".into(),
                    "-".into(),
                    "false".into(),
                    "false".into(),
                    "-".into(),
                ]);
            }
        }
    }

    ExperimentRecord {
        id,
        title,
        paper_claim: claim,
        table,
        observations,
        passed,
    }
}

/// `thm2`: the toroidal-mesh construction.
pub struct Theorem2;

impl Experiment for Theorem2 {
    fn id(&self) -> &'static str {
        "thm2"
    }
    fn title(&self) -> &'static str {
        "Theorem 2: minimum-size monotone dynamo construction on the toroidal mesh"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        let sizes: Vec<(usize, usize)> = match mode {
            Mode::Quick => vec![(6, 6), (5, 7)],
            Mode::Full => vec![
                (6, 6),
                (9, 9),
                (12, 12),
                (9, 15),
                (15, 9),
                (5, 5),
                (7, 7),
                (8, 11),
                (24, 24),
                (33, 48),
                (64, 63),
            ],
        };
        construction_experiment(
            self.id(),
            self.title(),
            TorusKind::ToroidalMesh,
            "With |C| >= 4, a k-coloured column plus a row with one vertex less (and forest / \
             distinct-neighbour conditions on the other colours) is a minimum-size monotone \
             dynamo of size m + n - 2."
                .into(),
            sizes,
        )
    }
}

/// `thm4`: the torus-cordalis construction.
pub struct Theorem4;

impl Experiment for Theorem4 {
    fn id(&self) -> &'static str {
        "thm4"
    }
    fn title(&self) -> &'static str {
        "Theorem 4: minimum-size monotone dynamo construction on the torus cordalis"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        let sizes: Vec<(usize, usize)> = match mode {
            Mode::Quick => vec![(6, 6), (5, 6)],
            Mode::Full => vec![
                (6, 6),
                (9, 9),
                (12, 12),
                (8, 9),
                (16, 12),
                (5, 5),
                (7, 8),
                (24, 24),
                (32, 33),
            ],
        };
        construction_experiment(
            self.id(),
            self.title(),
            TorusKind::TorusCordalis,
            "With |C| >= 4, a whole k-coloured row plus one vertex of the next row is a \
             minimum-size monotone dynamo of size n + 1."
                .into(),
            sizes,
        )
    }
}

/// `thm6`: the torus-serpentinus construction.
pub struct Theorem6;

impl Experiment for Theorem6 {
    fn id(&self) -> &'static str {
        "thm6"
    }
    fn title(&self) -> &'static str {
        "Theorem 6: minimum-size monotone dynamo construction on the torus serpentinus"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        let sizes: Vec<(usize, usize)> = match mode {
            Mode::Quick => vec![(6, 6), (5, 7)],
            Mode::Full => vec![
                (6, 6),
                (9, 9),
                (12, 12),
                (12, 9),
                (9, 12),
                (5, 5),
                (7, 9),
                (8, 6),
                (24, 24),
                (32, 33),
            ],
        };
        construction_experiment(
            self.id(),
            self.title(),
            TorusKind::TorusSerpentinus,
            "With |C| >= 4, a whole k-coloured row (or column, whichever is shorter) plus one \
             adjacent vertex is a minimum-size monotone dynamo of size min(m, n) + 1."
                .into(),
            sizes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem2_quick_reproduces() {
        let record = Theorem2.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
    }

    #[test]
    fn theorem4_quick_reproduces() {
        let record = Theorem4.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
    }

    #[test]
    fn theorem6_quick_reproduces() {
        let record = Theorem6.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
    }
}
