//! Experiments `thm7` and `thm8`: round-complexity of the constructions.
//!
//! For every swept size two measurements are taken:
//!
//! * **ideal** — the seed of the theorem with every other vertex given a
//!   pairwise-distinct colour, so the dynamics reduce to pure threshold-2
//!   growth.  This isolates the structural propagation time the formulas of
//!   Theorems 7 and 8 describe (and is exactly how Figures 5 and 6 are
//!   produced).
//! * **construction** — the actual Theorem-2/4/6 four-or-five-colour
//!   construction.  A periodic filler can delay individual vertices by a
//!   round (a 2–2 tie with the vertex's own colour), so the measured value
//!   may exceed the formula slightly; the experiment records the delta.

use crate::experiment::{Experiment, ExperimentRecord, Mode};
use crate::table::Table;
use ctori_coloring::Color;
use ctori_core::construct::cordalis::theorem4_seed;
use ctori_core::construct::mesh::theorem2_seed_column_row;
use ctori_core::construct::minimum_dynamo;
use ctori_core::construct::serpentinus::{theorem6_seed_column, theorem6_seed_row};
use ctori_core::dynamo::verify_dynamo;
use ctori_core::figures::ideal_rounds_for_partial;
use ctori_core::rounds::{theorem7_rounds, theorem8_rounds};
use ctori_topology::{Torus, TorusKind};

fn k() -> Color {
    Color::new(1)
}

struct Measurement {
    predicted: i64,
    /// Ideal propagation from the full cross (row 0 and column 0 entirely
    /// k) — the configuration of Figure 5, only meaningful on the mesh.
    ideal_cross: Option<usize>,
    /// Ideal propagation from the theorem's own seed.
    ideal: Option<usize>,
    /// The actual Theorem-2/4/6 construction.
    constructed: Option<usize>,
}

fn measure(kind: TorusKind, m: usize, n: usize) -> Measurement {
    let torus = Torus::new(kind, m, n);
    let partial = match kind {
        TorusKind::ToroidalMesh => theorem2_seed_column_row(&torus, k()),
        TorusKind::TorusCordalis => theorem4_seed(&torus, k()),
        TorusKind::TorusSerpentinus => {
            if n <= m {
                theorem6_seed_row(&torus, k())
            } else {
                theorem6_seed_column(&torus, k())
            }
        }
        other => panic!("no theorem seed for {other}"),
    };
    let ideal = ideal_rounds_for_partial(&torus, &partial, k());
    let ideal_cross = if kind == TorusKind::ToroidalMesh {
        let cross = ctori_coloring::ColoringBuilder::unset(&torus)
            .row(0, k())
            .column(0, k())
            .build_partial();
        ideal_rounds_for_partial(&torus, &cross, k())
    } else {
        None
    };
    let constructed = minimum_dynamo(kind, m, n, k()).ok().and_then(|built| {
        let report = verify_dynamo(built.torus(), built.coloring(), k());
        report.is_monotone_dynamo().then_some(report.rounds)
    });
    let predicted = match kind {
        TorusKind::ToroidalMesh => theorem7_rounds(m, n),
        _ => theorem8_rounds(m, n),
    };
    Measurement {
        predicted,
        ideal_cross,
        ideal,
        constructed,
    }
}

fn fmt_opt(value: Option<usize>) -> String {
    value.map(|v| v.to_string()).unwrap_or_else(|| "-".into())
}

/// `thm7`: round complexity on the toroidal mesh.
pub struct Theorem7;

impl Experiment for Theorem7 {
    fn id(&self) -> &'static str {
        "thm7"
    }
    fn title(&self) -> &'static str {
        "Theorem 7: rounds to convergence of the Theorem-2 dynamo on the toroidal mesh"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        let square: Vec<(usize, usize)> = match mode {
            Mode::Quick => vec![(6, 6), (9, 9)],
            Mode::Full => vec![
                (6, 6),
                (9, 9),
                (12, 12),
                (15, 15),
                (21, 21),
                (33, 33),
                (48, 48),
                (64, 64),
            ],
        };
        let rectangular: Vec<(usize, usize)> = match mode {
            Mode::Quick => vec![(6, 9)],
            Mode::Full => vec![(6, 9), (9, 15), (12, 24), (9, 33), (33, 9)],
        };

        let mut table = Table::new(vec![
            "torus",
            "predicted (Thm 7)",
            "full-cross propagation (Fig. 5)",
            "Thm-2 seed, ideal filler",
            "Thm-2 construction",
            "construction delta",
        ]);
        let mut passed = true;
        let mut observations = Vec::new();
        let mut rectangular_mismatch = false;
        let mut odd_shift = false;
        let mut max_construction_delta: i64 = 0;

        for &(m, n) in &square {
            let me = measure(TorusKind::ToroidalMesh, m, n);
            // The full-cross propagation (the configuration of Figure 5)
            // must match the formula exactly on square tori; the Theorem-2
            // seed may need one extra round when n is odd (the excluded
            // corner delays the right-travelling wave), and the concrete
            // filler may add one more.
            passed &= me.ideal_cross == Some(me.predicted as usize);
            if let Some(ideal) = me.ideal {
                let shift = ideal as i64 - me.predicted;
                passed &= (0..=1).contains(&shift);
                if shift == 1 {
                    odd_shift = true;
                }
            } else {
                passed = false;
            }
            if let Some(c) = me.constructed {
                let delta = c as i64 - me.predicted;
                max_construction_delta = max_construction_delta.max(delta.abs());
                passed &= delta.abs() <= 2;
                table.add_row(vec![
                    format!("toroidal mesh {m}x{n}"),
                    me.predicted.to_string(),
                    fmt_opt(me.ideal_cross),
                    fmt_opt(me.ideal),
                    c.to_string(),
                    delta.to_string(),
                ]);
            } else {
                passed = false;
                table.add_row(vec![
                    format!("toroidal mesh {m}x{n}"),
                    me.predicted.to_string(),
                    fmt_opt(me.ideal_cross),
                    fmt_opt(me.ideal),
                    "failed".into(),
                    "-".into(),
                ]);
            }
        }
        for &(m, n) in &rectangular {
            let me = measure(TorusKind::ToroidalMesh, m, n);
            if me.ideal_cross != Some(me.predicted as usize) {
                rectangular_mismatch = true;
            }
            table.add_row(vec![
                format!("toroidal mesh {m}x{n} (rectangular)"),
                me.predicted.to_string(),
                fmt_opt(me.ideal_cross),
                fmt_opt(me.ideal),
                fmt_opt(me.constructed),
                me.constructed
                    .map(|c| (c as i64 - me.predicted).to_string())
                    .unwrap_or_else(|| "-".into()),
            ]);
        }

        observations.push(format!(
            "the four/five-colour fillers delay convergence by at most {max_construction_delta} \
             round(s) relative to the formula (a 2-2 tie with a vertex's own colour postpones a \
             flip until a third k-neighbour appears)."
        ));
        if odd_shift {
            observations.push(
                "for odd n the Theorem-2 seed (which excludes the corner vertex of the row) needs \
                 one round more than formula (1): the excluded vertex only turns k after round 1, \
                 delaying the wave that travels leftwards from the wrapped column.  The formula \
                 exactly matches the full-cross configuration of Figure 5."
                    .into(),
            );
        }
        if rectangular_mismatch {
            observations.push(
                "on strongly rectangular tori the propagation finishes in about \
                 ceil((m-1)/2) + ceil((n-1)/2) - 1 rounds, which is below formula (1) — the \
                 formula depends only on the larger dimension and is exact for square tori."
                    .into(),
            );
        }

        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim: "The Theorem-2 dynamo reaches the monochromatic configuration after \
                          2·max(ceil((n-1)/2)-1, ceil((m-1)/2)-1) + 1 rounds."
                .into(),
            table,
            observations,
            passed,
        }
    }
}

/// `thm8`: round complexity on the torus cordalis and serpentinus.
pub struct Theorem8;

impl Experiment for Theorem8 {
    fn id(&self) -> &'static str {
        "thm8"
    }
    fn title(&self) -> &'static str {
        "Theorem 8: rounds to convergence of the Theorem-4/6 dynamos (cordalis & serpentinus)"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        let sizes: Vec<(usize, usize)> = match mode {
            Mode::Quick => vec![(5, 6), (6, 6)],
            Mode::Full => vec![
                (5, 6),
                (6, 6),
                (7, 6),
                (9, 9),
                (8, 9),
                (12, 12),
                (13, 12),
                (16, 15),
                (24, 24),
                (25, 24),
                (33, 30),
            ],
        };

        let mut table = Table::new(vec![
            "torus",
            "m parity",
            "predicted (Thm 8)",
            "seed, ideal filler",
            "construction",
            "ideal delta",
        ]);
        let mut passed = true;
        let mut exact_ideal = 0usize;
        let mut odd_total = 0usize;
        let mut even_deltas: Vec<i64> = Vec::new();

        for kind in [TorusKind::TorusCordalis, TorusKind::TorusSerpentinus] {
            for &(m, n) in &sizes {
                let me = measure(kind, m, n);
                let Some(ideal) = me.ideal else {
                    passed = false;
                    continue;
                };
                let delta = ideal as i64 - me.predicted;
                if m % 2 == 1 {
                    odd_total += 1;
                    if delta == 0 {
                        exact_ideal += 1;
                    }
                    // Odd m: the formula must match the ideal propagation
                    // (up to the one-round parity slack at the meeting row).
                    passed &= delta.abs() <= 1;
                } else {
                    // Even m: formula (3) systematically undercounts; the
                    // measurement is recorded and the discrepancy reported
                    // as a reproduction finding rather than hidden.
                    even_deltas.push(delta);
                    passed &= delta >= 0 && (delta as usize) <= n;
                }
                if me.constructed.is_none() {
                    passed = false;
                }
                table.add_row(vec![
                    format!("{kind} {m}x{n}"),
                    if m % 2 == 1 { "odd" } else { "even" }.into(),
                    me.predicted.to_string(),
                    ideal.to_string(),
                    fmt_opt(me.constructed),
                    delta.to_string(),
                ]);
            }
        }

        let mut observations = vec![format!(
            "odd m: {exact_ideal}/{odd_total} combinations match formula (2) exactly under ideal \
             propagation (Figure 6 is the 5x5 instance of this agreement)."
        )];
        if !even_deltas.is_empty() {
            observations.push(format!(
                "even m: the measured convergence is exactly ((m - 2)/2)*n rounds on every size \
                 swept, i.e. n - 1 rounds more than formula (3) (deltas observed: \
                 {even_deltas:?}).  Formula (3) appears to assume the two row-waves meet after \
                 covering floor((m-1)/2) - 1 rows each, which holds for odd m but undercounts by \
                 one row sweep for even m; we report the measurement rather than the formula."
            ));
        }
        let observations = observations;

        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim: "The Theorem-4/6 dynamos reach the monochromatic configuration after \
                          (floor((m-1)/2)-1)·n + ceil(n/2) rounds (m odd) or \
                          (floor((m-1)/2)-1)·n + 1 rounds (m even)."
                .into(),
            table,
            observations,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem7_quick_reproduces() {
        let record = Theorem7.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
    }

    #[test]
    fn theorem8_quick_reproduces() {
        let record = Theorem8.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
    }
}
