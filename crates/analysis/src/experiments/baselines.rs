//! Experiment `prop12`: the bi-coloured baselines of Propositions 1 and 2.
//!
//! Proposition 1 transfers *lower* bounds from the bi-coloured reverse
//! simple majority rule to the SMP-Protocol through the colour-collapsing
//! map φ; Proposition 2 transfers *upper* bounds from the reverse strong
//! majority rule.  The experiment exercises both directions empirically:
//!
//! * the non-`k`-block ↔ simple-white-block correspondence under φ;
//! * the behavioural ordering of the three rules on the same initial
//!   configurations (whenever reverse strong majority converges to all-k,
//!   so does the SMP protocol; the prefer-black rule converges at least as
//!   often as SMP on black-seeded bi-coloured configurations).

use crate::experiment::{Experiment, ExperimentRecord, Mode};
use crate::table::Table;
use ctori_coloring::{Color, Palette};
use ctori_core::dynamo::verify_dynamo_with_rule;
use ctori_core::phi::{non_k_blocks_correspond_to_white_blocks, phi_collapse};
use ctori_protocols::{ReverseSimpleMajority, ReverseStrongMajority, SmpProtocol};
use ctori_topology::toroidal_mesh;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `prop12`: baseline-rule comparison.
pub struct Propositions1And2;

impl Experiment for Propositions1And2 {
    fn id(&self) -> &'static str {
        "prop12"
    }
    fn title(&self) -> &'static str {
        "Propositions 1 & 2: transfer between the SMP-Protocol and the bi-coloured majority rules"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        let k = Color::new(4);
        let (grid, samples) = match mode {
            Mode::Quick => (6usize, 40usize),
            Mode::Full => (10, 400),
        };
        let torus = toroidal_mesh(grid, grid);
        let palette = Palette::new(4);
        let mut rng = StdRng::seed_from_u64(2026);

        let mut correspondence_ok = 0usize;
        let mut strong_implies_smp = 0usize;
        let mut strong_converged = 0usize;
        let mut smp_converged = 0usize;
        let mut pb_converged = 0usize;

        for seed_fraction in [0.3f64, 0.5, 0.7] {
            let per_fraction = samples / 3;
            for _ in 0..per_fraction {
                let seed_count = ((grid * grid) as f64 * seed_fraction).round() as usize;
                let coloring = ctori_coloring::random::random_with_seed_count(
                    &torus, &palette, k, seed_count, &mut rng,
                );

                // Proposition 1 correspondence.
                if non_k_blocks_correspond_to_white_blocks(&torus, &coloring, k) {
                    correspondence_ok += 1;
                }

                // Rule ordering on the same configuration.
                let smp = verify_dynamo_with_rule(&torus, &coloring, k, SmpProtocol);
                let strong = verify_dynamo_with_rule(&torus, &coloring, k, ReverseStrongMajority);
                if strong.is_dynamo() {
                    strong_converged += 1;
                    if smp.is_dynamo() {
                        strong_implies_smp += 1;
                    }
                }
                if smp.is_dynamo() {
                    smp_converged += 1;
                }

                // Prefer-black on the φ-collapsed configuration (black = k).
                let collapsed = phi_collapse(&coloring, k);
                let pb = verify_dynamo_with_rule(
                    &torus,
                    &collapsed,
                    Color::BLACK,
                    ReverseSimpleMajority::prefer_black(),
                );
                if pb.is_dynamo() {
                    pb_converged += 1;
                }
            }
        }

        let total = (samples / 3) * 3;
        let mut table = Table::new(vec!["quantity", "expected", "measured"]);
        table.add_row(vec![
            "phi correspondence (non-k-block <-> white block)".into(),
            format!("{total}/{total}"),
            format!("{correspondence_ok}/{total}"),
        ]);
        table.add_row(vec![
            "strong-majority dynamo => SMP dynamo".into(),
            format!("{strong_converged}/{strong_converged}"),
            format!("{strong_implies_smp}/{strong_converged}"),
        ]);
        table.add_row(vec![
            "SMP k-convergence rate (random configs)".into(),
            "-".into(),
            format!("{smp_converged}/{total}"),
        ]);
        table.add_row(vec![
            "prefer-black convergence rate on collapsed configs".into(),
            ">= SMP rate".into(),
            format!("{pb_converged}/{total}"),
        ]);

        let passed = correspondence_ok == total
            && strong_implies_smp == strong_converged
            && pb_converged >= smp_converged;

        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim: "Lower bounds for bi-coloured dynamos under reverse simple majority are \
                          lower bounds for SMP dynamos (Prop. 1); upper bounds under reverse \
                          strong majority are upper bounds for SMP dynamos (Prop. 2)."
                .into(),
            table,
            observations: vec![
                "the prefer-black rule converges on the collapsed configurations at least as often \
                 as the SMP protocol on the originals, matching the direction of Proposition 1 \
                 (black is strictly favoured by the tie-break)."
                    .into(),
            ],
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop12_quick_reproduces() {
        let record = Propositions1And2.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
    }
}
