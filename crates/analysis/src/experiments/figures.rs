//! Experiments `fig1` … `fig6`: regenerate the paper's six figures.

use crate::experiment::{Experiment, ExperimentRecord, Mode};
use crate::table::Table;
use ctori_coloring::Color;
use ctori_core::dynamo::verify_dynamo;
use ctori_core::figures;
use ctori_core::rounds::{theorem7_rounds, theorem8_rounds};

fn k() -> Color {
    Color::new(1)
}

/// `fig1`: the monotone dynamo seed of size `m + n − 2`.
pub struct Figure1;

impl Experiment for Figure1 {
    fn id(&self) -> &'static str {
        "fig1"
    }
    fn title(&self) -> &'static str {
        "Figure 1: a monotone dynamo seed of size m + n - 2"
    }
    fn run(&self, _mode: Mode) -> ExperimentRecord {
        let (m, n) = (9, 9);
        let (_torus, seed, picture) = figures::figure1(m, n, k());
        let mut table = Table::new(vec!["quantity", "paper", "measured"]);
        table.add_row(vec![
            "seed size".to_string(),
            "16".to_string(),
            seed.count(k()).to_string(),
        ]);
        let passed = seed.count(k()) == m + n - 2;
        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim: "Figure 1 shows a monotone dynamo of black nodes of size m + n − 2 = 16."
                .into(),
            table,
            observations: vec![format!("rendered seed (B = colour k):\n```\n{picture}```")],
            passed,
        }
    }
}

/// `fig2`: the Theorem-2 colouring of the remaining vertices.
pub struct Figure2;

impl Experiment for Figure2 {
    fn id(&self) -> &'static str {
        "fig2"
    }
    fn title(&self) -> &'static str {
        "Figure 2: a four-colour minimum monotone dynamo on a 9x9 toroidal mesh"
    }
    fn run(&self, _mode: Mode) -> ExperimentRecord {
        let built = figures::figure2(9, 9, k()).expect("9x9 construction");
        let report = verify_dynamo(built.torus(), built.coloring(), k());
        let mut table = Table::new(vec!["quantity", "paper", "measured"]);
        table.add_row(vec![
            "seed size".into(),
            "m + n - 2 = 16".into(),
            built.seed_size().to_string(),
        ]);
        table.add_row(vec![
            "colours used".into(),
            "4".into(),
            built.colors_used().to_string(),
        ]);
        table.add_row(vec![
            "monotone dynamo".into(),
            "yes".into(),
            report.is_monotone_dynamo().to_string(),
        ]);
        let passed =
            built.seed_size() == 16 && built.colors_used() == 4 && report.is_monotone_dynamo();
        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim: "Figure 2 exhibits a four-colour configuration whose k-coloured row and \
                          column (one vertex short) form a minimum-size monotone dynamo."
                .into(),
            table,
            observations: vec![format!(
                "filler used: {}; configuration:\n```\n{}```",
                built.filler(),
                ctori_coloring::render_coloring(built.coloring())
            )],
            passed,
        }
    }
}

/// `fig3`: black vertices of the right size that are not a dynamo.
pub struct Figure3;

impl Experiment for Figure3 {
    fn id(&self) -> &'static str {
        "fig3"
    }
    fn title(&self) -> &'static str {
        "Figure 3: a minimum-size black seed that is not a dynamo"
    }
    fn run(&self, _mode: Mode) -> ExperimentRecord {
        let (torus, coloring) = figures::figure3(9, 9, k());
        let report = verify_dynamo(&torus, &coloring, k());
        let mut table = Table::new(vec!["quantity", "paper", "measured"]);
        table.add_row(vec![
            "seed size".into(),
            "m + n - 2 = 16".into(),
            coloring.count(k()).to_string(),
        ]);
        table.add_row(vec![
            "is a dynamo".into(),
            "no".into(),
            report.is_dynamo().to_string(),
        ]);
        let passed = !report.is_dynamo() && coloring.count(k()) == 16;
        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim: "Figure 3: black nodes (of the minimum dynamo size) do not constitute a \
                          dynamo when the surrounding colours violate the Theorem-2 conditions."
                .into(),
            table,
            observations: vec![
                "representative counterexample: the same seed shape on a bi-coloured torus; \
                 the exact cell values of the published image are not recoverable from the text."
                    .into(),
            ],
            passed,
        }
    }
}

/// `fig4`: a configuration where no recolouring can arise.
pub struct Figure4;

impl Experiment for Figure4 {
    fn id(&self) -> &'static str {
        "fig4"
    }
    fn title(&self) -> &'static str {
        "Figure 4: a configuration in which no recolouring can arise"
    }
    fn run(&self, _mode: Mode) -> ExperimentRecord {
        let (torus, coloring) = figures::figure4(9, 9, k());
        let report = verify_dynamo(&torus, &coloring, k());
        let mut table = Table::new(vec!["quantity", "paper", "measured"]);
        table.add_row(vec![
            "is a dynamo".into(),
            "no".into(),
            report.is_dynamo().to_string(),
        ]);
        table.add_row(vec![
            "rounds before freezing".into(),
            "0 (no recolouring)".into(),
            format!("{} (first round idles)", report.rounds),
        ]);
        let passed = !report.is_dynamo() && report.rounds <= 1;
        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim:
                "Figure 4 shows an initial configuration in which no recolouring can arise.".into(),
            table,
            observations: vec![],
            passed,
        }
    }
}

/// `fig5`: the toroidal-mesh recolouring-time matrix.
pub struct Figure5;

impl Experiment for Figure5 {
    fn id(&self) -> &'static str {
        "fig5"
    }
    fn title(&self) -> &'static str {
        "Figure 5: recolouring-time matrix on a 5x5 toroidal mesh"
    }
    fn run(&self, _mode: Mode) -> ExperimentRecord {
        let times = figures::figure5(5, 5, k());
        let expected: [[usize; 5]; 5] = [
            [0, 0, 0, 0, 0],
            [0, 1, 2, 2, 1],
            [0, 2, 3, 3, 2],
            [0, 2, 3, 3, 2],
            [0, 1, 2, 2, 1],
        ];
        let mut matches = true;
        for (i, row) in expected.iter().enumerate() {
            for (j, &value) in row.iter().enumerate() {
                if times.at(i, j) != Some(value) {
                    matches = false;
                }
            }
        }
        let mut table = Table::new(vec!["quantity", "paper", "measured"]);
        table.add_row(vec![
            "matrix equals Figure 5".into(),
            "yes".into(),
            matches.to_string(),
        ]);
        table.add_row(vec![
            "slowest vertex (rounds)".into(),
            "3".into(),
            format!("{:?}", times.max_time()),
        ]);
        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim: "Figure 5 tabulates, per vertex, the number of rounds before it assumes \
                          colour k; the slowest vertices need 3 rounds on a 5x5 mesh."
                .into(),
            table,
            observations: vec![format!("measured matrix:\n```\n{}```", times.render())],
            passed: matches && times.max_time() == Some(theorem7_rounds(5, 5) as usize),
        }
    }
}

/// `fig6`: the torus-cordalis recolouring-time matrix.
pub struct Figure6;

impl Experiment for Figure6 {
    fn id(&self) -> &'static str {
        "fig6"
    }
    fn title(&self) -> &'static str {
        "Figure 6: recolouring-time matrix on a 5x5 torus cordalis"
    }
    fn run(&self, _mode: Mode) -> ExperimentRecord {
        let times = figures::figure6(5, 5, k());
        let expected: [[usize; 5]; 5] = [
            [0, 0, 0, 0, 0],
            [0, 1, 2, 3, 4],
            [5, 6, 7, 8, 7],
            [6, 7, 8, 7, 6],
            [5, 4, 3, 2, 1],
        ];
        let mut matches = true;
        for (i, row) in expected.iter().enumerate() {
            for (j, &value) in row.iter().enumerate() {
                if times.at(i, j) != Some(value) {
                    matches = false;
                }
            }
        }
        let mut table = Table::new(vec!["quantity", "paper", "measured"]);
        table.add_row(vec![
            "matrix equals Figure 6".into(),
            "yes".into(),
            matches.to_string(),
        ]);
        table.add_row(vec![
            "slowest vertex (rounds)".into(),
            "8".into(),
            format!("{:?}", times.max_time()),
        ]);
        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim: "Figure 6 tabulates the recolouring times of the Theorem-4 dynamo on a \
                          5x5 torus cordalis; the slowest vertices need 8 rounds."
                .into(),
            table,
            observations: vec![format!("measured matrix:\n```\n{}```", times.render())],
            passed: matches && times.max_time() == Some(theorem8_rounds(5, 5) as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figure_experiments_pass_in_quick_mode() {
        for exp in [
            &Figure1 as &dyn Experiment,
            &Figure2,
            &Figure3,
            &Figure4,
            &Figure5,
            &Figure6,
        ] {
            let record = exp.run(Mode::Quick);
            assert!(record.passed, "{} did not reproduce", exp.id());
            assert!(!record.table.is_empty());
        }
    }
}
