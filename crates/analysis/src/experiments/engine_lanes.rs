//! Experiment `lanes`: cross-checking the engine's simulation lanes.
//!
//! Not a figure of the paper — an engineering experiment guarding the
//! refactor that introduced incremental frontier stepping and the
//! bit-packed two-colour lane.  For every torus kind it runs the same
//! bi-coloured prefer-black workload (the paper's baseline rule, chosen
//! because it is non-monotone and keeps the frontier moving) through the
//! three data paths and checks that they terminate identically:
//!
//! * the **packed lane** (auto-selected: two colours + a
//!   [`ctori_protocols::TwoStateThreshold`]-capable rule);
//! * the **generic frontier** (colour vector, incremental candidates);
//! * the **full sweep** (the PR-1 exhaustive stepper, kept as fallback).
//!
//! The sweep itself fans out over `ctori_engine::sweep::parallel_runs`, so
//! the experiment also exercises the scheduler under the thread pool.

use crate::experiment::{Experiment, ExperimentRecord, Mode};
use crate::table::Table;
use ctori_coloring::{Color, ColoringBuilder};
use ctori_engine::{parallel_runs, RunConfig, Simulator, Termination};
use ctori_protocols::ReverseSimpleMajority;
use ctori_topology::{Torus, TorusKind};

/// Outcome of one size/kind cell, for all three lanes.
struct LaneOutcome {
    kind: TorusKind,
    size: usize,
    packed_selected: bool,
    agree: bool,
    termination: Termination,
    rounds: usize,
}

fn run_cell(kind: TorusKind, size: usize) -> LaneOutcome {
    let torus = Torus::new(kind, size, size);
    // A black square block plus a lone black vertex: the block grows under
    // prefer-black while the lone vertex is erased, so both flip
    // directions of the packed lane are exercised.
    let mut builder = ColoringBuilder::filled(&torus, Color::WHITE);
    for r in 1..=size / 3 {
        for c in 1..=size / 3 {
            builder = builder.cell(r, c, Color::BLACK);
        }
    }
    let coloring = builder.cell(size - 1, size - 1, Color::BLACK).build();

    let rule = ReverseSimpleMajority::prefer_black;
    let config = RunConfig::default();
    let mut packed = Simulator::new(&torus, rule(), coloring.clone());
    let packed_selected = packed.uses_packed_lane();
    let a = packed.run(&config);
    let mut generic = Simulator::new(&torus, rule(), coloring.clone()).without_packed_lane();
    let b = generic.run(&config);
    let mut sweep = Simulator::new(&torus, rule(), coloring)
        .without_packed_lane()
        .with_full_sweep();
    let c = sweep.run(&config);

    let agree = a.termination == b.termination
        && b.termination == c.termination
        && a.rounds == b.rounds
        && b.rounds == c.rounds
        && packed.snapshot() == generic.snapshot()
        && generic.snapshot() == sweep.snapshot();
    LaneOutcome {
        kind,
        size,
        packed_selected,
        agree,
        termination: a.termination,
        rounds: a.rounds,
    }
}

/// `lanes`: engine lane equivalence sweep.
pub struct EngineLanes;

impl Experiment for EngineLanes {
    fn id(&self) -> &'static str {
        "lanes"
    }
    fn title(&self) -> &'static str {
        "Engine lanes: packed two-colour, generic frontier and full sweep agree on every torus"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        let sizes: Vec<usize> = match mode {
            Mode::Quick => vec![6, 9],
            Mode::Full => vec![6, 9, 12, 16, 24, 32, 48],
        };
        let cells: Vec<(TorusKind, usize)> = TorusKind::ALL
            .into_iter()
            .flat_map(|kind| sizes.iter().map(move |&s| (kind, s)))
            .collect();
        let outcomes = parallel_runs(cells, |&(kind, size)| run_cell(kind, size));

        let mut table = Table::new(vec![
            "torus",
            "packed lane selected",
            "lanes agree",
            "termination",
            "rounds",
        ]);
        let mut passed = true;
        for o in &outcomes {
            passed &= o.agree && o.packed_selected;
            table.add_row(vec![
                format!("{} {}x{}", o.kind, o.size, o.size),
                o.packed_selected.to_string(),
                o.agree.to_string(),
                format!("{:?}", o.termination),
                o.rounds.to_string(),
            ]);
        }

        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim: "Engineering invariant (no paper claim): the incremental frontier \
                          scheduler and the bit-packed two-colour lane are exact optimisations \
                          of the synchronous full-sweep semantics."
                .into(),
            table,
            observations: vec![
                "the packed lane is auto-selected for every bi-coloured prefer-black run; all \
                 three data paths terminate identically with identical final configurations."
                    .into(),
            ],
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_quick_reproduces() {
        let record = EngineLanes.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
    }
}
