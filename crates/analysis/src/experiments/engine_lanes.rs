//! Experiment `lanes`: cross-checking the engine's simulation lanes.
//!
//! Not a figure of the paper — an engineering experiment guarding the
//! refactor that introduced incremental frontier stepping and the
//! bit-packed two-colour lane.  For every torus kind it describes the same
//! bi-coloured prefer-black workload (the paper's baseline rule, chosen
//! because it is non-monotone and keeps the frontier moving) as a
//! [`RunSpec`] and executes it under all three [`LaneSpec`] policies:
//!
//! * the **packed lane** ([`LaneSpec::Auto`]: two colours + a
//!   [`ctori_protocols::TwoStateThreshold`]-capable rule);
//! * the **generic frontier** ([`LaneSpec::GenericFrontier`]);
//! * the **full sweep** ([`LaneSpec::FullSweep`], the PR-1 exhaustive
//!   stepper kept as fallback).
//!
//! The whole `(kind × size × lane)` grid fans out in **one**
//! [`Runner::sweep`] call, so the experiment also demonstrates the batch
//! layer parallelising a parameter grid.

use crate::experiment::{Experiment, ExperimentRecord, Mode};
use crate::table::Table;
use ctori_coloring::{Color, ColoringBuilder};
use ctori_engine::{
    EngineOptions, LaneSpec, RuleSpec, RunOutcome, RunSpec, Runner, SeedSpec, Termination,
    TopologySpec,
};
use ctori_topology::{Torus, TorusKind};

const LANES: [LaneSpec; 3] = [
    LaneSpec::Auto,
    LaneSpec::GenericFrontier,
    LaneSpec::FullSweep,
];

/// The bi-coloured prefer-black workload for one torus cell, as a spec:
/// a black square block (grows) plus a lone black vertex (is erased), so
/// both flip directions of the packed lane are exercised.
fn cell_spec(kind: TorusKind, size: usize, lane: LaneSpec) -> RunSpec {
    let torus = Torus::new(kind, size, size);
    let mut builder = ColoringBuilder::filled(&torus, Color::WHITE);
    for r in 1..=size / 3 {
        for c in 1..=size / 3 {
            builder = builder.cell(r, c, Color::BLACK);
        }
    }
    let coloring = builder.cell(size - 1, size - 1, Color::BLACK).build();
    RunSpec::new(
        TopologySpec::torus(kind, size, size),
        RuleSpec::parse("prefer-black").expect("registry rule"),
        SeedSpec::Explicit(coloring),
    )
    .with_options(EngineOptions::default().with_lane(lane))
}

/// Outcome of one size/kind cell, for all three lanes.
struct LaneOutcome {
    kind: TorusKind,
    size: usize,
    packed_selected: bool,
    agree: bool,
    termination: Termination,
    rounds: usize,
}

fn summarize(kind: TorusKind, size: usize, outcomes: &[RunOutcome]) -> LaneOutcome {
    let auto = &outcomes[0];
    let agree = outcomes.iter().skip(1).all(|o| {
        o.termination == auto.termination
            && o.rounds == auto.rounds
            && o.final_coloring == auto.final_coloring
            && !o.used_packed_lane
    });
    LaneOutcome {
        kind,
        size,
        packed_selected: auto.used_packed_lane,
        agree,
        termination: auto.termination,
        rounds: auto.rounds,
    }
}

/// `lanes`: engine lane equivalence sweep.
pub struct EngineLanes;

impl Experiment for EngineLanes {
    fn id(&self) -> &'static str {
        "lanes"
    }
    fn title(&self) -> &'static str {
        "Engine lanes: packed two-colour, generic frontier and full sweep agree on every torus"
    }
    fn run(&self, mode: Mode) -> ExperimentRecord {
        let sizes: Vec<usize> = match mode {
            Mode::Quick => vec![6, 9],
            Mode::Full => vec![6, 9, 12, 16, 24, 32, 48],
        };
        let cells: Vec<(TorusKind, usize)> = TorusKind::ALL
            .into_iter()
            .flat_map(|kind| sizes.iter().map(move |&s| (kind, s)))
            .collect();
        // One flat (kind × size × lane) grid through the batch layer —
        // sweep takes the iterator directly, no intermediate grid Vec.
        let results =
            Runner::new().sweep(cells.iter().flat_map(|&(kind, size)| {
                LANES.iter().map(move |&lane| cell_spec(kind, size, lane))
            }));
        let outcomes: Vec<LaneOutcome> = cells
            .iter()
            .zip(results.chunks(LANES.len()))
            .map(|(&(kind, size), chunk)| summarize(kind, size, chunk))
            .collect();

        let mut table = Table::new(vec![
            "torus",
            "packed lane selected",
            "lanes agree",
            "termination",
            "rounds",
        ]);
        let mut passed = true;
        for o in &outcomes {
            passed &= o.agree && o.packed_selected;
            table.add_row(vec![
                format!("{} {}x{}", o.kind, o.size, o.size),
                o.packed_selected.to_string(),
                o.agree.to_string(),
                format!("{:?}", o.termination),
                o.rounds.to_string(),
            ]);
        }

        ExperimentRecord {
            id: self.id(),
            title: self.title(),
            paper_claim: "Engineering invariant (no paper claim): the incremental frontier \
                          scheduler and the bit-packed two-colour lane are exact optimisations \
                          of the synchronous full-sweep semantics."
                .into(),
            table,
            observations: vec![
                "the packed lane is auto-selected for every bi-coloured prefer-black run; all \
                 three data paths terminate identically with identical final configurations.  \
                 The whole (kind x size x lane) grid executes as one Runner::sweep batch."
                    .into(),
            ],
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_quick_reproduces() {
        let record = EngineLanes.run(Mode::Quick);
        assert!(record.passed, "{}", record.render());
    }
}
