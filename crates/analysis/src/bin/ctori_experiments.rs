//! Command-line runner for the paper-reproduction experiments.
//!
//! ```text
//! ctori-experiments list                 # list experiment ids
//! ctori-experiments run <id> [--quick]   # run one experiment
//! ctori-experiments all [--quick]        # run every experiment
//! ctori-experiments report [--quick]     # print the EXPERIMENTS.md report
//! ```

use ctori_analysis::experiment::{all_experiments, run_by_id, Mode};
use ctori_analysis::report::full_report;

fn mode_from_args(args: &[String]) -> Mode {
    if args.iter().any(|a| a == "--quick") {
        Mode::Quick
    } else {
        Mode::Full
    }
}

fn usage() -> ! {
    eprintln!("usage: ctori-experiments <list | run <id> | all | report> [--quick]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let mode = mode_from_args(&args);

    match command {
        "list" => {
            for experiment in all_experiments() {
                println!("{:<8} {}", experiment.id(), experiment.title());
            }
        }
        "run" => {
            let Some(id) = args.get(1).filter(|a| !a.starts_with("--")) else {
                usage();
            };
            match run_by_id(id, mode) {
                Some(record) => {
                    print!("{}", record.render());
                    if !record.passed {
                        std::process::exit(1);
                    }
                }
                None => {
                    eprintln!("unknown experiment id '{id}'; try `ctori-experiments list`");
                    std::process::exit(2);
                }
            }
        }
        "all" => {
            let mut failures = 0usize;
            for experiment in all_experiments() {
                let record = experiment.run(mode);
                print!("{}", record.render());
                if !record.passed {
                    failures += 1;
                }
            }
            if failures > 0 {
                eprintln!("{failures} experiment(s) did not reproduce");
                std::process::exit(1);
            }
        }
        "report" => {
            print!("{}", full_report(mode));
        }
        _ => usage(),
    }
}
