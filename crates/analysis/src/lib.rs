//! # ctori-analysis
//!
//! Experiment harness reproducing every figure and theorem of
//! *Dynamic Monopolies in Colored Tori*.
//!
//! Each experiment is a self-contained object with a stable identifier
//! (`fig1` … `fig6`, `thm1` … `thm8`, `prop3`, `prop12`, `tss`) that runs a
//! workload, compares the measurement with the paper's claim, and renders a
//! text table.  The `ctori-experiments` binary runs them from the command
//! line; the benchmark crate wraps the same workloads in Criterion groups;
//! EXPERIMENTS.md is generated from the full report.
//!
//! ```
//! use ctori_analysis::experiment::{run_by_id, Mode};
//!
//! let record = run_by_id("thm1", Mode::Quick).expect("known experiment");
//! assert!(record.passed);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod experiment;
pub mod experiments;
pub mod report;
pub mod table;

pub use experiment::{all_experiments, run_by_id, Experiment, ExperimentRecord, Mode};
pub use report::full_report;
pub use table::Table;
