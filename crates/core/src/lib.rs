//! # ctori-core
//!
//! Dynamic monopolies (dynamos) in multi-coloured tori — the primary
//! contribution of *Dynamic Monopolies in Colored Tori* (Brunetti, Lodi &
//! Quattrociocchi, IPPS 2011), built on the topology / colouring /
//! protocol / engine substrates of this workspace.
//!
//! The crate covers every definition and result of the paper:
//!
//! * [`blocks`] — `k`-blocks and non-`k`-blocks (Definitions 4 and 5), the
//!   immortal structures that drive all lower bounds;
//! * [`dynamo`] — dynamo and monotone-dynamo verification by simulation
//!   (Definitions 2 and 3), with full reports;
//! * [`bounds`] — the lower bounds of Theorems 1, 3 and 5 and the
//!   colour-count necessity of Proposition 3;
//! * [`hypotheses`] — machine-checkable forms of the hypotheses of
//!   Theorems 2, 4 and 6 (seed shape, forest condition, distinct-neighbour
//!   condition);
//! * [`construct`] — constructions of minimum-size monotone dynamos for the
//!   toroidal mesh (Theorem 2), torus cordalis (Theorem 4) and torus
//!   serpentinus (Theorem 6), including the stripe fillers and a
//!   local-search filler for sizes the closed-form patterns do not cover;
//! * [`rounds`] — the round-complexity formulas of Theorems 7 and 8 and
//!   helpers to compare them against measured convergence times;
//! * [`phi`] — the colour-collapsing transformation φ behind Propositions 1
//!   and 2, connecting the multi-coloured problem to the bi-coloured
//!   baselines of Flocchini et al.;
//! * [`search`] — exhaustive minimum monotone-dynamo search on small tori
//!   (the empirical check that the lower bounds are tight);
//! * [`counterexamples`] — the non-dynamo configurations of Figures 3
//!   and 4;
//! * [`figures`] — one constructor per paper figure, producing the exact
//!   artefact (configuration or recolouring-time matrix) the paper prints.
//!
//! # Quick start
//!
//! ```
//! use ctori_coloring::Color;
//! use ctori_core::construct::mesh::theorem2_dynamo;
//! use ctori_core::dynamo::verify_dynamo;
//! use ctori_topology::{toroidal_mesh, TorusKind};
//!
//! let k = Color::new(1);
//! // Build the Theorem-2 minimum monotone dynamo on a 6x6 toroidal mesh.
//! let built = theorem2_dynamo(6, 6, k).expect("constructible");
//! assert_eq!(built.seed_size(), 6 + 6 - 2);
//!
//! // Verify by simulation that it converges monotonically to all-k.
//! let torus = toroidal_mesh(6, 6);
//! let report = verify_dynamo(&torus, built.coloring(), k);
//! assert!(report.is_monotone_dynamo());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod blocks;
pub mod bounds;
pub mod construct;
pub mod counterexamples;
pub mod dynamo;
pub mod figures;
pub mod hypotheses;
pub mod phi;
pub mod rounds;
pub mod search;

pub use blocks::{find_k_blocks, find_non_k_blocks, has_non_k_block, is_k_block};
pub use bounds::{lower_bound, prop3_minimum_colors};
pub use construct::{ConstructError, ConstructedDynamo};
pub use dynamo::{verify_dynamo, verify_dynamo_with_rule, DynamoReport};
pub use hypotheses::{check_hypotheses, HypothesisViolation};
pub use phi::phi_collapse;
pub use rounds::{theorem7_rounds, theorem8_rounds};
pub use search::{search_minimum_monotone_dynamo, SearchOutcome};
