//! Lower bounds on the size of monotone dynamos (Theorems 1, 3, 5 and
//! Proposition 3).
//!
//! | topology          | lower bound on `|S^k|` | paper reference |
//! |-------------------|------------------------|-----------------|
//! | toroidal mesh     | `m + n − 2`            | Theorem 1       |
//! | torus cordalis    | `n + 1`                | Theorem 3       |
//! | torus serpentinus | `min(m, n) + 1`        | Theorem 5       |
//!
//! Proposition 3 additionally ties the existence of a *minimum-size*
//! dynamo to the number of available colours: with `N = min(m, n)` and
//! `1 < N ≤ 3`, a minimum-size dynamo requires `|C| ≥ N`; the discussion
//! after Theorem 2 shows that four colours are needed (and sufficient)
//! once `N ≥ 4`.

use ctori_topology::{Torus, TorusKind};

/// Lower bound of Theorem 1: a monotone dynamo of a colored `m × n`
/// toroidal mesh has at least `m + n − 2` vertices.
pub fn toroidal_mesh_lower_bound(m: usize, n: usize) -> usize {
    m + n - 2
}

/// Lower bound of Theorem 3: a monotone dynamo of a colored `m × n` torus
/// cordalis has at least `n + 1` vertices.
pub fn torus_cordalis_lower_bound(_m: usize, n: usize) -> usize {
    n + 1
}

/// Lower bound of Theorem 5: a monotone dynamo of a colored `m × n` torus
/// serpentinus has at least `min(m, n) + 1` vertices.
pub fn torus_serpentinus_lower_bound(m: usize, n: usize) -> usize {
    m.min(n) + 1
}

/// The lower bound for any of the three torus kinds.
pub fn lower_bound(kind: TorusKind, m: usize, n: usize) -> usize {
    match kind {
        TorusKind::ToroidalMesh => toroidal_mesh_lower_bound(m, n),
        TorusKind::TorusCordalis => torus_cordalis_lower_bound(m, n),
        TorusKind::TorusSerpentinus => torus_serpentinus_lower_bound(m, n),
        other => panic!("no published lower bound for {other}"),
    }
}

/// The lower bound for a torus value.
pub fn lower_bound_for(torus: &Torus) -> usize {
    lower_bound(torus.kind(), torus.rows(), torus.cols())
}

/// Proposition 3: the minimum number of colours required for a
/// *minimum-size* dynamo to exist on a toroidal mesh, as a function of
/// `N = min(m, n)`.
///
/// * `N = 1` — a single colour suffices (the torus is degenerate; the
///   paper notes a dynamo exists only if `|C| = 1`).
/// * `N = 2` — at least 2 colours; the paper notes that with more than two
///   colours a single `k`-coloured column of size `m` is already a dynamo.
/// * `N = 3` — at least 3 colours ("two colors are not enough, since
///   vertices outside a k-colored row and column form a non-k-block").
/// * `N ≥ 4` — four colours are needed for the Theorem-2 construction (the
///   paper's discussion following Theorem 2).
pub fn prop3_minimum_colors(m: usize, n: usize) -> u16 {
    let nmin = m.min(n);
    match nmin {
        0 | 1 => 1,
        2 => 2,
        3 => 3,
        _ => 4,
    }
}

/// Theorem 16 of \[15\], quoted in the proof of Proposition 3: the
/// bi-coloured lower bound `⌈(2m + 1) / 2⌉ = m + 1` for an `m × 2` torus.
/// Returned here because the Proposition-3 experiment compares against it.
pub fn flocchini_bicolor_bound_two_columns(m: usize) -> usize {
    m + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_examples() {
        // The paper's Figure 1 example: m + n - 2 = 16 (a 9x9 torus).
        assert_eq!(toroidal_mesh_lower_bound(9, 9), 16);
        assert_eq!(toroidal_mesh_lower_bound(4, 4), 6);
        assert_eq!(toroidal_mesh_lower_bound(2, 2), 2);
        assert_eq!(toroidal_mesh_lower_bound(5, 8), 11);
    }

    #[test]
    fn theorem3_and_theorem5_examples() {
        assert_eq!(torus_cordalis_lower_bound(9, 9), 10);
        assert_eq!(torus_cordalis_lower_bound(4, 7), 8);
        // the cordalis bound depends only on n
        assert_eq!(torus_cordalis_lower_bound(100, 7), 8);
        assert_eq!(torus_serpentinus_lower_bound(9, 9), 10);
        assert_eq!(torus_serpentinus_lower_bound(4, 7), 5);
        assert_eq!(torus_serpentinus_lower_bound(7, 4), 5);
    }

    #[test]
    fn dispatch_matches_specific_functions() {
        for (m, n) in [(3usize, 3usize), (4, 9), (12, 5)] {
            assert_eq!(
                lower_bound(TorusKind::ToroidalMesh, m, n),
                toroidal_mesh_lower_bound(m, n)
            );
            assert_eq!(
                lower_bound(TorusKind::TorusCordalis, m, n),
                torus_cordalis_lower_bound(m, n)
            );
            assert_eq!(
                lower_bound(TorusKind::TorusSerpentinus, m, n),
                torus_serpentinus_lower_bound(m, n)
            );
        }
    }

    #[test]
    fn lower_bound_for_torus_value() {
        let t = ctori_topology::torus_cordalis(6, 8);
        assert_eq!(lower_bound_for(&t), 9);
    }

    #[test]
    fn cordalis_and_serpentinus_bounds_are_below_mesh_bound() {
        // The chained tori admit much smaller dynamos than the toroidal
        // mesh as soon as the torus is large in both dimensions — the
        // qualitative relationship the paper emphasises.
        for (m, n) in [(8usize, 8usize), (16, 16), (10, 30)] {
            assert!(torus_cordalis_lower_bound(m, n) < toroidal_mesh_lower_bound(m, n));
            assert!(torus_serpentinus_lower_bound(m, n) <= torus_cordalis_lower_bound(m, n));
        }
    }

    #[test]
    fn prop3_color_requirements() {
        assert_eq!(prop3_minimum_colors(1, 10), 1);
        assert_eq!(prop3_minimum_colors(2, 10), 2);
        assert_eq!(prop3_minimum_colors(10, 2), 2);
        assert_eq!(prop3_minimum_colors(3, 5), 3);
        assert_eq!(prop3_minimum_colors(4, 4), 4);
        assert_eq!(prop3_minimum_colors(100, 50), 4);
    }

    #[test]
    fn flocchini_two_column_bound() {
        assert_eq!(flocchini_bicolor_bound_two_columns(5), 6);
        assert_eq!(flocchini_bicolor_bound_two_columns(10), 11);
    }
}
