//! Round-complexity formulas (Theorems 7 and 8).
//!
//! Theorem 7 (toroidal mesh, Theorem-2 initial configuration):
//!
//! ```text
//! rounds = 2 · max(⌈(n−1)/2⌉ − 1, ⌈(m−1)/2⌉ − 1) + 1
//! ```
//!
//! Theorem 8 (torus cordalis with the Theorem-4 configuration, and torus
//! serpentinus with the Theorem-6 configuration and `N = n`):
//!
//! ```text
//! rounds = (⌊(m−1)/2⌋ − 1) · n + ⌈n/2⌉   if m is odd
//! rounds = (⌊(m−1)/2⌋ − 1) · n + 1        if m is even
//! ```
//!
//! Both formulas are returned as `i64`: for very small tori (`m ≤ 3`) the
//! bracketed factors go negative, which simply signals that the formula is
//! outside its intended range (the constructions themselves require
//! `m, n ≥ 4` for the four-colour pattern).  The experiment harness
//! compares these predictions against the measured convergence rounds and
//! records both.

/// Ceiling of `a / b` for non-negative integers.
fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Theorem 7: predicted number of rounds for the Theorem-2 dynamo on an
/// `m × n` toroidal mesh to reach the monochromatic configuration.
pub fn theorem7_rounds(m: usize, n: usize) -> i64 {
    let half_n = ceil_div(n.saturating_sub(1), 2) as i64 - 1;
    let half_m = ceil_div(m.saturating_sub(1), 2) as i64 - 1;
    2 * half_n.max(half_m) + 1
}

/// Theorem 8: predicted number of rounds for the Theorem-4 dynamo on an
/// `m × n` torus cordalis (equivalently the Theorem-6 dynamo on a torus
/// serpentinus with `N = n`).
pub fn theorem8_rounds(m: usize, n: usize) -> i64 {
    let prefix = ((m.saturating_sub(1) / 2) as i64 - 1) * n as i64;
    if m % 2 == 1 {
        prefix + ceil_div(n, 2) as i64
    } else {
        prefix + 1
    }
}

/// A comparison between a predicted and a measured round count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundComparison {
    /// Rows of the torus.
    pub m: usize,
    /// Columns of the torus.
    pub n: usize,
    /// Rounds predicted by the paper's formula.
    pub predicted: i64,
    /// Rounds measured by simulation.
    pub measured: usize,
}

impl RoundComparison {
    /// Difference `measured − predicted`.
    pub fn delta(&self) -> i64 {
        self.measured as i64 - self.predicted
    }

    /// Whether prediction and measurement agree exactly.
    pub fn exact(&self) -> bool {
        self.delta() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem7_matches_figure5() {
        // Figure 5 of the paper is a 5x5 toroidal mesh whose slowest
        // vertices recolor after 3 rounds; formula (1) gives 3.
        assert_eq!(theorem7_rounds(5, 5), 3);
    }

    #[test]
    fn theorem7_square_examples() {
        assert_eq!(theorem7_rounds(7, 7), 5);
        assert_eq!(theorem7_rounds(9, 9), 7);
        assert_eq!(theorem7_rounds(4, 4), 3);
        assert_eq!(theorem7_rounds(6, 6), 5);
    }

    #[test]
    fn theorem7_rectangular_uses_the_larger_dimension() {
        assert_eq!(theorem7_rounds(5, 9), 7);
        assert_eq!(theorem7_rounds(9, 5), 7);
        assert_eq!(theorem7_rounds(4, 12), 2 * (6 - 1) + 1);
    }

    #[test]
    fn theorem8_matches_figure6() {
        // Figure 6 of the paper is a 5x5 matrix whose largest entry is 8;
        // formula (2) with m = n = 5 (m odd) gives (2-1)*5 + 3 = 8.
        assert_eq!(theorem8_rounds(5, 5), 8);
    }

    #[test]
    fn theorem8_even_and_odd_rows() {
        // m odd
        assert_eq!(theorem8_rounds(7, 6), (3 - 1) * 6 + 3);
        assert_eq!(theorem8_rounds(9, 4), (4 - 1) * 4 + 2);
        // m even
        assert_eq!(theorem8_rounds(6, 6), 6 + 1);
        assert_eq!(theorem8_rounds(8, 5), (3 - 1) * 5 + 1);
    }

    #[test]
    fn small_sizes_do_not_panic() {
        // Outside the intended range the formulas may be non-positive but
        // must not overflow or panic.
        assert_eq!(theorem7_rounds(2, 2), 1);
        assert!(theorem8_rounds(2, 2) <= 1);
        assert!(theorem8_rounds(3, 3) <= 3);
    }

    #[test]
    fn comparison_helpers() {
        let c = RoundComparison {
            m: 5,
            n: 5,
            predicted: 3,
            measured: 3,
        };
        assert!(c.exact());
        assert_eq!(c.delta(), 0);
        let c = RoundComparison {
            m: 5,
            n: 9,
            predicted: 7,
            measured: 5,
        };
        assert!(!c.exact());
        assert_eq!(c.delta(), -2);
    }
}
