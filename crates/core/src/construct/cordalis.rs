//! Theorem 4: minimum-size monotone dynamos on the torus cordalis.
//!
//! The seed is a full `k`-coloured row plus one extra vertex at the start
//! of the next row — `n + 1` vertices, matching the Theorem-3 lower bound.
//! Because of the row chaining, the whole seed is a single `k`-block (every
//! member has two `k`-neighbours), so no seed vertex can ever flip.
//!
//! The filler uses period-3 column stripes when `n ≡ 0 (mod 3)` (exactly
//! four colours, as the paper claims) and a randomized local search
//! otherwise (usually succeeding with four colours, always with five); see
//! the reproduction note in [`crate::construct`].

use super::filler::{fill_free, local_search_fill};
use super::mesh::colors_excluding;
use super::{ConstructError, ConstructedDynamo, FillerKind};
use crate::hypotheses::check_hypotheses;
use ctori_coloring::{Color, Coloring, ColoringBuilder};
use ctori_topology::{torus_cordalis, Coord, Torus};

/// The Theorem-4 seed: the whole row `0` plus the vertex `(1, 0)`.
pub fn theorem4_seed(torus: &Torus, k: Color) -> Coloring {
    ColoringBuilder::unset(torus)
        .row(0, k)
        .cell(1, 0, k)
        .build_partial()
}

/// Period-3 column-stripe filler; valid with four total colours whenever
/// `n ≡ 0 (mod 3)`.
fn column_stripe_candidate(partial: &Coloring, k: Color) -> Coloring {
    let p = colors_excluding(k, 3);
    fill_free(partial, |c: Coord| p[c.col % 3])
}

/// Builds the Theorem-4 minimum monotone dynamo for an `m × n` torus
/// cordalis with target colour `k`.
///
/// # Errors
///
/// Returns [`ConstructError::TooSmall`] when `m < 3` or `n < 3`, and
/// [`ConstructError::FillerFailed`] if neither the stripe filler nor the
/// local search produces a hypothesis-satisfying configuration.
pub fn theorem4_dynamo(m: usize, n: usize, k: Color) -> Result<ConstructedDynamo, ConstructError> {
    if m < 3 || n < 3 {
        return Err(ConstructError::TooSmall {
            min_rows: 3,
            min_cols: 3,
            rows: m,
            cols: n,
        });
    }
    let torus = torus_cordalis(m, n);
    let partial = theorem4_seed(&torus, k);

    if n.is_multiple_of(3) {
        let candidate = column_stripe_candidate(&partial, k);
        if check_hypotheses(&torus, &candidate, k).is_empty() {
            return ConstructedDynamo::validated(torus, candidate, k, FillerKind::ColumnStripes);
        }
    }

    let mut last_violations = Vec::new();
    for extra in [3u16, 4, 5, 6] {
        let palette = colors_excluding(k, extra);
        if let Some(candidate) =
            local_search_fill(&torus, &partial, k, &palette, 0xD15C0 + extra as u64, 700)
        {
            let violations = check_hypotheses(&torus, &candidate, k);
            if violations.is_empty() {
                return ConstructedDynamo::validated(
                    torus,
                    candidate,
                    k,
                    FillerKind::LocalSearch { colors: extra + 1 },
                );
            }
            last_violations = violations;
        }
    }

    Err(ConstructError::FillerFailed { last_violations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::torus_cordalis_lower_bound;
    use crate::dynamo::verify_dynamo;

    fn k() -> Color {
        Color::new(1)
    }

    #[test]
    fn seed_has_n_plus_one_vertices_and_is_a_block() {
        let t = torus_cordalis(5, 7);
        let seed = theorem4_seed(&t, k());
        assert_eq!(seed.count(k()), 8);
        // complete it arbitrarily to test the block structure of the seed
        let full = seed.clone();
        let full = super::super::filler::fill_free(&full, |_| Color::new(2));
        assert!(crate::blocks::seed_is_union_of_k_blocks(&t, &full, k()));
    }

    #[test]
    fn stripe_construction_on_divisible_columns() {
        for (m, n) in [(5usize, 6usize), (6, 9), (4, 12), (9, 6)] {
            let built = theorem4_dynamo(m, n, k()).unwrap();
            assert_eq!(built.seed_size(), torus_cordalis_lower_bound(m, n));
            assert!(built.is_minimum_size());
            assert_eq!(built.colors_used(), 4, "{m}x{n} should use 4 colours");
            assert_eq!(built.filler(), FillerKind::ColumnStripes);
            let report = verify_dynamo(built.torus(), built.coloring(), k());
            assert!(report.is_monotone_dynamo(), "{m}x{n} must verify");
        }
    }

    #[test]
    fn local_search_construction_on_other_sizes() {
        for (m, n) in [(5usize, 5usize), (6, 7), (5, 8)] {
            let built = theorem4_dynamo(m, n, k()).unwrap();
            assert!(built.is_minimum_size());
            assert!(built.colors_used() <= 5);
            assert!(matches!(built.filler(), FillerKind::LocalSearch { .. }));
            let report = verify_dynamo(built.torus(), built.coloring(), k());
            assert!(report.is_monotone_dynamo(), "{m}x{n} must verify");
        }
    }

    #[test]
    fn too_small_is_rejected() {
        assert!(matches!(
            theorem4_dynamo(2, 6, k()),
            Err(ConstructError::TooSmall { .. })
        ));
    }

    #[test]
    fn alternative_target_color() {
        let built = theorem4_dynamo(6, 6, Color::new(4)).unwrap();
        assert_eq!(built.k(), Color::new(4));
        let report = verify_dynamo(built.torus(), built.coloring(), Color::new(4));
        assert!(report.is_monotone_dynamo());
    }
}
