//! Theorem 6: minimum-size monotone dynamos on the torus serpentinus.
//!
//! With `N = min(m, n)` the seed has `N + 1` vertices (the Theorem-5 lower
//! bound): a whole row plus the first vertex of the next row when `N = n`,
//! or a whole column plus the first vertex of the next column when
//! `N = m < n`.
//!
//! The row-seed case admits the same period-3 column-stripe filler as the
//! torus cordalis when `n ≡ 0 (mod 3)` (four colours); all other cases use
//! the local-search filler.

use super::filler::{fill_free, local_search_fill};
use super::mesh::colors_excluding;
use super::{ConstructError, ConstructedDynamo, FillerKind};
use crate::hypotheses::check_hypotheses;
use ctori_coloring::{Color, Coloring, ColoringBuilder};
use ctori_topology::{torus_serpentinus, Coord, Torus};

/// The Theorem-6 seed for `N = n ≤ m`: the whole row 0 plus `(1, 0)`.
pub fn theorem6_seed_row(torus: &Torus, k: Color) -> Coloring {
    ColoringBuilder::unset(torus)
        .row(0, k)
        .cell(1, 0, k)
        .build_partial()
}

/// The Theorem-6 seed for `N = m < n`: the whole column 0 plus `(0, 1)`.
pub fn theorem6_seed_column(torus: &Torus, k: Color) -> Coloring {
    ColoringBuilder::unset(torus)
        .column(0, k)
        .cell(0, 1, k)
        .build_partial()
}

/// Period-3 column stripes for the row-seed case.
fn column_stripe_candidate(partial: &Coloring, k: Color) -> Coloring {
    let p = colors_excluding(k, 3);
    fill_free(partial, |c: Coord| p[c.col % 3])
}

/// Period-3 row stripes for the column-seed case (`N = m`).
fn row_stripe_candidate(partial: &Coloring, k: Color) -> Coloring {
    let p = colors_excluding(k, 3);
    fill_free(partial, |c: Coord| p[c.row % 3])
}

/// Builds the Theorem-6 minimum monotone dynamo for an `m × n` torus
/// serpentinus with target colour `k`.
///
/// # Errors
///
/// Returns [`ConstructError::TooSmall`] when `m < 3` or `n < 3`, and
/// [`ConstructError::FillerFailed`] if no hypothesis-satisfying filler is
/// found.
pub fn theorem6_dynamo(m: usize, n: usize, k: Color) -> Result<ConstructedDynamo, ConstructError> {
    if m < 3 || n < 3 {
        return Err(ConstructError::TooSmall {
            min_rows: 3,
            min_cols: 3,
            rows: m,
            cols: n,
        });
    }
    let torus = torus_serpentinus(m, n);
    let row_seeded = n <= m;
    let partial = if row_seeded {
        theorem6_seed_row(&torus, k)
    } else {
        theorem6_seed_column(&torus, k)
    };
    // Deterministic stripe candidates (cheap to try even when the
    // divisibility condition does not hold — the checker decides).
    let stripe = if row_seeded {
        column_stripe_candidate(&partial, k)
    } else {
        row_stripe_candidate(&partial, k)
    };
    let violations = check_hypotheses(&torus, &stripe, k);
    if violations.is_empty() {
        let kind = if row_seeded {
            FillerKind::ColumnStripes
        } else {
            FillerKind::RowStripes
        };
        return ConstructedDynamo::validated(torus, stripe, k, kind);
    }
    let mut last_violations = violations;

    for extra in [3u16, 4, 5, 6] {
        let palette = colors_excluding(k, extra);
        if let Some(candidate) =
            local_search_fill(&torus, &partial, k, &palette, 0x5E49 + extra as u64, 700)
        {
            let violations = check_hypotheses(&torus, &candidate, k);
            if violations.is_empty() {
                return ConstructedDynamo::validated(
                    torus,
                    candidate,
                    k,
                    FillerKind::LocalSearch { colors: extra + 1 },
                );
            }
            last_violations = violations;
        }
    }

    Err(ConstructError::FillerFailed { last_violations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::torus_serpentinus_lower_bound;
    use crate::dynamo::verify_dynamo;

    fn k() -> Color {
        Color::new(1)
    }

    #[test]
    fn seed_sizes_follow_the_smaller_dimension() {
        let t = torus_serpentinus(8, 5);
        assert_eq!(theorem6_seed_row(&t, k()).count(k()), 6);
        let t = torus_serpentinus(5, 8);
        assert_eq!(theorem6_seed_column(&t, k()).count(k()), 6);
    }

    #[test]
    fn row_seeded_construction_verifies() {
        // n <= m: seed is a row plus one vertex.
        for (m, n) in [(6usize, 6usize), (9, 6), (7, 6), (8, 5)] {
            let built = theorem6_dynamo(m, n, k()).unwrap();
            assert_eq!(built.seed_size(), torus_serpentinus_lower_bound(m, n));
            assert!(built.is_minimum_size());
            let report = verify_dynamo(built.torus(), built.coloring(), k());
            assert!(report.is_monotone_dynamo(), "{m}x{n} must verify");
        }
    }

    #[test]
    fn column_seeded_construction_verifies() {
        // m < n: seed is a column plus one vertex.
        for (m, n) in [(5usize, 7usize), (6, 9), (5, 8)] {
            let built = theorem6_dynamo(m, n, k()).unwrap();
            assert_eq!(built.seed_size(), m + 1);
            assert!(built.is_minimum_size());
            let report = verify_dynamo(built.torus(), built.coloring(), k());
            assert!(report.is_monotone_dynamo(), "{m}x{n} must verify");
        }
    }

    #[test]
    fn four_colors_when_columns_divisible_by_three() {
        for (m, n) in [(6usize, 6usize), (9, 6), (7, 3)] {
            let built = theorem6_dynamo(m, n, k()).unwrap();
            assert_eq!(built.colors_used(), 4, "{m}x{n}");
            assert_eq!(built.filler(), FillerKind::ColumnStripes);
        }
    }

    #[test]
    fn too_small_is_rejected() {
        assert!(matches!(
            theorem6_dynamo(6, 2, k()),
            Err(ConstructError::TooSmall { .. })
        ));
    }
}
