//! Fillers: assigning colours to the non-seed vertices.
//!
//! The construction theorems only constrain the *non-k* vertices through
//! two local conditions (forest + distinct neighbour colours) plus the
//! implicit requirement that no seed vertex can flip.  The deterministic
//! stripe patterns live in the per-topology modules (they depend on the
//! seed geometry); this module provides the shared machinery:
//!
//! * [`fill_free`] — apply a coordinate→colour function to every unset
//!   cell of a partial configuration;
//! * [`local_search_fill`] — a randomized repair procedure that colours the
//!   free cells so that a slightly *stronger*, purely local version of the
//!   hypotheses holds: every free cell has at most one neighbour of its own
//!   colour (which forces each colour class to be a union of vertices and
//!   single edges — trivially a forest), no two neighbours of a free cell
//!   share a colour outside `{own, k}`, and no seed vertex sees a unique
//!   non-`k` plurality of two or more.

use ctori_coloring::{Color, Coloring};
use ctori_protocols::{LocalRule, SmpProtocol};
use ctori_topology::{Coord, NodeId, Torus};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Fills every unset cell of `partial` using the supplied pattern
/// function.
pub fn fill_free(partial: &Coloring, pattern: impl Fn(Coord) -> Color) -> Coloring {
    let mut out = partial.clone();
    for row in 0..out.rows() {
        for col in 0..out.cols() {
            if out.at(row, col).is_unset() {
                let c = pattern(Coord::new(row, col));
                assert!(!c.is_unset(), "pattern returned the unset sentinel");
                out.set_at(row, col, c);
            }
        }
    }
    out
}

/// The local violation score of a single vertex under the strengthened
/// hypotheses described in the module documentation.  Zero for every
/// vertex ⇒ the configuration satisfies the hypotheses of Theorems 2/4/6.
fn vertex_violations(torus: &Torus, coloring: &Coloring, k: Color, v: NodeId) -> usize {
    let own = coloring.get(v);
    let nbr_colors: Vec<Color> = torus
        .neighbor_ids(v)
        .into_iter()
        .map(|u| coloring.get(u))
        .collect();
    if own == k {
        // Seed immortality: the SMP rule must keep the vertex at k.
        if SmpProtocol.next_color(own, &nbr_colors) != k {
            1
        } else {
            0
        }
    } else {
        let mut score = 0usize;
        // At most one neighbour of the own colour.
        let own_count = nbr_colors.iter().filter(|&&c| c == own).count();
        score += own_count.saturating_sub(1);
        // Colours outside {own, k} must not repeat.
        let mut others: Vec<Color> = nbr_colors
            .iter()
            .copied()
            .filter(|&c| c != own && c != k)
            .collect();
        others.sort_unstable();
        for w in others.windows(2) {
            if w[0] == w[1] {
                score += 1;
            }
        }
        score
    }
}

/// Total violation score of a configuration (0 ⇒ valid).
pub fn total_violations(torus: &Torus, coloring: &Coloring, k: Color) -> usize {
    (0..coloring.len())
        .map(|v| vertex_violations(torus, coloring, k, NodeId::new(v)))
        .sum()
}

/// Randomized local-search filler.
///
/// * `partial` — the configuration with the seed already placed and every
///   other cell unset;
/// * `non_k` — the palette of colours available for the free cells;
/// * `seed` — RNG seed (the procedure is deterministic given the seed);
/// * `max_sweeps` — bound on repair sweeps before giving up.
///
/// Returns a fully-coloured configuration with zero violations, or `None`
/// if the search did not converge within the budget.
pub fn local_search_fill(
    torus: &Torus,
    partial: &Coloring,
    k: Color,
    non_k: &[Color],
    seed: u64,
    max_sweeps: usize,
) -> Option<Coloring> {
    assert!(!non_k.is_empty(), "need at least one non-k colour");
    assert!(
        !non_k.contains(&k),
        "the non-k palette must not contain the target colour"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Free cells are the ones the search may modify.
    let free: Vec<NodeId> = (0..partial.len())
        .map(NodeId::new)
        .filter(|&v| partial.get(v).is_unset())
        .collect();

    // Initial random assignment.
    let mut coloring = partial.clone();
    for &v in &free {
        coloring.set(v, non_k[rng.gen_range(0..non_k.len())]);
    }

    // The violation score of a vertex only depends on its own colour and
    // its neighbours' colours, so changing one cell only affects the scores
    // of the cell itself and its four neighbours.
    let local_score = |coloring: &Coloring, v: NodeId| -> usize {
        let mut s = vertex_violations(torus, coloring, k, v);
        for u in torus.neighbor_ids(v) {
            s += vertex_violations(torus, coloring, k, u);
        }
        s
    };

    let mut order = free.clone();
    for sweep in 0..max_sweeps {
        if total_violations(torus, &coloring, k) == 0 {
            return Some(coloring);
        }
        order.shuffle(&mut rng);
        let mut improved = false;
        for &v in &order {
            let current = coloring.get(v);
            let mut best_color = current;
            let mut best_score = local_score(&coloring, v);
            if best_score == 0 {
                continue;
            }
            for &candidate in non_k {
                if candidate == current {
                    continue;
                }
                coloring.set(v, candidate);
                let score = local_score(&coloring, v);
                // Break ties randomly to escape plateaus.
                if score < best_score || (score == best_score && rng.gen_bool(0.25)) {
                    best_score = score;
                    best_color = candidate;
                }
            }
            coloring.set(v, best_color);
            if best_color != current {
                improved = true;
            }
        }
        // Occasionally perturb if stuck on a plateau.
        if !improved && sweep + 1 < max_sweeps {
            for _ in 0..(free.len() / 10).max(1) {
                let v = free[rng.gen_range(0..free.len())];
                coloring.set(v, non_k[rng.gen_range(0..non_k.len())]);
            }
        }
    }

    (total_violations(torus, &coloring, k) == 0).then_some(coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypotheses::check_hypotheses;
    use ctori_coloring::ColoringBuilder;
    use ctori_topology::{toroidal_mesh, torus_cordalis};

    fn k() -> Color {
        Color::new(1)
    }

    fn non_k(n: u16) -> Vec<Color> {
        (2..2 + n).map(Color::new).collect()
    }

    #[test]
    fn fill_free_respects_existing_cells() {
        let t = toroidal_mesh(4, 4);
        let partial = ColoringBuilder::unset(&t).row(0, k()).build_partial();
        let filled = fill_free(&partial, |c| Color::new(2 + (c.col % 2) as u16));
        assert_eq!(filled.at(0, 2), k());
        assert_eq!(filled.at(2, 0), Color::new(2));
        assert_eq!(filled.at(2, 1), Color::new(3));
        assert!(!filled.has_unset_cells());
    }

    #[test]
    fn zero_violations_matches_hypothesis_checker() {
        // Build a known-good configuration (all k except isolated distinct
        // cells) and check both measures agree.
        let t = toroidal_mesh(5, 5);
        let good = ColoringBuilder::filled(&t, k())
            .cell(1, 1, Color::new(2))
            .cell(3, 3, Color::new(3))
            .build();
        assert_eq!(total_violations(&t, &good, k()), 0);
        assert!(check_hypotheses(&t, &good, k()).is_empty());

        // And a known-bad one (two adjacent same-coloured vertices next to
        // a third neighbour of the same colour).
        let bad = ColoringBuilder::filled(&t, k())
            .cell(2, 1, Color::new(2))
            .cell(2, 3, Color::new(2))
            .cell(2, 2, Color::new(3))
            .build();
        // vertex (2,2) sees colour 2 twice
        assert!(total_violations(&t, &bad, k()) > 0);
        assert!(!check_hypotheses(&t, &bad, k()).is_empty());
    }

    #[test]
    fn local_search_fills_mesh_complement_of_a_cross() {
        // Seed: full row 0 and full column 0 (a comfortably large seed);
        // the search must colour the rest with 4 non-k colours such that
        // the hypotheses hold.
        let t = toroidal_mesh(7, 7);
        let partial = ColoringBuilder::unset(&t)
            .row(0, k())
            .column(0, k())
            .build_partial();
        let filled = local_search_fill(&t, &partial, k(), &non_k(4), 42, 200)
            .expect("local search should converge on a 7x7 torus");
        assert!(check_hypotheses(&t, &filled, k()).is_empty());
        assert_eq!(filled.count(k()), 13);
    }

    #[test]
    fn local_search_on_cordalis_theorem4_seed() {
        // Seed: full row 0 plus (1,0) — the Theorem 4 shape.
        let t = torus_cordalis(6, 7);
        let partial = ColoringBuilder::unset(&t)
            .row(0, k())
            .cell(1, 0, k())
            .build_partial();
        let filled = local_search_fill(&t, &partial, k(), &non_k(4), 7, 300)
            .expect("local search should converge on a 6x7 cordalis");
        assert!(check_hypotheses(&t, &filled, k()).is_empty());
        assert_eq!(filled.count(k()), 8);
    }

    #[test]
    fn local_search_is_deterministic_given_seed() {
        let t = toroidal_mesh(5, 5);
        let partial = ColoringBuilder::unset(&t)
            .row(0, k())
            .column(0, k())
            .build_partial();
        let a = local_search_fill(&t, &partial, k(), &non_k(4), 1, 200);
        let b = local_search_fill(&t, &partial, k(), &non_k(4), 1, 200);
        assert_eq!(a, b);
    }

    #[test]
    fn impossible_budget_returns_none() {
        // One sweep with a single non-k colour cannot satisfy the
        // distinctness constraints in the interior of a large torus.
        let t = toroidal_mesh(8, 8);
        let partial = ColoringBuilder::unset(&t).row(0, k()).build_partial();
        let result = local_search_fill(&t, &partial, k(), &non_k(1), 3, 2);
        assert!(result.is_none());
    }

    #[test]
    #[should_panic(expected = "must not contain the target colour")]
    fn palette_containing_k_is_rejected() {
        let t = toroidal_mesh(4, 4);
        let partial = ColoringBuilder::unset(&t).row(0, k()).build_partial();
        let _ = local_search_fill(&t, &partial, k(), &[k()], 0, 1);
    }
}
