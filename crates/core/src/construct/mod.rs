//! Constructions of minimum-size monotone dynamos (Theorems 2, 4 and 6).
//!
//! Each submodule builds, for one torus kind, an initial configuration
//! whose `k`-coloured seed matches the corresponding lower bound and whose
//! remaining vertices are coloured so that the hypotheses of the theorem
//! hold (every non-`k` class is a forest and no non-`k` vertex sees two
//! equal colours outside its class and `k`).
//!
//! ## Fillers and palette sizes — a reproduction note
//!
//! The paper states that four colours suffice (`|C| ≥ 4`) and exhibits one
//! four-colour pattern for the toroidal mesh (its Figure 2, an image whose
//! exact cell values are not recoverable from the text).  Our
//! reconstruction provides:
//!
//! * **stripe fillers** — deterministic periodic patterns that satisfy the
//!   hypotheses with exactly 4 colours whenever the relevant dimension is
//!   divisible by 3 (rows for the toroidal mesh, columns for the cordalis
//!   and serpentinus);
//! * a **brick filler** — a deterministic 5-colour pattern that works for
//!   every size of the toroidal mesh;
//! * a **local-search filler** — a randomized repair procedure over a
//!   palette of configurable size that handles the remaining sizes of the
//!   cordalis and serpentinus (typically succeeding with 5 colours, and
//!   with 4 on many sizes).
//!
//! Every construction is validated by [`crate::hypotheses::check_hypotheses`]
//! before being returned, and the experiment harness additionally verifies
//! by simulation that the result is a monotone dynamo of exactly the
//! lower-bound size, so the *claims* of Theorems 2/4/6 (a minimum-size
//! monotone dynamo exists) are fully reproduced; only the minimal palette
//! achieving them differs from the paper for some sizes, which
//! EXPERIMENTS.md records per size.

pub mod cordalis;
pub mod filler;
pub mod mesh;
pub mod serpentinus;

use crate::hypotheses::{check_hypotheses, HypothesisViolation};
use ctori_coloring::{Color, Coloring};
use ctori_topology::{NodeSet, Torus, TorusKind};

/// Which filling strategy produced a construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillerKind {
    /// Period-3 row stripes (toroidal mesh, `m ≡ 0 (mod 3)`), 4 colours.
    RowStripes,
    /// Period-3 column stripes (any torus with `n ≡ 0 (mod 3)`), 4 colours.
    ColumnStripes,
    /// Row-shifted "brick" pattern, 5 colours, any size (toroidal mesh).
    Brick,
    /// Randomized local-search repair over the given palette size.
    LocalSearch {
        /// Total number of colours (including `k`) the search used.
        colors: u16,
    },
}

impl std::fmt::Display for FillerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FillerKind::RowStripes => write!(f, "row stripes (4 colours)"),
            FillerKind::ColumnStripes => write!(f, "column stripes (4 colours)"),
            FillerKind::Brick => write!(f, "brick pattern (5 colours)"),
            FillerKind::LocalSearch { colors } => {
                write!(f, "local search ({colors} colours)")
            }
        }
    }
}

/// Why a construction failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConstructError {
    /// The requested torus is too small for the construction.
    TooSmall {
        /// Minimum rows required.
        min_rows: usize,
        /// Minimum columns required.
        min_cols: usize,
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
    },
    /// No filler satisfying the theorem hypotheses was found.
    FillerFailed {
        /// The violations reported for the last attempted filler.
        last_violations: Vec<HypothesisViolation>,
    },
}

impl std::fmt::Display for ConstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstructError::TooSmall {
                min_rows,
                min_cols,
                rows,
                cols,
            } => write!(
                f,
                "torus {rows}x{cols} is too small; the construction needs at least {min_rows}x{min_cols}"
            ),
            ConstructError::FillerFailed { last_violations } => write!(
                f,
                "no hypothesis-satisfying filler found ({} violation(s) in the last attempt)",
                last_violations.len()
            ),
        }
    }
}

impl std::error::Error for ConstructError {}

/// A validated minimum-size monotone dynamo construction.
#[derive(Clone, Debug)]
pub struct ConstructedDynamo {
    torus: Torus,
    coloring: Coloring,
    k: Color,
    seed: NodeSet,
    filler: FillerKind,
}

impl ConstructedDynamo {
    /// Assembles and validates a construction.  Returns `Err` if the
    /// hypotheses of the theorems do not hold for the given configuration.
    pub fn validated(
        torus: Torus,
        coloring: Coloring,
        k: Color,
        filler: FillerKind,
    ) -> Result<Self, ConstructError> {
        let violations = check_hypotheses(&torus, &coloring, k);
        if !violations.is_empty() {
            return Err(ConstructError::FillerFailed {
                last_violations: violations,
            });
        }
        let seed = ctori_coloring::color_class(&coloring, k);
        Ok(ConstructedDynamo {
            torus,
            coloring,
            k,
            seed,
            filler,
        })
    }

    /// The torus the construction lives on.
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// The full initial configuration.
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }

    /// The target colour `k`.
    pub fn k(&self) -> Color {
        self.k
    }

    /// The seed set `S^k`.
    pub fn seed(&self) -> &NodeSet {
        &self.seed
    }

    /// `|S^k|`.
    pub fn seed_size(&self) -> usize {
        self.seed.count()
    }

    /// The filler strategy that produced the configuration.
    pub fn filler(&self) -> FillerKind {
        self.filler
    }

    /// Number of distinct colours used by the configuration (`|C|`).
    pub fn colors_used(&self) -> u16 {
        crate::hypotheses::palette_size_used(&self.coloring)
    }

    /// The lower bound the seed is supposed to match (Theorems 1, 3, 5).
    pub fn lower_bound(&self) -> usize {
        crate::bounds::lower_bound_for(&self.torus)
    }

    /// Whether the seed size equals the lower bound (i.e. the construction
    /// is minimum-size).
    pub fn is_minimum_size(&self) -> bool {
        self.seed_size() == self.lower_bound()
    }
}

/// Builds the minimum-size dynamo construction for any torus kind by
/// dispatching to the right theorem.
pub fn minimum_dynamo(
    kind: TorusKind,
    m: usize,
    n: usize,
    k: Color,
) -> Result<ConstructedDynamo, ConstructError> {
    match kind {
        TorusKind::ToroidalMesh => mesh::theorem2_dynamo(m, n, k),
        TorusKind::TorusCordalis => cordalis::theorem4_dynamo(m, n, k),
        TorusKind::TorusSerpentinus => serpentinus::theorem6_dynamo(m, n, k),
        other => panic!("no minimum-dynamo construction for {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_coloring::ColoringBuilder;
    use ctori_topology::toroidal_mesh;

    #[test]
    fn validated_rejects_bad_configurations() {
        let t = toroidal_mesh(5, 5);
        let k = Color::new(1);
        // A full non-k row is a cycle: forest condition fails.
        let bad = ColoringBuilder::filled(&t, k).row(2, Color::new(2)).build();
        let err = ConstructedDynamo::validated(t, bad, k, FillerKind::RowStripes).unwrap_err();
        assert!(matches!(err, ConstructError::FillerFailed { .. }));
        let _ = err.to_string();
    }

    #[test]
    fn too_small_error_formats() {
        let e = ConstructError::TooSmall {
            min_rows: 3,
            min_cols: 3,
            rows: 2,
            cols: 5,
        };
        assert!(e.to_string().contains("2x5"));
    }

    #[test]
    fn filler_kind_display() {
        assert!(FillerKind::RowStripes.to_string().contains("4 colours"));
        assert!(FillerKind::Brick.to_string().contains("5 colours"));
        assert!(FillerKind::LocalSearch { colors: 5 }
            .to_string()
            .contains('5'));
    }

    #[test]
    fn dispatch_builds_for_every_kind() {
        let k = Color::new(1);
        for kind in ctori_topology::TorusKind::ALL {
            let built = minimum_dynamo(kind, 6, 6, k).expect("6x6 constructible");
            assert_eq!(built.seed_size(), crate::bounds::lower_bound(kind, 6, 6));
            assert!(built.is_minimum_size());
            assert_eq!(built.k(), k);
        }
    }
}
