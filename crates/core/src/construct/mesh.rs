//! Theorem 2: minimum-size monotone dynamos on the toroidal mesh.
//!
//! The seed `S^k` is a full `k`-coloured column plus a `k`-coloured row
//! missing one vertex (or the transposed arrangement), for a total of
//! `m + n − 2` vertices — exactly the Theorem-1 lower bound.  The remaining
//! vertices are coloured so that the hypotheses of Theorem 2 hold; see the
//! module documentation of [`crate::construct`] for the filler strategies
//! and their palette sizes.

use super::filler::{fill_free, local_search_fill};
use super::{ConstructError, ConstructedDynamo, FillerKind};
use crate::hypotheses::check_hypotheses;
use ctori_coloring::{Color, Coloring, ColoringBuilder};
use ctori_topology::{toroidal_mesh, Coord, Torus};

/// Returns `count` colours different from `k`, using the smallest indices
/// available.
pub(crate) fn colors_excluding(k: Color, count: u16) -> Vec<Color> {
    (1..)
        .map(Color::new)
        .filter(|&c| c != k)
        .take(count as usize)
        .collect()
}

/// The seed of Theorem 2 in the "column + row" orientation: the full
/// column 0 plus row 0 without its last vertex `(0, n−1)`.
pub fn theorem2_seed_column_row(torus: &Torus, k: Color) -> Coloring {
    ColoringBuilder::unset(torus)
        .column(0, k)
        .row_except(0, &[torus.cols() - 1], k)
        .build_partial()
}

/// The seed of Theorem 2 in the transposed "row + column" orientation: the
/// full row 0 plus column 0 without its last vertex `(m−1, 0)`.
pub fn theorem2_seed_row_column(torus: &Torus, k: Color) -> Coloring {
    ColoringBuilder::unset(torus)
        .row(0, k)
        .column_except(0, &[torus.rows() - 1], k)
        .build_partial()
}

/// Row-stripe filler for the column+row orientation.  Valid (with exactly
/// three non-`k` colours) when `m ≡ 0 (mod 3)`; the caller validates.
fn row_stripe_candidate(torus: &Torus, partial: &Coloring, k: Color) -> Coloring {
    let p = colors_excluding(k, 3);
    let n = torus.cols();
    fill_free(partial, |c: Coord| {
        if c.row == 0 && c.col == n - 1 {
            // The vertex excluded from the seed row takes the third stripe
            // colour, which the stripe phase never places adjacent to it.
            p[2]
        } else {
            p[(c.row - 1) % 3]
        }
    })
}

/// Column-stripe filler for the row+column orientation.  Valid (with
/// exactly three non-`k` colours) when `n ≡ 0 (mod 3)`.
fn column_stripe_candidate(torus: &Torus, partial: &Coloring, k: Color) -> Coloring {
    let p = colors_excluding(k, 3);
    let m = torus.rows();
    fill_free(partial, |c: Coord| {
        if c.col == 0 && c.row == m - 1 {
            p[2]
        } else {
            p[(c.col - 1) % 3]
        }
    })
}

/// Brick filler for the column+row orientation: five colours, any size.
///
/// Row `i ≥ 2` uses phase 2, row 1 uses phase 0; cell `(i, j)` gets colour
/// `P[(j + phase) mod 4]`, and the excluded vertex `(0, n−1)` gets
/// `P[(n − 1) mod 4]` (the colour of its southern neighbour's class, which
/// the analysis in DESIGN.md shows is always safe).
fn brick_candidate(torus: &Torus, partial: &Coloring, k: Color) -> Coloring {
    let p = colors_excluding(k, 4);
    let n = torus.cols();
    fill_free(partial, |c: Coord| {
        if c.row == 0 && c.col == n - 1 {
            p[(n - 1) % 4]
        } else {
            let phase = if c.row == 1 { 0 } else { 2 };
            p[(c.col + phase) % 4]
        }
    })
}

/// Builds the Theorem-2 minimum monotone dynamo for an `m × n` toroidal
/// mesh with target colour `k`.
///
/// Tries, in order: the 4-colour row-stripe filler (`m ≡ 0 mod 3`), the
/// 4-colour column-stripe filler on the transposed seed (`n ≡ 0 mod 3`),
/// the deterministic 5-colour brick filler, and finally a randomized
/// local search.  Every candidate is validated against the theorem
/// hypotheses before being returned.
///
/// # Errors
///
/// Returns [`ConstructError::TooSmall`] when `m < 3` or `n < 3` and
/// [`ConstructError::FillerFailed`] if no filler satisfies the hypotheses
/// (not expected for any `m, n ≥ 3`).
pub fn theorem2_dynamo(m: usize, n: usize, k: Color) -> Result<ConstructedDynamo, ConstructError> {
    if m < 3 || n < 3 {
        return Err(ConstructError::TooSmall {
            min_rows: 3,
            min_cols: 3,
            rows: m,
            cols: n,
        });
    }
    let torus = toroidal_mesh(m, n);

    // 1. Four-colour row stripes (column+row orientation).
    if m.is_multiple_of(3) {
        let partial = theorem2_seed_column_row(&torus, k);
        let candidate = row_stripe_candidate(&torus, &partial, k);
        if check_hypotheses(&torus, &candidate, k).is_empty() {
            return ConstructedDynamo::validated(torus, candidate, k, FillerKind::RowStripes);
        }
    }

    // 2. Four-colour column stripes (row+column orientation).
    if n.is_multiple_of(3) {
        let partial = theorem2_seed_row_column(&torus, k);
        let candidate = column_stripe_candidate(&torus, &partial, k);
        if check_hypotheses(&torus, &candidate, k).is_empty() {
            return ConstructedDynamo::validated(torus, candidate, k, FillerKind::ColumnStripes);
        }
    }

    // 3. Five-colour brick pattern (column+row orientation), any size.
    let mut last_violations;
    {
        let partial = theorem2_seed_column_row(&torus, k);
        let candidate = brick_candidate(&torus, &partial, k);
        let violations = check_hypotheses(&torus, &candidate, k);
        if violations.is_empty() {
            return ConstructedDynamo::validated(torus, candidate, k, FillerKind::Brick);
        }
        last_violations = violations;
    }

    // 4. Local search with progressively larger palettes (3, 4, then 5
    // non-k colours).  With 4 non-k colours the strengthened local
    // constraints force every interior vertex to have exactly one
    // neighbour of its own colour, which the randomized repair does not
    // always find; the 5-colour palette gives it slack.
    for extra in [3u16, 4, 5, 6] {
        let partial = theorem2_seed_column_row(&torus, k);
        let palette = colors_excluding(k, extra);
        if let Some(candidate) =
            local_search_fill(&torus, &partial, k, &palette, 0xC0FFEE + extra as u64, 700)
        {
            let violations = check_hypotheses(&torus, &candidate, k);
            if violations.is_empty() {
                return ConstructedDynamo::validated(
                    torus,
                    candidate,
                    k,
                    FillerKind::LocalSearch { colors: extra + 1 },
                );
            }
            last_violations = violations;
        }
    }

    Err(ConstructError::FillerFailed { last_violations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::toroidal_mesh_lower_bound;
    use crate::dynamo::verify_dynamo;

    fn k() -> Color {
        Color::new(1)
    }

    #[test]
    fn seed_shapes_have_the_right_size() {
        let t = toroidal_mesh(6, 8);
        let a = theorem2_seed_column_row(&t, k());
        assert_eq!(a.count(k()), 6 + 8 - 2);
        assert!(a.at(0, 7).is_unset(), "the last row vertex is excluded");
        let b = theorem2_seed_row_column(&t, k());
        assert_eq!(b.count(k()), 6 + 8 - 2);
        assert!(b.at(5, 0).is_unset(), "the last column vertex is excluded");
    }

    #[test]
    fn construction_is_minimum_size_and_verified() {
        for (m, n) in [(6usize, 6usize), (6, 7), (7, 6), (9, 5), (5, 9)] {
            let built = theorem2_dynamo(m, n, k()).unwrap_or_else(|e| {
                panic!("construction failed for {m}x{n}: {e}");
            });
            assert_eq!(built.seed_size(), toroidal_mesh_lower_bound(m, n));
            assert!(built.is_minimum_size());
            let report = verify_dynamo(built.torus(), built.coloring(), k());
            assert!(
                report.is_monotone_dynamo(),
                "{m}x{n} construction must be a monotone dynamo (filler {})",
                built.filler()
            );
        }
    }

    #[test]
    fn four_colors_when_a_dimension_is_divisible_by_three() {
        for (m, n) in [(6usize, 7usize), (9, 8), (7, 6), (8, 9), (6, 6)] {
            let built = theorem2_dynamo(m, n, k()).unwrap();
            assert_eq!(
                built.colors_used(),
                4,
                "{m}x{n} should admit a 4-colour construction"
            );
            assert!(matches!(
                built.filler(),
                FillerKind::RowStripes | FillerKind::ColumnStripes
            ));
        }
    }

    #[test]
    fn awkward_sizes_still_construct() {
        // Neither dimension divisible by 3: the brick or local-search
        // filler must take over.
        for (m, n) in [(5usize, 5usize), (7, 7), (8, 7), (10, 11)] {
            let built = theorem2_dynamo(m, n, k()).unwrap();
            assert!(built.is_minimum_size());
            assert!(built.colors_used() <= 5);
            let report = verify_dynamo(built.torus(), built.coloring(), k());
            assert!(report.is_monotone_dynamo(), "{m}x{n} must verify");
        }
    }

    #[test]
    fn different_target_colors_are_supported() {
        let built = theorem2_dynamo(6, 6, Color::new(3)).unwrap();
        assert_eq!(built.k(), Color::new(3));
        assert_eq!(built.coloring().count(Color::new(3)), 10);
        let report = verify_dynamo(built.torus(), built.coloring(), Color::new(3));
        assert!(report.is_monotone_dynamo());
    }

    #[test]
    fn too_small_sizes_are_rejected() {
        assert!(matches!(
            theorem2_dynamo(2, 5, k()),
            Err(ConstructError::TooSmall { .. })
        ));
        assert!(matches!(
            theorem2_dynamo(5, 2, k()),
            Err(ConstructError::TooSmall { .. })
        ));
    }

    #[test]
    fn colors_excluding_skips_target() {
        assert_eq!(
            colors_excluding(Color::new(2), 3),
            vec![Color::new(1), Color::new(3), Color::new(4)]
        );
        assert_eq!(
            colors_excluding(Color::new(1), 2),
            vec![Color::new(2), Color::new(3)]
        );
    }
}
