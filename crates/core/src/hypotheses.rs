//! Machine-checkable hypotheses of Theorems 2, 4 and 6.
//!
//! All three construction theorems share the same two conditions on the
//! colours *other than* the target colour `k`:
//!
//! 1. **Forest condition** — for every colour `k' ≠ k`, the set `S^{k'}` of
//!    `k'`-coloured vertices induces a forest in the torus;
//! 2. **Distinct-neighbour condition** — for every vertex `x` with colour
//!    `k' ≠ k`, the vertices in `N(x) \ (V^{k'} ∪ V^k)` have pairwise
//!    different colours.
//!
//! Together these guarantee that no `k'`-block can ever form, so the
//! `k`-coloured region grows monotonically until it covers the torus.
//!
//! In addition, this module provides the **seed immortality** check: every
//! `k`-coloured vertex must be unable to lose its colour in the first
//! round, i.e. no other colour may have a unique plurality of at least two
//! in its neighbourhood.  (For seed vertices with two `k`-neighbours this
//! is automatic; the Theorem-2 seed has one vertex with a single
//! `k`-neighbour, for which the condition constrains the filler.)

use ctori_coloring::{Color, Coloring, Palette};
use ctori_protocols::{LocalRule, SmpProtocol};
use ctori_topology::{is_forest, NodeId, Torus};

/// A violation of one of the construction hypotheses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HypothesisViolation {
    /// Some non-`k` colour class contains a cycle.
    NotAForest {
        /// The offending colour.
        color: Color,
    },
    /// A non-`k` vertex sees two neighbours of the same colour outside its
    /// own class and `k`.
    RepeatedNeighborColor {
        /// The vertex at which the violation occurs.
        vertex: NodeId,
        /// The repeated colour.
        color: Color,
    },
    /// A `k`-coloured seed vertex would lose its colour in the first round.
    SeedNotImmortal {
        /// The seed vertex that would recolour.
        vertex: NodeId,
        /// The colour it would adopt.
        adopts: Color,
    },
}

impl std::fmt::Display for HypothesisViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HypothesisViolation::NotAForest { color } => {
                write!(f, "colour class {color} is not a forest")
            }
            HypothesisViolation::RepeatedNeighborColor { vertex, color } => write!(
                f,
                "vertex {vertex} sees two neighbours of colour {color} outside its class and k"
            ),
            HypothesisViolation::SeedNotImmortal { vertex, adopts } => write!(
                f,
                "seed vertex {vertex} would recolour to {adopts} in the first round"
            ),
        }
    }
}

/// Checks the forest condition for every colour other than `k`.
pub fn check_forest_condition(
    torus: &Torus,
    coloring: &Coloring,
    k: Color,
) -> Result<(), HypothesisViolation> {
    for color in coloring.distinct_colors() {
        if color == k {
            continue;
        }
        let class = ctori_coloring::color_class(coloring, color);
        if !is_forest(torus, &class) {
            return Err(HypothesisViolation::NotAForest { color });
        }
    }
    Ok(())
}

/// Checks the distinct-neighbour condition for every non-`k` vertex.
pub fn check_distinct_neighbor_condition(
    torus: &Torus,
    coloring: &Coloring,
    k: Color,
) -> Result<(), HypothesisViolation> {
    for v in 0..coloring.len() {
        let v = NodeId::new(v);
        let own = coloring.get(v);
        if own == k {
            continue;
        }
        let mut seen: Vec<Color> = Vec::with_capacity(4);
        for u in torus.neighbor_ids(v) {
            let c = coloring.get(u);
            if c == k || c == own {
                continue;
            }
            if seen.contains(&c) {
                return Err(HypothesisViolation::RepeatedNeighborColor {
                    vertex: v,
                    color: c,
                });
            }
            seen.push(c);
        }
    }
    Ok(())
}

/// Checks that no `k`-coloured vertex recolours in the first round under
/// the SMP-Protocol (a necessary condition for monotonicity).
pub fn check_seed_immortal(
    torus: &Torus,
    coloring: &Coloring,
    k: Color,
) -> Result<(), HypothesisViolation> {
    let rule = SmpProtocol;
    for v in 0..coloring.len() {
        let v = NodeId::new(v);
        if coloring.get(v) != k {
            continue;
        }
        let nbrs: Vec<Color> = torus
            .neighbor_ids(v)
            .into_iter()
            .map(|u| coloring.get(u))
            .collect();
        let next = rule.next_color(k, &nbrs);
        if next != k {
            return Err(HypothesisViolation::SeedNotImmortal {
                vertex: v,
                adopts: next,
            });
        }
    }
    Ok(())
}

/// Runs all three checks.  Returns every violation found (empty = the
/// configuration satisfies the hypotheses of Theorems 2 / 4 / 6).
pub fn check_hypotheses(torus: &Torus, coloring: &Coloring, k: Color) -> Vec<HypothesisViolation> {
    let mut violations = Vec::new();
    if let Err(v) = check_forest_condition(torus, coloring, k) {
        violations.push(v);
    }
    if let Err(v) = check_distinct_neighbor_condition(torus, coloring, k) {
        violations.push(v);
    }
    if let Err(v) = check_seed_immortal(torus, coloring, k) {
        violations.push(v);
    }
    violations
}

/// Counts how many distinct colours a configuration uses, as a convenience
/// for reporting "this construction needed |C| = …" in the experiments.
pub fn palette_size_used(coloring: &Coloring) -> u16 {
    coloring.distinct_colors().len() as u16
}

/// Builds the smallest palette containing every colour used by the
/// configuration.
pub fn palette_of(coloring: &Coloring) -> Palette {
    let max = coloring
        .distinct_colors()
        .into_iter()
        .map(|c| c.index())
        .max()
        .unwrap_or(1);
    Palette::new(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_coloring::ColoringBuilder;
    use ctori_topology::toroidal_mesh;

    fn k() -> Color {
        Color::new(1)
    }

    #[test]
    fn forest_condition_rejects_full_non_k_row() {
        // A full row of colour 2 on a toroidal mesh wraps into a cycle.
        let t = toroidal_mesh(5, 5);
        let coloring = ColoringBuilder::filled(&t, k())
            .row(2, Color::new(2))
            .build();
        assert_eq!(
            check_forest_condition(&t, &coloring, k()),
            Err(HypothesisViolation::NotAForest {
                color: Color::new(2)
            })
        );
        // A partial row (a path, not a cycle) of colour 2 is fine.
        let coloring = ColoringBuilder::filled(&t, k())
            .row_except(2, &[4], Color::new(2))
            .build();
        assert!(check_forest_condition(&t, &coloring, k()).is_ok());
    }

    #[test]
    fn distinct_neighbor_condition_detects_repeats() {
        let t = toroidal_mesh(5, 5);
        // Vertex (2,2) has colour 3; neighbours (1,2) and (3,2) both have
        // colour 4 (not k, not 3): violation at (2,2).
        let coloring = ColoringBuilder::filled(&t, k())
            .cell(2, 2, Color::new(3))
            .cell(1, 2, Color::new(4))
            .cell(3, 2, Color::new(4))
            .build();
        let err = check_distinct_neighbor_condition(&t, &coloring, k()).unwrap_err();
        match err {
            HypothesisViolation::RepeatedNeighborColor { color, .. } => {
                assert_eq!(color, Color::new(4));
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn repeats_of_k_or_own_color_are_allowed() {
        let t = toroidal_mesh(5, 5);
        // (2,2) has colour 3; two neighbours are k and two are colour 3
        // (its own class): no violation.
        let coloring = ColoringBuilder::filled(&t, k())
            .cell(2, 2, Color::new(3))
            .cell(1, 2, Color::new(3))
            .cell(3, 2, Color::new(3))
            .build();
        assert!(check_distinct_neighbor_condition(&t, &coloring, k()).is_ok());
    }

    #[test]
    fn seed_immortality_detects_flippable_seed() {
        let t = toroidal_mesh(5, 5);
        // A single k vertex surrounded by three vertices of colour 2 flips
        // to 2 in the first round.
        let coloring = ColoringBuilder::filled(&t, Color::new(3))
            .cell(2, 2, k())
            .cell(1, 2, Color::new(2))
            .cell(3, 2, Color::new(2))
            .cell(2, 1, Color::new(2))
            .build();
        let err = check_seed_immortal(&t, &coloring, k()).unwrap_err();
        assert!(matches!(
            err,
            HypothesisViolation::SeedNotImmortal { adopts, .. } if adopts == Color::new(2)
        ));
    }

    #[test]
    fn seed_with_two_k_neighbors_is_always_immortal() {
        let t = toroidal_mesh(5, 5);
        // A full k column: every member has two k neighbours.
        let coloring = ColoringBuilder::filled(&t, Color::new(2))
            .column(0, k())
            .build();
        assert!(check_seed_immortal(&t, &coloring, k()).is_ok());
    }

    #[test]
    fn check_all_collects_violations() {
        let t = toroidal_mesh(5, 5);
        // Both a non-forest class and a repeated-neighbour violation.
        let coloring = ColoringBuilder::filled(&t, k())
            .row(2, Color::new(2))
            .cell(0, 0, Color::new(3))
            .cell(4, 0, Color::new(4))
            .cell(1, 0, Color::new(4))
            .build();
        let violations = check_hypotheses(&t, &coloring, k());
        assert!(!violations.is_empty());
        // display does not panic
        for v in &violations {
            let _ = v.to_string();
        }
    }

    #[test]
    fn palette_helpers() {
        let t = toroidal_mesh(3, 3);
        let coloring = ColoringBuilder::filled(&t, Color::new(1))
            .cell(0, 0, Color::new(4))
            .build();
        assert_eq!(palette_size_used(&coloring), 2);
        assert_eq!(palette_of(&coloring).size(), 4);
    }
}
