//! Non-dynamo configurations (Figures 3 and 4 of the paper).
//!
//! The paper uses two pictures to show that the hypotheses of Theorem 2
//! cannot be weakened:
//!
//! * **Figure 3** — a set of black vertices of the right size and shape
//!   that nevertheless is *not* a dynamo, because the colours around it do
//!   not satisfy the distinct-neighbour condition;
//! * **Figure 4** — a configuration in which *no recolouring can arise at
//!   all*: every vertex is blocked by a 2–2 tie (or worse), so the system
//!   is frozen at a non-monochromatic fixed point from the start.
//!
//! The published figures are images whose exact cell values are not
//! recoverable from the text, so the constructors below produce
//! *representative* configurations with the same stated properties, which
//! the accompanying tests verify by simulation:
//!
//! * [`figure3_configuration`] places the Theorem-2 seed (a column plus a
//!   row missing one vertex, `m + n − 2` black vertices) on an otherwise
//!   white torus.  With only two colours the black region cannot grow
//!   (every white vertex next to it sees a 2–2 tie) and the thin end of the
//!   black row even erodes, so the seed — although it has the minimum
//!   dynamo *size* — is not a dynamo.  This is also the phenomenon behind
//!   Remark 1 and Proposition 3 (two colours are not enough).
//! * [`figure4_configuration`] colours a full cross (row 0 and column 0)
//!   with `k` and every other vertex with one single other colour: every
//!   vertex of the torus, seed included, keeps its colour forever, i.e.
//!   "no recoloring can arise".

use ctori_coloring::{Color, Coloring, ColoringBuilder};
use ctori_topology::{toroidal_mesh, Torus};

/// A representative of Figure 3: a minimum-size black seed that is not a
/// dynamo because the remaining vertices violate the Theorem-2 conditions
/// (they all share one colour).
pub fn figure3_configuration(m: usize, n: usize, k: Color) -> (Torus, Coloring) {
    assert!(m >= 3 && n >= 3, "the counterexample needs m, n >= 3");
    let torus = toroidal_mesh(m, n);
    let other = if k == Color::new(1) {
        Color::new(2)
    } else {
        Color::new(1)
    };
    let coloring = ColoringBuilder::filled(&torus, other)
        .column(0, k)
        .row_except(0, &[n - 1], k)
        .build();
    (torus, coloring)
}

/// A representative of Figure 4: a configuration in which no vertex ever
/// recolours (a frozen, non-monochromatic fixed point).
pub fn figure4_configuration(m: usize, n: usize, k: Color) -> (Torus, Coloring) {
    assert!(m >= 3 && n >= 3, "the counterexample needs m, n >= 3");
    let torus = toroidal_mesh(m, n);
    let other = if k == Color::new(1) {
        Color::new(2)
    } else {
        Color::new(1)
    };
    let coloring = ColoringBuilder::filled(&torus, other)
        .row(0, k)
        .column(0, k)
        .build();
    (torus, coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamo::verify_dynamo;
    use crate::hypotheses::check_hypotheses;
    use ctori_engine::{RunConfig, Simulator, Termination};
    use ctori_protocols::SmpProtocol;

    fn k() -> Color {
        Color::new(2)
    }

    #[test]
    fn figure3_has_minimum_size_but_is_not_a_dynamo() {
        let (torus, coloring) = figure3_configuration(9, 9, k());
        assert_eq!(
            coloring.count(k()),
            9 + 9 - 2,
            "the seed has the Theorem-1 size"
        );
        let report = verify_dynamo(&torus, &coloring, k());
        assert!(
            !report.is_dynamo(),
            "Figure 3: black nodes do not constitute a dynamo"
        );
        // And the reason: the Theorem-2 hypotheses are violated.
        assert!(!check_hypotheses(&torus, &coloring, k()).is_empty());
    }

    #[test]
    fn figure4_has_no_recoloring_at_all() {
        let (torus, coloring) = figure4_configuration(7, 7, k());
        let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
        let step = sim.step();
        assert_eq!(step.changed, 0, "Figure 4: no recoloring can arise");
        let mut sim = Simulator::new(&torus, SmpProtocol, coloring);
        let report = sim.run(&RunConfig::default());
        assert_eq!(report.termination, Termination::FixedPoint);
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn counterexamples_work_for_other_target_colors() {
        let (torus, coloring) = figure3_configuration(6, 6, Color::new(1));
        assert_eq!(coloring.count(Color::new(1)), 10);
        assert!(!verify_dynamo(&torus, &coloring, Color::new(1)).is_dynamo());
        let (_torus, coloring) = figure4_configuration(6, 6, Color::new(1));
        assert_eq!(coloring.distinct_colors().len(), 2);
    }

    #[test]
    #[should_panic(expected = "m, n >= 3")]
    fn tiny_counterexamples_are_rejected() {
        let _ = figure3_configuration(2, 9, k());
    }
}
