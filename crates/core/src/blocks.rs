//! `k`-blocks and non-`k`-blocks (Definitions 4 and 5 of the paper).
//!
//! * A **`k`-block** `B^k` is a connected set of `k`-coloured vertices each
//!   of which has at least two neighbours inside the block.  Under the
//!   SMP-Protocol such vertices can never change colour: at worst they see
//!   a 2–2 tie, which leaves them unchanged.
//! * A **non-`k`-block** `NB^k` is a connected set of vertices coloured
//!   from `C \ {k}`, each of which has at least three neighbours inside the
//!   set.  Such vertices have at most one `k`-coloured neighbour, so they
//!   can never adopt `k`; the existence of a non-`k`-block therefore rules
//!   out convergence to the `k`-monochromatic configuration.
//!
//! The maximal blocks are found by the standard core-peeling argument:
//! repeatedly delete vertices with fewer than the required number of
//! neighbours still in the candidate set; the connected components of what
//! remains are the maximal blocks, and every block (maximal or not) is a
//! subset of one of them.

use ctori_coloring::{Color, Coloring};
use ctori_topology::{induced_components, NodeId, NodeSet, Topology, Torus};

/// Peels `candidates` down to its maximal subset in which every vertex has
/// at least `min_internal` neighbours inside the subset.
fn peel_to_core<T: Topology + ?Sized>(
    topology: &T,
    candidates: &NodeSet,
    min_internal: usize,
) -> NodeSet {
    let mut core = candidates.clone();
    let mut queue: Vec<NodeId> = core.iter().collect();
    while let Some(v) = queue.pop() {
        if !core.contains(v) {
            continue;
        }
        let mut internal = 0usize;
        topology.for_each_neighbor(v, &mut |u| {
            if core.contains(u) {
                internal += 1;
            }
        });
        if internal < min_internal {
            core.remove(v);
            // Removing v may invalidate its neighbours.
            topology.for_each_neighbor(v, &mut |u| {
                if core.contains(u) {
                    queue.push(u);
                }
            });
        }
    }
    core
}

/// Splits a peeled core into its connected components (the maximal blocks).
fn core_components<T: Topology + ?Sized>(topology: &T, core: &NodeSet) -> Vec<NodeSet> {
    let comps = induced_components(topology, core);
    let mut blocks: Vec<NodeSet> = (0..comps.count)
        .map(|_| NodeSet::new(topology.node_count()))
        .collect();
    for v in core.iter() {
        if let Some(c) = comps.component_of(v) {
            blocks[c].insert(v);
        }
    }
    blocks
}

/// All maximal `k`-blocks of the colouring (Definition 4).
pub fn find_k_blocks(torus: &Torus, coloring: &Coloring, k: Color) -> Vec<NodeSet> {
    let candidates = ctori_coloring::color_class(coloring, k);
    let core = peel_to_core(torus, &candidates, 2);
    core_components(torus, &core)
}

/// All maximal non-`k`-blocks of the colouring (Definition 5).
pub fn find_non_k_blocks(torus: &Torus, coloring: &Coloring, k: Color) -> Vec<NodeSet> {
    let candidates = ctori_coloring::classes::non_color_class(coloring, k);
    let core = peel_to_core(torus, &candidates, 3);
    core_components(torus, &core)
}

/// Whether the colouring contains at least one non-`k`-block.
///
/// This is the obstruction used throughout Section III: if `T − S^k`
/// contains a non-`k`-block, no `k`-monochromatic configuration can ever
/// be reached, so `S^k` is not a dynamo (Lemma 2).
pub fn has_non_k_block(torus: &Torus, coloring: &Coloring, k: Color) -> bool {
    let candidates = ctori_coloring::classes::non_color_class(coloring, k);
    !peel_to_core(torus, &candidates, 3).is_empty()
}

/// Whether the colouring contains at least one `k`-block.
pub fn has_k_block(torus: &Torus, coloring: &Coloring, k: Color) -> bool {
    let candidates = ctori_coloring::color_class(coloring, k);
    !peel_to_core(torus, &candidates, 2).is_empty()
}

/// Checks whether an explicit vertex set is a `k`-block of the colouring:
/// connected, entirely `k`-coloured, and every member has at least two
/// neighbours in the set.
pub fn is_k_block(torus: &Torus, coloring: &Coloring, k: Color, set: &NodeSet) -> bool {
    if set.is_empty() {
        return false;
    }
    for v in set.iter() {
        if coloring.get(v) != k {
            return false;
        }
        let internal = torus
            .neighbor_ids(v)
            .into_iter()
            .filter(|u| set.contains(*u))
            .count();
        if internal < 2 {
            return false;
        }
    }
    induced_components(torus, set).count == 1
}

/// Checks whether the set of *all* `k`-coloured vertices is a union of
/// `k`-blocks — the first necessary condition of Lemma 2 for a monotone
/// dynamo.
pub fn seed_is_union_of_k_blocks(torus: &Torus, coloring: &Coloring, k: Color) -> bool {
    let candidates = ctori_coloring::color_class(coloring, k);
    if candidates.is_empty() {
        return false;
    }
    let core = peel_to_core(torus, &candidates, 2);
    // Every k vertex must survive the peeling, i.e. belong to some block.
    core == candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_coloring::ColoringBuilder;
    use ctori_topology::{toroidal_mesh, torus_cordalis, torus_serpentinus, Coord};

    fn k() -> Color {
        Color::new(2)
    }

    fn other() -> Color {
        Color::new(1)
    }

    #[test]
    fn single_column_is_a_block_in_mesh_and_cordalis_but_not_serpentinus() {
        // This is the example discussed right after Definition 4 in the
        // paper: a single column of k-coloured vertices is a k-block in a
        // toroidal mesh and in a torus cordalis but not in a torus
        // serpentinus.
        for (make, expect_block) in [
            (toroidal_mesh as fn(usize, usize) -> Torus, true),
            (torus_cordalis as fn(usize, usize) -> Torus, true),
            (torus_serpentinus as fn(usize, usize) -> Torus, false),
        ] {
            let t = make(5, 5);
            let coloring = ColoringBuilder::filled(&t, other()).column(2, k()).build();
            let blocks = find_k_blocks(&t, &coloring, k());
            assert_eq!(
                !blocks.is_empty(),
                expect_block,
                "column block mismatch on {}",
                t
            );
            if expect_block {
                assert_eq!(blocks.len(), 1);
                assert_eq!(blocks[0].count(), 5);
            }
        }
    }

    #[test]
    fn single_row_is_a_block_only_in_the_toroidal_mesh() {
        // Also from the paper: a single row is a k-block in a toroidal mesh
        // but not in a torus cordalis or serpentinus.
        for (make, expect_block) in [
            (toroidal_mesh as fn(usize, usize) -> Torus, true),
            (torus_cordalis as fn(usize, usize) -> Torus, false),
            (torus_serpentinus as fn(usize, usize) -> Torus, false),
        ] {
            let t = make(5, 5);
            let coloring = ColoringBuilder::filled(&t, other()).row(2, k()).build();
            assert_eq!(
                has_k_block(&t, &coloring, k()),
                expect_block,
                "row block mismatch on {}",
                t
            );
        }
    }

    #[test]
    fn two_consecutive_rows_are_a_block_in_all_tori() {
        // "two consecutive rows of k-colored vertices constitute a k-block
        // in all the tori"
        for make in [
            toroidal_mesh as fn(usize, usize) -> Torus,
            torus_cordalis,
            torus_serpentinus,
        ] {
            let t = make(5, 6);
            let coloring = ColoringBuilder::filled(&t, other())
                .row(1, k())
                .row(2, k())
                .build();
            let blocks = find_k_blocks(&t, &coloring, k());
            assert_eq!(blocks.len(), 1, "two rows must form one block on {}", t);
            assert_eq!(blocks[0].count(), 12);
        }
    }

    #[test]
    fn two_consecutive_columns_are_a_block_in_all_tori() {
        for make in [
            toroidal_mesh as fn(usize, usize) -> Torus,
            torus_cordalis,
            torus_serpentinus,
        ] {
            let t = make(6, 5);
            let coloring = ColoringBuilder::filled(&t, other())
                .column(1, k())
                .column(2, k())
                .build();
            assert!(has_k_block(&t, &coloring, k()), "two columns on {}", t);
        }
    }

    #[test]
    fn non_k_block_from_two_rows_on_the_toroidal_mesh() {
        // Two consecutive rows of non-k colours wrap around on the toroidal
        // mesh, so every member has at least three neighbours in the band:
        // a non-k-block (the example following Definition 5).
        let t = toroidal_mesh(5, 6);
        let coloring = ColoringBuilder::filled(&t, k())
            .row(1, Color::new(3))
            .row(2, Color::new(4))
            .build();
        let nblocks = find_non_k_blocks(&t, &coloring, k());
        assert_eq!(nblocks.len(), 1);
        assert_eq!(nblocks[0].count(), 12);
        assert!(has_non_k_block(&t, &coloring, k()));
    }

    #[test]
    fn non_k_band_orientation_depends_on_the_chaining() {
        // In the torus cordalis the row wrap-around is chained away, so a
        // 2-row band has two weak end vertices and erodes entirely under
        // Definition 5 peeling; a 2-column band (columns still wrap) is a
        // genuine non-k-block.  In the torus serpentinus both wraps are
        // chained and neither thin band survives.
        let band_rows = |t: &Torus| {
            ColoringBuilder::filled(t, k())
                .row(1, Color::new(3))
                .row(2, Color::new(4))
                .build()
        };
        let band_cols = |t: &Torus| {
            ColoringBuilder::filled(t, k())
                .column(1, Color::new(3))
                .column(2, Color::new(4))
                .build()
        };

        let cord = torus_cordalis(5, 6);
        assert!(!has_non_k_block(&cord, &band_rows(&cord), k()));
        assert!(has_non_k_block(&cord, &band_cols(&cord), k()));

        let serp = torus_serpentinus(5, 6);
        assert!(!has_non_k_block(&serp, &band_rows(&serp), k()));
        assert!(!has_non_k_block(&serp, &band_cols(&serp), k()));

        // A configuration with no k vertex at all is trivially one big
        // non-k-block on every topology.
        let all_other = ColoringBuilder::filled(&serp, Color::new(3)).build();
        let blocks = find_non_k_blocks(&serp, &all_other, k());
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].count(), 30);
    }

    #[test]
    fn isolated_vertices_form_no_blocks() {
        let t = toroidal_mesh(5, 5);
        let coloring = ColoringBuilder::filled(&t, other())
            .cell(1, 1, k())
            .cell(3, 3, k())
            .build();
        assert!(find_k_blocks(&t, &coloring, k()).is_empty());
        assert!(!has_k_block(&t, &coloring, k()));
        assert!(!seed_is_union_of_k_blocks(&t, &coloring, k()));
    }

    #[test]
    fn l_shape_is_partially_peeled() {
        // An L of k vertices: the corner cell has 2 k-neighbours, but the
        // two arm tips have only one, so peeling removes the arms from the
        // outside in; a 1-wide L ultimately has no 2-core at all.
        let t = toroidal_mesh(6, 6);
        let mut b = ColoringBuilder::filled(&t, other());
        for i in 0..4 {
            b = b.cell(i, 0, k());
        }
        for j in 1..4 {
            b = b.cell(3, j, k());
        }
        let coloring = b.build();
        assert!(!has_k_block(&t, &coloring, k()), "a 1-wide L has no 2-core");
    }

    #[test]
    fn explicit_block_check() {
        let t = toroidal_mesh(5, 5);
        let coloring = ColoringBuilder::filled(&t, other())
            .rect(1..=2, 1..=2, k())
            .build();
        let square: NodeSet = NodeSet::from_iter(
            t.node_count(),
            [(1, 1), (1, 2), (2, 1), (2, 2)]
                .into_iter()
                .map(|(r, c)| t.id(Coord::new(r, c))),
        );
        assert!(is_k_block(&t, &coloring, k(), &square));
        // A 2x2 square is detected by the maximal-block finder as well.
        let blocks = find_k_blocks(&t, &coloring, k());
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0], square);
        // Wrong colour or broken connectivity fail the explicit check.
        assert!(!is_k_block(&t, &coloring, Color::new(3), &square));
        let disconnected = NodeSet::from_iter(
            t.node_count(),
            [(1, 1), (3, 3)]
                .into_iter()
                .map(|(r, c)| t.id(Coord::new(r, c))),
        );
        assert!(!is_k_block(&t, &coloring, k(), &disconnected));
        let empty = NodeSet::new(t.node_count());
        assert!(!is_k_block(&t, &coloring, k(), &empty));
    }

    #[test]
    fn seed_union_of_blocks_detects_theorem2_shape() {
        // Full column 0 + row 0 missing its last vertex: the column is a
        // block; the row-0 tail cells have 2 k-neighbours each except the
        // one next to the gap... the whole seed survives peeling only in
        // the toroidal mesh if it forms blocks. Check the simplest valid
        // case: full column + full row (both are blocks in the mesh).
        let t = toroidal_mesh(5, 5);
        let coloring = ColoringBuilder::filled(&t, other())
            .column(0, k())
            .row(0, k())
            .build();
        assert!(seed_is_union_of_k_blocks(&t, &coloring, k()));
    }

    #[test]
    fn whole_torus_is_one_giant_block() {
        let t = torus_cordalis(4, 4);
        let coloring = Coloring::uniform(&t, k());
        let blocks = find_k_blocks(&t, &coloring, k());
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].count(), 16);
        assert!(find_non_k_blocks(&t, &coloring, k()).is_empty());
    }
}
