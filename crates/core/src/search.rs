//! Exhaustive search for minimum monotone dynamos on small tori.
//!
//! The lower bounds of Theorems 1, 3 and 5 state that *no* initial
//! configuration with fewer than the bound's number of `k`-coloured
//! vertices can be a monotone dynamo — over all placements of the seed
//! *and* all colourings of the remaining vertices.  On small tori this is
//! directly checkable: enumerate seed placements, enumerate fillers over
//! `C \ {k}`, and simulate.  Two necessary conditions from the paper prune
//! the enumeration drastically:
//!
//! * Lemma 1 — the bounding rectangle of a dynamo must span at least
//!   `(m−1) × (n−1)`;
//! * Lemma 2 — a monotone dynamo is a union of `k`-blocks (every seed
//!   vertex has at least two seed neighbours).
//!
//! The searches stay exponential, of course; they are meant for the
//! `3×3 … 4×5`-scale instances used by the `thm1`/`thm3`/`thm5`/`prop3`
//! experiments and the corresponding benches.

use crate::blocks::seed_is_union_of_k_blocks;
use crate::dynamo::verify_dynamo;
use ctori_coloring::{Color, Coloring, Palette};
use ctori_engine::parallel_runs;
use ctori_topology::{bounding_rectangle, NodeId, NodeSet, Topology, Torus};

/// Options controlling the exhaustive search.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// The colour set `C` (the target colour `k` must belong to it).
    pub palette: Palette,
    /// Require the dynamo to be monotone (the paper's setting).  When
    /// `false`, any dynamo is accepted.
    pub require_monotone: bool,
    /// Apply the Lemma-1 bounding-rectangle pruning.
    pub prune_rectangle: bool,
    /// Apply the Lemma-2 union-of-blocks pruning (only sound when
    /// `require_monotone` is set).
    pub prune_blocks: bool,
}

impl SearchConfig {
    /// The default configuration used by the experiments: monotone dynamos
    /// with both prunings enabled.
    pub fn monotone(palette: Palette) -> Self {
        SearchConfig {
            palette,
            require_monotone: true,
            prune_rectangle: true,
            prune_blocks: true,
        }
    }
}

/// Result of an exhaustive search over seeds of a fixed size.
#[derive(Clone, Debug)]
pub enum SearchOutcome {
    /// A dynamo of the given seed size exists; an example configuration
    /// and its convergence time are returned.
    Found {
        /// Seed size of the example.
        size: usize,
        /// The witnessing initial configuration.
        example: Coloring,
        /// Rounds it needed to become monochromatic.
        rounds: usize,
    },
    /// No dynamo with a seed of the given size exists (for the given
    /// palette).
    NoneOfSize(usize),
}

impl SearchOutcome {
    /// Whether a dynamo was found.
    pub fn found(&self) -> bool {
        matches!(self, SearchOutcome::Found { .. })
    }
}

/// Iterator over all `size`-subsets of `0..n`, as index vectors.
fn combinations(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if size > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..size).collect();
    loop {
        out.push(idx.clone());
        // advance
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - size {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..size {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Enumerates every filler of the `free` cells over `colors`, invoking the
/// callback until it returns `true` ("stop, found").  Returns the
/// configuration for which the callback stopped, if any.
fn enumerate_fillers(
    base: &Coloring,
    free: &[NodeId],
    colors: &[Color],
    mut callback: impl FnMut(&Coloring) -> bool,
) -> Option<Coloring> {
    if colors.is_empty() {
        // Nothing to fill with: only valid if there is nothing to fill.
        if free.is_empty() {
            let candidate = base.clone();
            return callback(&candidate).then_some(candidate);
        }
        return None;
    }
    let mut digits = vec![0usize; free.len()];
    let mut candidate = base.clone();
    loop {
        for (slot, &v) in free.iter().enumerate() {
            candidate.set(v, colors[digits[slot]]);
        }
        if callback(&candidate) {
            return Some(candidate);
        }
        // increment mixed-radix counter
        let mut pos = 0;
        loop {
            if pos == digits.len() {
                return None;
            }
            digits[pos] += 1;
            if digits[pos] < colors.len() {
                break;
            }
            digits[pos] = 0;
            pos += 1;
        }
    }
}

/// Searches for a (monotone) dynamo with exactly `seed_size` `k`-coloured
/// vertices.
pub fn search_dynamo_of_size(
    torus: &Torus,
    k: Color,
    seed_size: usize,
    config: &SearchConfig,
) -> SearchOutcome {
    assert!(config.palette.contains(k), "palette must contain k");
    let total = torus.node_count();
    let non_k: Vec<Color> = config.palette.colors_except(k).collect();

    let seeds: Vec<Vec<usize>> = combinations(total, seed_size)
        .into_iter()
        .filter(|subset| {
            let set = NodeSet::from_iter(total, subset.iter().map(|&i| NodeId::new(i)));
            if config.prune_rectangle {
                let rect = bounding_rectangle(torus, &set);
                if rect.m_f() + 1 < torus.rows() || rect.n_f() + 1 < torus.cols() {
                    return false;
                }
            }
            true
        })
        .collect();

    let results: Vec<Option<(Coloring, usize)>> = parallel_runs(seeds, |subset| {
        // Base configuration: seed cells are k, the rest unset.
        let mut base = Coloring::uniform_dims(torus.rows(), torus.cols(), Color::UNSET);
        for &i in subset {
            base.set(NodeId::new(i), k);
        }
        if config.prune_blocks && config.require_monotone {
            // Lemma 2: check the union-of-blocks condition on the seed
            // alone (it does not depend on the filler).
            let probe = base.map_colors(|c| {
                if c == k {
                    k
                } else {
                    non_k.first().copied().unwrap_or(k)
                }
            });
            if !seed_is_union_of_k_blocks(torus, &probe, k) {
                return None;
            }
        }
        let free: Vec<NodeId> = (0..total)
            .map(NodeId::new)
            .filter(|&v| base.get(v).is_unset())
            .collect();
        let mut witness_rounds = 0usize;
        let witness = enumerate_fillers(&base, &free, &non_k, |candidate| {
            let report = verify_dynamo(torus, candidate, k);
            let ok = if config.require_monotone {
                report.is_monotone_dynamo()
            } else {
                report.is_dynamo()
            };
            if ok {
                witness_rounds = report.rounds;
            }
            ok
        });
        witness.map(|w| (w, witness_rounds))
    });

    if let Some(result) = results.into_iter().flatten().next() {
        return SearchOutcome::Found {
            size: seed_size,
            example: result.0,
            rounds: result.1,
        };
    }
    SearchOutcome::NoneOfSize(seed_size)
}

/// Searches seed sizes `1..=max_size` in increasing order and returns the
/// first size admitting a (monotone) dynamo, together with a witness.
pub fn search_minimum_monotone_dynamo(
    torus: &Torus,
    k: Color,
    config: &SearchConfig,
    max_size: usize,
) -> SearchOutcome {
    for size in 1..=max_size {
        let outcome = search_dynamo_of_size(torus, k, size, config);
        if outcome.found() {
            return outcome;
        }
    }
    SearchOutcome::NoneOfSize(max_size)
}

/// Convenience used by the lower-bound experiments: verifies that no
/// monotone dynamo with fewer than `bound` seed vertices exists.
pub fn verify_lower_bound(torus: &Torus, k: Color, palette: Palette, bound: usize) -> bool {
    if bound <= 1 {
        return true;
    }
    let config = SearchConfig::monotone(palette);
    !search_minimum_monotone_dynamo(torus, k, &config, bound - 1).found()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use ctori_topology::{toroidal_mesh, torus_cordalis, TorusKind};

    fn k() -> Color {
        Color::new(1)
    }

    #[test]
    fn combinations_enumerate_all_subsets() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(5, 0).len(), 1);
        assert_eq!(combinations(3, 3).len(), 1);
        assert_eq!(combinations(2, 3).len(), 0);
        // no duplicates
        let combos = combinations(6, 3);
        let unique: std::collections::HashSet<_> = combos.iter().cloned().collect();
        assert_eq!(unique.len(), combos.len());
        assert_eq!(combos.len(), 20);
    }

    #[test]
    fn no_monotone_dynamo_below_theorem1_bound_on_3x3() {
        // Theorem 1: the bound for a 3x3 toroidal mesh is 3 + 3 - 2 = 4.
        let t = toroidal_mesh(3, 3);
        let palette = Palette::new(4);
        assert!(
            verify_lower_bound(&t, k(), palette, bounds::toroidal_mesh_lower_bound(3, 3)),
            "no monotone dynamo of size < 4 may exist on the 3x3 mesh"
        );
    }

    #[test]
    fn a_dynamo_of_the_bound_size_exists_on_3x3() {
        let t = toroidal_mesh(3, 3);
        let config = SearchConfig::monotone(Palette::new(4));
        let outcome = search_dynamo_of_size(&t, k(), 4, &config);
        assert!(outcome.found(), "a monotone dynamo of size 4 exists on 3x3");
        if let SearchOutcome::Found {
            example, rounds, ..
        } = outcome
        {
            assert_eq!(example.count(k()), 4);
            assert!(rounds >= 1);
            let report = verify_dynamo(&t, &example, k());
            assert!(report.is_monotone_dynamo());
        }
    }

    #[test]
    fn cordalis_bound_is_tight_on_3x3() {
        // Theorem 3: bound n + 1 = 4 on a 3x3 cordalis.
        let t = torus_cordalis(3, 3);
        let palette = Palette::new(4);
        assert!(verify_lower_bound(
            &t,
            k(),
            palette,
            bounds::lower_bound(TorusKind::TorusCordalis, 3, 3)
        ));
        let config = SearchConfig::monotone(Palette::new(4));
        assert!(search_dynamo_of_size(&t, k(), 4, &config).found());
    }

    #[test]
    fn two_colors_admit_no_small_monotone_dynamo_on_3x3() {
        // Proposition 3 / Remark 1: with only two colours the minimum-size
        // dynamo of size m+n-2 cannot exist (three colours are needed when
        // min(m,n) = 3).
        let t = toroidal_mesh(3, 3);
        let config = SearchConfig::monotone(Palette::bicolor());
        let outcome = search_minimum_monotone_dynamo(&t, Color::new(2), &config, 4);
        assert!(
            !outcome.found(),
            "two colours cannot produce a monotone dynamo of size <= 4 on 3x3"
        );
    }

    #[test]
    fn search_outcome_accessors() {
        let o = SearchOutcome::NoneOfSize(3);
        assert!(!o.found());
    }
}
