//! Reproductions of the paper's figures.
//!
//! Each function rebuilds the artefact one of the six figures displays —
//! either an initial configuration (Figures 1–4) or a matrix of
//! recolouring times (Figures 5 and 6) — so the experiment binary can print
//! paper-comparable output and the tests can assert the exact values where
//! the paper states them.

use crate::construct::mesh::theorem2_dynamo;
use crate::construct::{ConstructError, ConstructedDynamo};
use crate::counterexamples;
use ctori_coloring::{render_highlight, Color, Coloring, ColoringBuilder};
use ctori_engine::{
    RecoloringTimes, RuleSpec, RunSpec, Runner, SeedSpec, TopologySpec, Trace, TraceObserver,
};
use ctori_protocols::SmpProtocol;
use ctori_topology::{toroidal_mesh, torus_cordalis, Torus};

/// The default size used by the paper's figures (the printed grids are
/// 9×9 for Figures 1–4 and 5×5 for Figures 5 and 6).
pub const FIGURE_GRID: usize = 9;

/// Figure 1: a monotone dynamo seed of size `m + n − 2` (black vertices
/// only; the remaining colours are the subject of Figure 2).
///
/// Returns the torus, the partial configuration (seed placed, the rest
/// unset) and the rendered black/white picture.
pub fn figure1(m: usize, n: usize, k: Color) -> (Torus, Coloring, String) {
    let torus = toroidal_mesh(m, n);
    let seed = ColoringBuilder::unset(&torus)
        .column(0, k)
        .row_except(0, &[n - 1], k)
        .build_partial();
    let picture = render_highlight(&seed, k);
    (torus, seed, picture)
}

/// Figure 2: the full Theorem-2 minimum monotone dynamo colouring.
pub fn figure2(m: usize, n: usize, k: Color) -> Result<ConstructedDynamo, ConstructError> {
    theorem2_dynamo(m, n, k)
}

/// Figure 3: black vertices of the minimum size that do **not** form a
/// dynamo.
pub fn figure3(m: usize, n: usize, k: Color) -> (Torus, Coloring) {
    counterexamples::figure3_configuration(m, n, k)
}

/// Figure 4: a configuration in which no recolouring can arise.
pub fn figure4(m: usize, n: usize, k: Color) -> (Torus, Coloring) {
    counterexamples::figure4_configuration(m, n, k)
}

/// Fills every unset cell with a fresh, pairwise distinct colour.
///
/// With pairwise distinct non-`k` colours no vertex can ever adopt a
/// non-`k` colour (no colour other than `k` can reach a plurality of two),
/// so the dynamics reduce to pure threshold-2 growth of the `k` region —
/// the "ideal" propagation whose per-vertex times the paper tabulates in
/// Figures 5 and 6.
pub fn fill_with_distinct_colors(partial: &Coloring, k: Color) -> Coloring {
    let mut next = k.index() + 1;
    let mut out = partial.clone();
    for row in 0..out.rows() {
        for col in 0..out.cols() {
            if out.at(row, col).is_unset() {
                if Color::new(next) == k {
                    next += 1;
                }
                out.set_at(row, col, Color::new(next));
                next += 1;
            }
        }
    }
    out
}

/// The dynamo-verification [`RunSpec`] for an SMP run of `initial` on
/// `torus`: the declarative form every figure reproduction executes
/// through.
fn smp_spec(torus: &Torus, initial: Coloring, k: Color) -> RunSpec {
    RunSpec::new(
        TopologySpec::torus(torus.kind(), torus.rows(), torus.cols()),
        RuleSpec::from_rule(SmpProtocol),
        SeedSpec::Explicit(initial),
    )
    .for_dynamo(k)
}

/// Runs an SMP spec recording every configuration, for the recolouring-time
/// matrices of Figures 5 and 6.
fn smp_trace(torus: &Torus, initial: Coloring, k: Color) -> Trace {
    let mut observer = TraceObserver::new();
    Runner::new().execute_observed(&smp_spec(torus, initial, k), &mut observer);
    observer.into_trace()
}

/// Runs the "ideal" propagation (every non-seed vertex gets a pairwise
/// distinct colour) from a partially-specified seed configuration and
/// returns the number of rounds to reach the `k`-monochromatic
/// configuration, or `None` if it is never reached.
///
/// This isolates the *structural* convergence time of a seed — the
/// quantity the round-complexity formulas of Theorems 7 and 8 describe —
/// from the one-round delays a specific four-colour filler can introduce.
pub fn ideal_rounds_for_partial(torus: &Torus, partial: &Coloring, k: Color) -> Option<usize> {
    let initial = fill_with_distinct_colors(partial, k);
    let outcome = Runner::new().execute(&smp_spec(torus, initial, k));
    outcome.reached_monochromatic(k).then_some(outcome.rounds)
}

/// Figure 5: the recolouring-time matrix of a toroidal mesh whose entire
/// row 0 and column 0 start with colour `k` (the configuration whose times
/// the paper prints for a 5×5 mesh).
pub fn figure5(m: usize, n: usize, k: Color) -> RecoloringTimes {
    let torus = toroidal_mesh(m, n);
    let partial = ColoringBuilder::unset(&torus)
        .row(0, k)
        .column(0, k)
        .build_partial();
    let initial = fill_with_distinct_colors(&partial, k);
    RecoloringTimes::from_trace(&smp_trace(&torus, initial, k), k)
}

/// Figure 6: the recolouring-time matrix of a torus cordalis seeded with
/// the Theorem-4 configuration (row 0 plus the vertex `(1, 0)`).
pub fn figure6(m: usize, n: usize, k: Color) -> RecoloringTimes {
    let torus = torus_cordalis(m, n);
    let partial = ColoringBuilder::unset(&torus)
        .row(0, k)
        .cell(1, 0, k)
        .build_partial();
    let initial = fill_with_distinct_colors(&partial, k);
    RecoloringTimes::from_trace(&smp_trace(&torus, initial, k), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamo::verify_dynamo;
    use crate::rounds::{theorem7_rounds, theorem8_rounds};

    fn k() -> Color {
        Color::new(1)
    }

    #[test]
    fn figure1_seed_size_matches_paper() {
        // The paper's Figure 1 caption: a monotone dynamo of size
        // m + n - 2 = 16, i.e. a 9x9 torus.
        let (_, seed, picture) = figure1(9, 9, k());
        assert_eq!(seed.count(k()), 16);
        assert_eq!(picture.matches('B').count(), 16);
        assert_eq!(picture.lines().count(), 9);
    }

    #[test]
    fn figure2_is_a_verified_minimum_dynamo() {
        let built = figure2(9, 9, k()).unwrap();
        assert_eq!(built.seed_size(), 16);
        assert_eq!(built.colors_used(), 4);
        let report = verify_dynamo(built.torus(), built.coloring(), k());
        assert!(report.is_monotone_dynamo());
    }

    #[test]
    fn figure3_and_figure4_reproduce_their_captions() {
        let (torus, coloring) = figure3(9, 9, k());
        assert!(!verify_dynamo(&torus, &coloring, k()).is_dynamo());
        let (torus, coloring) = figure4(9, 9, k());
        let report = verify_dynamo(&torus, &coloring, k());
        assert!(!report.is_dynamo());
        assert_eq!(report.rounds, 1, "Figure 4 freezes immediately");
    }

    #[test]
    fn figure5_matches_the_printed_matrix() {
        // Figure 5 of the paper (5x5):
        //   0 0 0 0 0
        //   0 1 2 2 1
        //   0 2 3 3 2
        //   0 2 3 3 2
        //   0 1 2 2 1
        let times = figure5(5, 5, k());
        let expected: [[usize; 5]; 5] = [
            [0, 0, 0, 0, 0],
            [0, 1, 2, 2, 1],
            [0, 2, 3, 3, 2],
            [0, 2, 3, 3, 2],
            [0, 1, 2, 2, 1],
        ];
        for (i, row) in expected.iter().enumerate() {
            for (j, &value) in row.iter().enumerate() {
                assert_eq!(
                    times.at(i, j),
                    Some(value),
                    "figure 5 mismatch at ({i}, {j})"
                );
            }
        }
        // The slowest vertex matches the Theorem-7 formula.
        assert_eq!(times.max_time(), Some(theorem7_rounds(5, 5) as usize));
    }

    #[test]
    fn figure6_matches_the_printed_matrix() {
        // Figure 6 of the paper (5x5 torus cordalis):
        //   0 0 0 0 0
        //   0 1 2 3 4
        //   5 6 7 8 7
        //   6 7 8 7 6
        //   5 4 3 2 1
        let times = figure6(5, 5, k());
        let expected: [[usize; 5]; 5] = [
            [0, 0, 0, 0, 0],
            [0, 1, 2, 3, 4],
            [5, 6, 7, 8, 7],
            [6, 7, 8, 7, 6],
            [5, 4, 3, 2, 1],
        ];
        for (i, row) in expected.iter().enumerate() {
            for (j, &value) in row.iter().enumerate() {
                assert_eq!(
                    times.at(i, j),
                    Some(value),
                    "figure 6 mismatch at ({i}, {j})"
                );
            }
        }
        assert_eq!(times.max_time(), Some(theorem8_rounds(5, 5) as usize));
    }

    #[test]
    fn figure_renders_are_printable() {
        let times = figure5(5, 5, k());
        let text = times.render();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains('3'));
    }
}
