//! Dynamo verification by simulation (Definitions 2 and 3).
//!
//! A set `S^k` (the set of all `k`-coloured vertices of an initial
//! configuration) is a **dynamo** if the SMP-Protocol drives the whole
//! torus to the `k`-monochromatic configuration in finitely many rounds,
//! and a **monotone dynamo** if additionally the set of `k`-coloured
//! vertices never loses a member along the way.
//!
//! Because the state space is finite and the dynamics deterministic, the
//! simulation either reaches a monochromatic configuration, freezes at a
//! non-monochromatic fixed point, or enters a limit cycle — all of which
//! the engine detects — so `verify_dynamo` is a complete decision
//! procedure, not a heuristic.

use ctori_coloring::{Color, Coloring};
use ctori_engine::{RuleSpec, RunSpec, Runner, SeedSpec, Termination, TopologySpec};
use ctori_protocols::{AnyRule, SmpProtocol};
use ctori_topology::{NodeSet, Torus};

/// The result of verifying a candidate dynamo.
#[derive(Clone, Debug)]
pub struct DynamoReport {
    /// The target colour `k`.
    pub k: Color,
    /// Size of the initial `k`-coloured set `|S^k|`.
    pub seed_size: usize,
    /// How the simulation terminated.
    pub termination: Termination,
    /// Number of rounds executed.
    pub rounds: usize,
    /// Whether the `k`-coloured set never lost a member.
    pub monotone: bool,
    /// Per-vertex adoption times of colour `k` (round 0 = initially `k`).
    pub recoloring_times: Vec<Option<usize>>,
}

impl DynamoReport {
    /// Whether the initial configuration is a dynamo (Definition 2).
    pub fn is_dynamo(&self) -> bool {
        self.termination.is_monochromatic_in(self.k)
    }

    /// Whether it is a *monotone* dynamo (Definition 3).
    pub fn is_monotone_dynamo(&self) -> bool {
        self.is_dynamo() && self.monotone
    }

    /// The number of rounds needed to reach the monochromatic
    /// configuration, if it was reached.
    pub fn rounds_to_monochromatic(&self) -> Option<usize> {
        self.is_dynamo().then_some(self.rounds)
    }
}

/// Extracts the seed set `S^k` of an initial configuration.
pub fn seed_set(torus: &Torus, coloring: &Coloring, k: Color) -> NodeSet {
    let _ = torus; // the seed is independent of the torus kind
    ctori_coloring::color_class(coloring, k)
}

/// Verifies whether the given initial configuration is a (monotone) dynamo
/// of colour `k` under the SMP-Protocol.
pub fn verify_dynamo(torus: &Torus, initial: &Coloring, k: Color) -> DynamoReport {
    verify_dynamo_with_rule(torus, initial, k, SmpProtocol)
}

/// Verifies a candidate dynamo under an arbitrary registry rule (used for
/// the bi-coloured baselines of Propositions 1 and 2).
///
/// The run goes through the declarative execution path: the candidate
/// becomes a [`RunSpec`] and the engine's [`Runner`] owns lane selection
/// and termination, so every dynamo check in the workspace exercises the
/// same machinery a batch sweep would.
pub fn verify_dynamo_with_rule(
    torus: &Torus,
    initial: &Coloring,
    k: Color,
    rule: impl Into<AnyRule>,
) -> DynamoReport {
    let seed_size = initial.count(k);
    let spec = RunSpec::new(
        TopologySpec::torus(torus.kind(), torus.rows(), torus.cols()),
        RuleSpec::from_rule(rule),
        SeedSpec::Explicit(initial.clone()),
    )
    .for_dynamo(k);
    let outcome = Runner::new().execute(&spec);
    DynamoReport {
        k,
        seed_size,
        termination: outcome.termination,
        rounds: outcome.rounds,
        monotone: outcome.monotone.unwrap_or(false),
        recoloring_times: outcome.recoloring_times.unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_coloring::ColoringBuilder;
    use ctori_topology::{toroidal_mesh, Coord};

    fn k() -> Color {
        Color::new(2)
    }

    #[test]
    fn absorbed_patch_is_a_monotone_dynamo() {
        let t = toroidal_mesh(6, 6);
        let coloring = ColoringBuilder::filled(&t, k())
            .cell(2, 2, Color::new(1))
            .cell(2, 3, Color::new(3))
            .cell(3, 2, Color::new(4))
            .cell(3, 3, Color::new(5))
            .build();
        let report = verify_dynamo(&t, &coloring, k());
        assert!(report.is_dynamo());
        assert!(report.is_monotone_dynamo());
        assert_eq!(report.seed_size, 32);
        assert_eq!(report.rounds_to_monochromatic(), Some(report.rounds));
        assert!(report.rounds >= 1);
        // adoption times exist for every vertex
        assert!(report.recoloring_times.iter().all(|t| t.is_some()));
    }

    #[test]
    fn frozen_configuration_is_not_a_dynamo() {
        let t = toroidal_mesh(4, 4);
        let coloring =
            ctori_coloring::patterns::column_stripes(&t, &[Color::new(1), Color::new(2)]);
        let report = verify_dynamo(&t, &coloring, k());
        assert!(!report.is_dynamo());
        assert!(!report.is_monotone_dynamo());
        assert_eq!(report.termination, Termination::FixedPoint);
        assert_eq!(report.rounds_to_monochromatic(), None);
    }

    #[test]
    fn oscillating_configuration_is_not_a_dynamo() {
        let t = toroidal_mesh(4, 4);
        let coloring = ctori_coloring::patterns::checkerboard(&t, Color::new(1), Color::new(2));
        let report = verify_dynamo(&t, &coloring, k());
        assert!(!report.is_dynamo());
        assert!(matches!(
            report.termination,
            Termination::Cycle { period: 2 }
        ));
    }

    #[test]
    fn monochromatic_of_wrong_color_is_not_a_k_dynamo() {
        // A configuration that converges to colour 1 is not a dynamo for
        // colour 2.
        let t = toroidal_mesh(5, 5);
        let coloring = ColoringBuilder::filled(&t, Color::new(1))
            .cell(2, 2, k())
            .build();
        let report = verify_dynamo(&t, &coloring, k());
        assert!(!report.is_dynamo());
        assert_eq!(report.seed_size, 1);
        // it *does* converge, just to the other colour
        assert_eq!(
            report.termination,
            Termination::Monochromatic(Color::new(1))
        );
    }

    #[test]
    fn seed_set_matches_color_class() {
        let t = toroidal_mesh(4, 4);
        let coloring = ColoringBuilder::filled(&t, Color::new(1))
            .row(0, k())
            .build();
        let seed = seed_set(&t, &coloring, k());
        assert_eq!(seed.count(), 4);
        assert!(seed.contains(t.id(Coord::new(0, 3))));
        assert!(!seed.contains(t.id(Coord::new(1, 0))));
    }

    #[test]
    fn baseline_rule_verification() {
        use ctori_protocols::ReverseSimpleMajority;
        // Under prefer-black, two adjacent full rows of black on a 6-row
        // torus are a dynamo: each white row adjacent to the band sees two
        // black vertices... actually each white vertex adjacent to the band
        // sees exactly 1 black; a 2-wide band does not grow under simple
        // majority either. Use the classic: alternating black/white columns
        // converge to black (every white vertex sees 2 black + 2 white).
        let t = toroidal_mesh(6, 6);
        let coloring = ctori_coloring::patterns::column_stripes(&t, &[Color::BLACK, Color::WHITE]);
        let report = verify_dynamo_with_rule(
            &t,
            &coloring,
            Color::BLACK,
            ReverseSimpleMajority::prefer_black(),
        );
        assert!(report.is_dynamo());
        assert_eq!(report.rounds, 1);
        // The same configuration under SMP is frozen.
        let report = verify_dynamo(&t, &coloring, Color::BLACK);
        assert!(!report.is_dynamo());
    }
}
