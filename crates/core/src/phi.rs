//! The colour-collapsing transformation φ (Propositions 1 and 2).
//!
//! The paper defines `φ : C → C` with `φ(i) = 1` for every `i ≠ k` and
//! `φ(k) = 2`, mapping a multi-coloured torus onto a bi-coloured one in
//! which colour 1 plays "white" and colour 2 plays "black".  Under φ:
//!
//! * a non-`k`-block of the multi-coloured configuration becomes a *simple
//!   white block* of the bi-coloured one (Proposition 1), so any lower
//!   bound for bi-coloured dynamos under the reverse simple majority rule
//!   is also a lower bound for multi-coloured dynamos under the
//!   SMP-Protocol;
//! * strong white blocks correspond to `i`-blocks, and the reverse strong
//!   majority rule is more demanding than the SMP-Protocol, so bi-coloured
//!   upper bounds under reverse strong majority transfer as upper bounds
//!   (Proposition 2) — albeit far from tight, which is why Theorems 2/4/6
//!   construct better ones directly.

use ctori_coloring::{Color, Coloring};
use ctori_topology::{NodeSet, Torus};

/// Applies φ to a configuration: every `k`-coloured vertex becomes black
/// (colour 2), every other vertex becomes white (colour 1).
pub fn phi_collapse(coloring: &Coloring, k: Color) -> Coloring {
    coloring.map_colors(|c| if c == k { Color::BLACK } else { Color::WHITE })
}

/// A *simple white block* in the bi-coloured terminology of \[15\]: a
/// connected set of white vertices each with at least three white
/// neighbours inside the set.  Under φ this is exactly the image of a
/// non-`k`-block.
pub fn find_simple_white_blocks(torus: &Torus, bicolored: &Coloring) -> Vec<NodeSet> {
    crate::blocks::find_non_k_blocks(torus, bicolored, Color::BLACK)
}

/// Empirical check of the correspondence behind Proposition 1: the
/// multi-coloured configuration has a non-`k`-block iff its φ-image has a
/// simple white block.
pub fn non_k_blocks_correspond_to_white_blocks(
    torus: &Torus,
    coloring: &Coloring,
    k: Color,
) -> bool {
    let multi = crate::blocks::has_non_k_block(torus, coloring, k);
    let collapsed = phi_collapse(coloring, k);
    let bi = !find_simple_white_blocks(torus, &collapsed).is_empty();
    multi == bi
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_coloring::ColoringBuilder;
    use ctori_topology::toroidal_mesh;

    fn k() -> Color {
        Color::new(5)
    }

    #[test]
    fn collapse_maps_k_to_black_and_rest_to_white() {
        let t = toroidal_mesh(3, 3);
        let coloring = ColoringBuilder::filled(&t, Color::new(3))
            .cell(0, 0, k())
            .cell(1, 1, Color::new(7))
            .build();
        let collapsed = phi_collapse(&coloring, k());
        assert_eq!(collapsed.at(0, 0), Color::BLACK);
        assert_eq!(collapsed.at(1, 1), Color::WHITE);
        assert_eq!(collapsed.at(2, 2), Color::WHITE);
        assert_eq!(collapsed.count(Color::BLACK), 1);
        assert_eq!(collapsed.count(Color::WHITE), 8);
    }

    #[test]
    fn collapse_is_idempotent_on_bicolored_input() {
        let t = toroidal_mesh(3, 3);
        let coloring = ColoringBuilder::filled(&t, Color::WHITE)
            .row(0, Color::BLACK)
            .build();
        let collapsed = phi_collapse(&coloring, Color::BLACK);
        assert_eq!(collapsed, coloring);
    }

    #[test]
    fn correspondence_on_block_and_blockless_configurations() {
        let t = toroidal_mesh(6, 6);
        // Two non-k rows form a non-k-block; the correspondence must hold.
        let with_block = ColoringBuilder::filled(&t, k())
            .row(2, Color::new(1))
            .row(3, Color::new(2))
            .build();
        assert!(crate::blocks::has_non_k_block(&t, &with_block, k()));
        assert!(non_k_blocks_correspond_to_white_blocks(
            &t,
            &with_block,
            k()
        ));

        // A configuration with no non-k structure at all.
        let without_block = ColoringBuilder::filled(&t, k())
            .cell(2, 2, Color::new(1))
            .cell(4, 4, Color::new(3))
            .build();
        assert!(!crate::blocks::has_non_k_block(&t, &without_block, k()));
        assert!(non_k_blocks_correspond_to_white_blocks(
            &t,
            &without_block,
            k()
        ));
    }

    #[test]
    fn white_blocks_found_directly_on_bicolored_torus() {
        let t = toroidal_mesh(6, 6);
        let bicolored = ColoringBuilder::filled(&t, Color::BLACK)
            .row(1, Color::WHITE)
            .row(2, Color::WHITE)
            .build();
        let blocks = find_simple_white_blocks(&t, &bicolored);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].count(), 12);
    }
}
