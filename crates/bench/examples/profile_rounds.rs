//! Round-by-round lane comparison on the acceptance workload.
//!
//! Prints, for each synchronous round of a 3-colour threshold run on a
//! 1024×1024 toroidal mesh, the flip count and the per-round time of the
//! plane lane versus the generic frontier.  This makes the regime
//! structure behind the lane-selection rules visible: the plane lane is
//! an order of magnitude faster while activity is dense (early rounds),
//! the generic frontier catches up once flips are sparse because its
//! per-vertex worklist does not suffer the 64-vertex word granularity.
//!
//! ```text
//! cargo run --release -p ctori-bench --example profile_rounds
//! ```

use ctori_bench::multicolor_scatter;
use ctori_coloring::Color;
use ctori_engine::Simulator;
use ctori_protocols::ThresholdRule;
use ctori_topology::{Torus, TorusKind};
use std::time::Instant;

fn main() {
    let torus = Torus::new(TorusKind::ToroidalMesh, 1024, 1024);
    let rule = ThresholdRule::new(Color::new(3), 2);
    let cells = 1024 * 1024;
    let coloring = multicolor_scatter(&torus, 3, 0x6 + cells as u64);
    let mut planes = Simulator::new(&torus, rule, coloring.clone());
    assert!(planes.uses_plane_lane());
    let mut generic = Simulator::new(&torus, rule, coloring).with_generic_lane();
    println!(
        "{:>5} {:>9} {:>12} {:>12} {:>7}",
        "round", "flips", "planes_us", "generic_us", "ratio"
    );
    for round in 0..12 {
        let t = Instant::now();
        let flips = planes.step().changed;
        let planes_us = t.elapsed().as_secs_f64() * 1e6;
        let t = Instant::now();
        let generic_flips = generic.step().changed;
        let generic_us = t.elapsed().as_secs_f64() * 1e6;
        assert_eq!(flips, generic_flips, "lanes diverged at round {round}");
        println!(
            "{round:>5} {flips:>9} {planes_us:>12.0} {generic_us:>12.0} {:>7.1}",
            generic_us / planes_us
        );
    }
    assert_eq!(
        planes.snapshot(),
        generic.snapshot(),
        "lanes must agree on the final configuration"
    );
}
