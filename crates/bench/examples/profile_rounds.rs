//! Round-by-round hybrid-lane profile on two canned workloads.
//!
//! For each synchronous round this prints the flip count, the per-band
//! dense/sparse decision the hybrid plane lane made (from
//! [`ctori_engine::StepStats`] deltas), and the per-round time of the
//! plane lane versus the two static generic references (incremental
//! frontier = all-sparse, full sweep = all-dense).  Two workloads make
//! both regimes visible:
//!
//! * **scatter** — a dense uniform 3-colour scatter on 1024²: nearly
//!   every vertex flips every round, so the hybrid stays on full tiled
//!   sweeps;
//! * **quiescing** — a mostly-monochromatic 1024² grid with a noisy
//!   patch: the frontier collapses within a few rounds and the hybrid
//!   hands off from dense sweeps to sparse worklist evaluation.
//!
//! At the end the example *asserts* that the hybrid never loses more
//! than 10% to the best static reference on either workload — the
//! crossover must be a free lunch, not a trade.
//!
//! ```text
//! cargo run --release -p ctori-bench --example profile_rounds
//! ```

use ctori_bench::multicolor_scatter;
use ctori_coloring::{Color, Coloring, ColoringBuilder};
use ctori_engine::{default_threads, Simulator};
use ctori_protocols::ThresholdRule;
use ctori_topology::{Torus, TorusKind};
use std::time::Instant;

/// Mostly colour 1 with a checkerboard patch of the activation colour:
/// the patch fills in over the first rounds (dense activity in its
/// bands), then the system quiesces and the flips collapse to the patch
/// boundary.
fn quiescing_patch(torus: &Torus, k: u16) -> Coloring {
    let mut builder = ColoringBuilder::filled(torus, Color::new(1));
    for r in 100..140 {
        for c in 0..torus.cols() {
            if (r + c) % 2 == 0 {
                builder = builder.cell(r, c, Color::new(k));
            } else if c % 7 == 0 {
                builder = builder.cell(r, c, Color::new(2));
            }
        }
    }
    builder.build()
}

/// Profiles one workload; returns (hybrid_total_s, best_static_total_s).
fn profile(name: &str, torus: &Torus, k: u16, coloring: Coloring, rounds: usize) -> (f64, f64) {
    let rule = ThresholdRule::new(Color::new(k), 2);
    let threads = default_threads().max(1);
    let mut hybrid = Simulator::new(torus, rule, coloring.clone()).with_step_threads(threads);
    assert!(hybrid.uses_plane_lane());
    let mut sparse = Simulator::new(torus, rule, coloring.clone()).with_generic_lane();
    let mut dense = Simulator::new(torus, rule, coloring)
        .with_generic_lane()
        .with_full_sweep();
    println!("== {name} (k={k}, threads={threads}) ==");
    println!(
        "{:>5} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "round", "flips", "decision", "hybrid_us", "sparse_us", "dense_us"
    );
    let (mut hybrid_total, mut sparse_total, mut dense_total) = (0.0f64, 0.0f64, 0.0f64);
    for round in 0..rounds {
        let before = hybrid.step_stats();
        let t = Instant::now();
        let flips = hybrid.step().changed;
        let hybrid_us = t.elapsed().as_secs_f64() * 1e6;
        let after = hybrid.step_stats();
        let t = Instant::now();
        let sparse_flips = sparse.step().changed;
        let sparse_us = t.elapsed().as_secs_f64() * 1e6;
        let t = Instant::now();
        let dense_flips = dense.step().changed;
        let dense_us = t.elapsed().as_secs_f64() * 1e6;
        assert_eq!(
            flips, sparse_flips,
            "{name}: lanes diverged at round {round}"
        );
        assert_eq!(
            flips, dense_flips,
            "{name}: lanes diverged at round {round}"
        );
        let (db, sb) = (
            after.dense_bands - before.dense_bands,
            after.sparse_bands - before.sparse_bands,
        );
        let decision = match (db, sb) {
            (_, 0) => "dense".to_string(),
            (0, _) => "sparse".to_string(),
            _ => format!("{db}d/{sb}s"),
        };
        println!(
            "{round:>5} {flips:>9} {decision:>12} {hybrid_us:>12.0} {sparse_us:>12.0} \
             {dense_us:>12.0}"
        );
        hybrid_total += hybrid_us;
        sparse_total += sparse_us;
        dense_total += dense_us;
    }
    assert_eq!(
        hybrid.snapshot(),
        sparse.snapshot(),
        "{name}: lanes must agree on the final configuration"
    );
    (hybrid_total / 1e6, sparse_total.min(dense_total) / 1e6)
}

fn main() {
    let torus = Torus::new(TorusKind::ToroidalMesh, 1024, 1024);
    let cells = 1024 * 1024u64;
    let workloads = [
        profile(
            "scatter",
            &torus,
            3,
            multicolor_scatter(&torus, 3, 0x6 + cells),
            12,
        ),
        profile("quiescing", &torus, 5, quiescing_patch(&torus, 5), 16),
    ];
    for (name, (hybrid_s, best_static_s)) in ["scatter", "quiescing"].iter().zip(workloads) {
        println!(
            "{name}: hybrid {hybrid_s:.3}s vs best static reference {best_static_s:.3}s \
             ({:.1}x)",
            best_static_s / hybrid_s
        );
        assert!(
            hybrid_s <= 1.1 * best_static_s,
            "{name}: the hybrid lost more than 10% to the best static lane \
             ({hybrid_s:.3}s vs {best_static_s:.3}s)"
        );
    }
}
