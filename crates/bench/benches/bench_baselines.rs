//! Propositions 1 and 2: the SMP-Protocol versus the bi-coloured majority
//! baselines of Flocchini et al. on identical workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctori_coloring::random::random_with_seed_count;
use ctori_coloring::{Color, Palette};
use ctori_core::dynamo::verify_dynamo_with_rule;
use ctori_core::phi::phi_collapse;
use ctori_engine::{RunConfig, Simulator};
use ctori_protocols::{ReverseSimpleMajority, ReverseStrongMajority, SmpProtocol};
use ctori_topology::toroidal_mesh;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_rule_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/convergence_random_configs");
    group.sample_size(20);
    let size = 48usize;
    let torus = toroidal_mesh(size, size);
    let palette = Palette::new(4);
    let k = Color::new(4);
    let mut rng = StdRng::seed_from_u64(41);
    let seed_count = size * size * 6 / 10;
    let coloring = random_with_seed_count(&torus, &palette, k, seed_count, &mut rng);
    let collapsed = phi_collapse(&coloring, k);
    group.throughput(Throughput::Elements((size * size) as u64));

    group.bench_function(BenchmarkId::from_parameter("smp_multicolor"), |b| {
        b.iter(|| {
            let report = verify_dynamo_with_rule(&torus, &coloring, k, SmpProtocol);
            black_box(report.rounds)
        });
    });
    group.bench_function(
        BenchmarkId::from_parameter("reverse_simple_prefer_black"),
        |b| {
            b.iter(|| {
                let report = verify_dynamo_with_rule(
                    &torus,
                    &collapsed,
                    Color::BLACK,
                    ReverseSimpleMajority::prefer_black(),
                );
                black_box(report.rounds)
            });
        },
    );
    group.bench_function(BenchmarkId::from_parameter("reverse_strong"), |b| {
        b.iter(|| {
            let report =
                verify_dynamo_with_rule(&torus, &collapsed, Color::BLACK, ReverseStrongMajority);
            black_box(report.rounds)
        });
    });
    group.finish();
}

fn bench_phi_collapse(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/phi_collapse");
    for &size in &[64usize, 256] {
        let torus = toroidal_mesh(size, size);
        let mut rng = StdRng::seed_from_u64(5);
        let coloring = ctori_coloring::random::uniform_random(&torus, &Palette::new(6), &mut rng);
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(phi_collapse(&coloring, Color::new(3)).count(Color::BLACK)));
        });
    }
    group.finish();
}

fn bench_single_round_rule_costs(c: &mut Criterion) {
    // Per-round cost of each rule on the same striped workload — the
    // microbenchmark behind the "rule cost is not the bottleneck" claim in
    // the README.
    let mut group = c.benchmark_group("baselines/single_round_cost");
    let size = 192usize;
    let torus = toroidal_mesh(size, size);
    let coloring = ctori_coloring::patterns::column_stripes(
        &torus,
        &[Color::new(1), Color::new(2), Color::new(3), Color::new(4)],
    );
    group.throughput(Throughput::Elements((size * size) as u64));
    group.bench_function("smp", |b| {
        let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
        b.iter(|| black_box(sim.step()));
    });
    group.bench_function("prefer_black", |b| {
        let mut sim = Simulator::new(
            &torus,
            ReverseSimpleMajority::prefer_black(),
            coloring.clone(),
        );
        b.iter(|| black_box(sim.step()));
    });
    group.bench_function("strong", |b| {
        let mut sim = Simulator::new(&torus, ReverseStrongMajority, coloring.clone());
        b.iter(|| black_box(sim.step()));
    });
    group.bench_function("smp_full_run_small", |b| {
        let small = toroidal_mesh(24, 24);
        let c = ctori_bench::absorbing_patch(&small, 12);
        b.iter(|| {
            let mut sim = Simulator::new(&small, SmpProtocol, c.clone());
            black_box(sim.run(&RunConfig::default()).rounds)
        });
    });
    group.finish();
}

/// Criterion configuration shared by this file: shorter warm-up and
/// measurement windows so the full `cargo bench --workspace` sweep stays
/// within a few minutes while still producing stable estimates.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets =
    bench_rule_convergence,
    bench_phi_collapse,
    bench_single_round_rule_costs

}
criterion_main!(benches);
