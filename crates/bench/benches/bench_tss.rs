//! Future-work extension: target set selection and SMP diffusion on
//! scale-free networks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctori_coloring::Color;
use ctori_tss::diffusion::{simple_majority_thresholds, smp_on_graph, spread};
use ctori_tss::generators::{barabasi_albert, erdos_renyi};
use ctori_tss::selection::{greedy_seeds, highest_degree_seeds};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("tss/generators");
    for &nodes in &[1_000usize, 4_000, 16_000] {
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(
            BenchmarkId::new("barabasi_albert_m3", nodes),
            &nodes,
            |b, &n| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    black_box(barabasi_albert(n, 3, &mut rng).edge_count())
                });
            },
        );
    }
    group.bench_function("erdos_renyi_2000_p0.004", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(erdos_renyi(2_000, 0.004, &mut rng).edge_count())
        });
    });
    group.finish();
}

fn bench_diffusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("tss/diffusion");
    group.sample_size(20);
    for &nodes in &[2_000usize, 8_000] {
        let mut rng = StdRng::seed_from_u64(3);
        let graph = barabasi_albert(nodes, 3, &mut rng);
        let thresholds = simple_majority_thresholds(&graph);
        let seeds = highest_degree_seeds(&graph, nodes / 10);
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(
            BenchmarkId::new("linear_threshold_degree_seeds", nodes),
            &nodes,
            |b, _| {
                b.iter(|| black_box(spread(&graph, &thresholds, &seeds).activated_count));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("smp_protocol_degree_seeds", nodes),
            &nodes,
            |b, _| {
                let others: Vec<Color> = (2..=9).map(Color::new).collect();
                b.iter(|| {
                    let (count, _, _) = smp_on_graph(&graph, &seeds, Color::new(1), &others);
                    black_box(count)
                });
            },
        );
    }
    group.finish();
}

fn bench_seed_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("tss/seed_selection");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    let graph = barabasi_albert(600, 3, &mut rng);
    let thresholds = simple_majority_thresholds(&graph);
    group.bench_function("highest_degree_60_of_600", |b| {
        b.iter(|| black_box(highest_degree_seeds(&graph, 60).len()));
    });
    group.bench_function("greedy_12_of_600", |b| {
        b.iter(|| black_box(greedy_seeds(&graph, &thresholds, 12).len()));
    });
    group.finish();
}

/// Criterion configuration shared by this file: shorter warm-up and
/// measurement windows so the full `cargo bench --workspace` sweep stays
/// within a few minutes while still producing stable estimates.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_generators, bench_diffusion, bench_seed_selection
}
criterion_main!(benches);
