//! Engine throughput: cells updated per second per topology and per rule.
//!
//! Not a figure of the paper — this is the engineering baseline that tells
//! a user how large a torus the simulator handles comfortably.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctori_bench::{absorbing_patch, target_color};
use ctori_coloring::patterns::column_stripes;
use ctori_coloring::Color;
use ctori_engine::{RunConfig, Simulator};
use ctori_protocols::{ReverseSimpleMajority, ReverseStrongMajority, SmpProtocol};
use ctori_topology::{Torus, TorusKind};
use std::hint::black_box;

fn bench_single_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/single_round");
    for &size in &[32usize, 64, 128, 256] {
        for kind in TorusKind::ALL {
            let torus = Torus::new(kind, size, size);
            let coloring = absorbing_patch(&torus, size / 2);
            group.throughput(Throughput::Elements((size * size) as u64));
            group.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', "_"), size),
                &size,
                |b, _| {
                    let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
                    b.iter(|| black_box(sim.step()));
                },
            );
        }
    }
    group.finish();
}

fn bench_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/rules_single_round");
    let size = 128usize;
    let torus = Torus::new(TorusKind::ToroidalMesh, size, size);
    let coloring = column_stripes(&torus, &[Color::new(1), Color::new(2), Color::new(3)]);
    group.throughput(Throughput::Elements((size * size) as u64));

    group.bench_function("smp", |b| {
        let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
        b.iter(|| black_box(sim.step()));
    });
    group.bench_function("reverse_simple_prefer_black", |b| {
        let mut sim = Simulator::new(
            &torus,
            ReverseSimpleMajority::prefer_black(),
            coloring.clone(),
        );
        b.iter(|| black_box(sim.step()));
    });
    group.bench_function("reverse_strong", |b| {
        let mut sim = Simulator::new(&torus, ReverseStrongMajority, coloring.clone());
        b.iter(|| black_box(sim.step()));
    });
    group.finish();
}

fn bench_run_to_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/run_to_convergence");
    group.sample_size(20);
    for &size in &[32usize, 64, 128] {
        let torus = Torus::new(TorusKind::ToroidalMesh, size, size);
        let coloring = absorbing_patch(&torus, size / 2);
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
                let report = sim.run(&RunConfig::default().without_cycle_detection());
                assert!(report.termination.is_monochromatic_in(target_color()));
                black_box(report.rounds)
            });
        });
    }
    group.finish();
}


/// Criterion configuration shared by this file: shorter warm-up and
/// measurement windows so the full `cargo bench --workspace` sweep stays
/// within a few minutes while still producing stable estimates.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!{
    name = benches;
    config = configured();
    targets = bench_single_round, bench_rules, bench_run_to_convergence
}
criterion_main!(benches);
