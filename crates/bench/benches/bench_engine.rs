//! Engine throughput: cells updated per second per topology and per rule.
//!
//! Not a figure of the paper — this is the engineering baseline that tells
//! a user how large a torus the simulator handles comfortably.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctori_bench::{absorbing_patch, target_color};
use ctori_coloring::patterns::column_stripes;
use ctori_coloring::{Color, Coloring, ColoringBuilder};
use ctori_engine::naive::NaiveSimulator;
use ctori_engine::{RunConfig, Simulator};
use ctori_protocols::{ReverseSimpleMajority, ReverseStrongMajority, SmpProtocol, ThresholdRule};
use ctori_topology::{Torus, TorusKind};
use std::hint::black_box;
use std::time::Instant;

fn bench_single_round(c: &mut Criterion) {
    // Full-sweep mode on purpose: this group measures the raw per-vertex
    // evaluation throughput of the CSR kernel; the frontier benches below
    // measure the incremental scheduler.
    let mut group = c.benchmark_group("engine/single_round");
    for &size in &[32usize, 64, 128, 256] {
        for kind in TorusKind::ALL {
            let torus = Torus::new(kind, size, size);
            let coloring = absorbing_patch(&torus, size / 2);
            group.throughput(Throughput::Elements((size * size) as u64));
            group.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', "_"), size),
                &size,
                |b, _| {
                    let mut sim =
                        Simulator::new(&torus, SmpProtocol, coloring.clone()).with_full_sweep();
                    b.iter(|| black_box(sim.step()));
                },
            );
        }
    }
    group.finish();
}

fn bench_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/rules_single_round");
    let size = 128usize;
    let torus = Torus::new(TorusKind::ToroidalMesh, size, size);
    let coloring = column_stripes(&torus, &[Color::new(1), Color::new(2), Color::new(3)]);
    group.throughput(Throughput::Elements((size * size) as u64));

    group.bench_function("smp", |b| {
        let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone()).with_full_sweep();
        b.iter(|| black_box(sim.step()));
    });
    group.bench_function("reverse_simple_prefer_black", |b| {
        let mut sim = Simulator::new(
            &torus,
            ReverseSimpleMajority::prefer_black(),
            coloring.clone(),
        )
        .with_full_sweep();
        b.iter(|| black_box(sim.step()));
    });
    group.bench_function("reverse_strong", |b| {
        let mut sim =
            Simulator::new(&torus, ReverseStrongMajority, coloring.clone()).with_full_sweep();
        b.iter(|| black_box(sim.step()));
    });
    group.finish();
}

fn bench_run_to_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/run_to_convergence");
    group.sample_size(20);
    for &size in &[32usize, 64, 128] {
        let torus = Torus::new(TorusKind::ToroidalMesh, size, size);
        let coloring = absorbing_patch(&torus, size / 2);
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
                let report = sim.run(&RunConfig::default().without_cycle_detection());
                assert!(report.termination.is_monochromatic_in(target_color()));
                black_box(report.rounds)
            });
        });
    }
    group.finish();
}

/// The acceptance comparison for the shared CSR kernel: SMP round
/// throughput on a 256×256 toroidal mesh, the zero-allocation CSR stepper
/// versus the `Vec<NodeId>`-per-vertex baseline kept behind the engine's
/// bench-only `naive-baseline` feature.  Fails loudly if the CSR path is
/// not at least 2× faster, so a regression in the hot loop cannot hide
/// behind absolute numbers.
fn bench_csr_vs_naive_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/csr_vs_naive_smp_256x256");
    let size = 256usize;
    let torus = Torus::new(TorusKind::ToroidalMesh, size, size);
    let coloring = absorbing_patch(&torus, size / 2);
    let cells = size as u64 * size as u64;
    group.throughput(Throughput::Elements(cells));

    group.bench_function("csr", |b| {
        let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone()).with_full_sweep();
        b.iter(|| black_box(sim.step()));
    });
    group.bench_function("naive_vec_per_vertex", |b| {
        let mut sim = NaiveSimulator::new(&torus, SmpProtocol, coloring.cells().to_vec());
        b.iter(|| black_box(sim.step()));
    });
    group.finish();

    // Direct ratio measurement (independent of the harness bookkeeping).
    // 100 rounds per stepper keeps the timing windows long enough
    // (~0.1 s / ~0.3 s) that scheduler noise cannot push the observed
    // ratio across the 2x acceptance line.
    let rounds = 100u32;
    let time_rounds = |mut step: Box<dyn FnMut() -> usize>| {
        for _ in 0..5 {
            black_box(step());
        }
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(step());
        }
        start.elapsed()
    };
    let mut csr = Simulator::new(&torus, SmpProtocol, coloring.clone()).with_full_sweep();
    let csr_time = time_rounds(Box::new(move || csr.step().changed));
    let mut naive = NaiveSimulator::new(&torus, SmpProtocol, coloring.cells().to_vec());
    let naive_time = time_rounds(Box::new(move || naive.step()));

    let speedup = naive_time.as_secs_f64() / csr_time.as_secs_f64();
    let rate = |t: std::time::Duration| cells as f64 * rounds as f64 / t.as_secs_f64() / 1e6;
    println!(
        "csr_vs_naive (256x256 toroidal mesh, SMP): csr {:.1} Mcell/s, naive {:.1} Mcell/s, speedup {speedup:.2}x",
        rate(csr_time),
        rate(naive_time),
    );
    assert!(
        speedup >= 2.0,
        "CSR hot loop must be >= 2x the naive Vec-per-vertex baseline, got {speedup:.2}x"
    );
}

/// A sparse bi-coloured SMP workload: `blocks` 2×2 black blocks plus
/// `singles` isolated black vertices scattered deterministically over a
/// white torus.  The seed density stays at or below 1% of the vertices.
/// Under two-colour SMP (flip on a strict 3-of-4 majority) the isolated
/// vertices are erased in round 1 and the blocks freeze, so after a short
/// transient almost every vertex is provably unchanged — exactly the
/// regime where the incremental frontier skips >99% of the full-sweep
/// work.
fn sparse_smp_seed(torus: &Torus, blocks: usize, singles: usize) -> Coloring {
    let (m, n) = (torus.rows(), torus.cols());
    let mut builder = ColoringBuilder::filled(torus, Color::WHITE);
    let mut placed = 0usize;
    let mut r = 3usize;
    let mut c = 5usize;
    while placed < blocks {
        builder = builder
            .cell(r % m, c % n, Color::BLACK)
            .cell(r % m, (c + 1) % n, Color::BLACK)
            .cell((r + 1) % m, c % n, Color::BLACK)
            .cell((r + 1) % m, (c + 1) % n, Color::BLACK);
        r = (r + 13) % m;
        c = (c + 29) % n;
        placed += 1;
    }
    let mut placed = 0usize;
    let (mut r, mut c) = (7usize, 11usize);
    while placed < singles {
        builder = builder.cell(r % m, c % n, Color::BLACK);
        r = (r + 17) % m;
        c = (c + 23) % n;
        placed += 1;
    }
    builder.build()
}

/// The tentpole acceptance comparison: the frontier scheduler plus the
/// bit-packed two-colour lane versus the PR-1 full-sweep CSR stepper, on
/// a 512×512 toroidal mesh under the SMP-Protocol seeded with <= 1% black
/// vertices.  Both steppers run the same number of rounds from the same
/// initial configuration and must end in the same state; the frontier
/// path must be at least 2× faster (in practice it is orders of magnitude
/// faster once the transient dies down).
fn bench_frontier_vs_full_sweep(c: &mut Criterion) {
    let size = 512usize;
    let cells = (size * size) as u64;
    let torus = Torus::new(TorusKind::ToroidalMesh, size, size);
    // 400 blocks (1600 vertices) + 800 singles = 2400 black <= 1% of 262144.
    let coloring = sparse_smp_seed(&torus, 400, 800);
    let seed_count = coloring.count(Color::BLACK);
    assert!(
        seed_count * 100 <= size * size,
        "seed density must stay at or below 1% ({seed_count} black vertices)"
    );
    let rounds = 64u32;

    let mut group = c.benchmark_group("engine/frontier_vs_full_sweep_smp_512x512");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells * u64::from(rounds)));
    // Each iteration rebuilds its simulator so both benchmarks time the
    // same `rounds` rounds from the same seed (reusing one stepped
    // simulator would leave the frontier side measuring an already-frozen
    // state).
    group.bench_function("frontier_packed", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
            assert!(sim.uses_packed_lane());
            for _ in 0..rounds {
                black_box(sim.step());
            }
        });
    });
    group.bench_function("full_sweep_csr", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone())
                .with_generic_lane()
                .with_full_sweep();
            for _ in 0..rounds {
                black_box(sim.step());
            }
        });
    });
    group.finish();

    // Direct ratio measurement with an equivalence check: both steppers
    // execute the same `rounds` synchronous rounds from the same seed.
    let mut frontier = Simulator::new(&torus, SmpProtocol, coloring.clone());
    assert!(frontier.uses_packed_lane(), "SMP on two colours must pack");
    let start = Instant::now();
    for _ in 0..rounds {
        black_box(frontier.step());
    }
    let frontier_time = start.elapsed();

    let mut full = Simulator::new(&torus, SmpProtocol, coloring)
        .with_generic_lane()
        .with_full_sweep();
    let start = Instant::now();
    for _ in 0..rounds {
        black_box(full.step());
    }
    let full_time = start.elapsed();

    assert_eq!(
        frontier.snapshot(),
        full.snapshot(),
        "the frontier+packed lane must reproduce the full-sweep state exactly"
    );
    let speedup = full_time.as_secs_f64() / frontier_time.as_secs_f64();
    println!(
        "frontier_vs_full_sweep (512x512 toroidal mesh, SMP, {seed_count} seeds, {rounds} rounds): \
         frontier+packed {:.2?}, full sweep {:.2?}, speedup {speedup:.1}x",
        frontier_time, full_time,
    );
    assert!(
        speedup >= 2.0,
        "frontier+packed stepper must be >= 2x the full-sweep CSR stepper, got {speedup:.2}x"
    );
}

/// A sustained-activity comparison: monotone threshold-2 growth from a
/// single 2×2 seed block keeps a moving wavefront alive for hundreds of
/// rounds, so this measures the frontier win during *active* dynamics
/// (the SMP comparison above measures the frozen regime).
fn bench_frontier_threshold_growth(c: &mut Criterion) {
    let size = 512usize;
    let torus = Torus::new(TorusKind::ToroidalMesh, size, size);
    let k = Color::new(2);
    let coloring = ColoringBuilder::filled(&torus, Color::new(1))
        .cell(255, 255, k)
        .cell(255, 256, k)
        .cell(256, 255, k)
        .cell(256, 256, k)
        .build();
    let rounds = 128u32;

    let mut group = c.benchmark_group("engine/frontier_vs_full_sweep_threshold_512x512");
    group.sample_size(10);
    group.bench_function("frontier_packed", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&torus, ThresholdRule::new(k, 2), coloring.clone());
            for _ in 0..rounds {
                black_box(sim.step());
            }
            black_box(sim.count_of(k))
        });
    });
    group.bench_function("full_sweep_csr", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&torus, ThresholdRule::new(k, 2), coloring.clone())
                .with_generic_lane()
                .with_full_sweep();
            for _ in 0..rounds {
                black_box(sim.step());
            }
            black_box(sim.count_of(k))
        });
    });
    group.finish();
}

/// Criterion configuration shared by this file: shorter warm-up and
/// measurement windows so the full `cargo bench --workspace` sweep stays
/// within a few minutes while still producing stable estimates.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_single_round, bench_rules, bench_run_to_convergence,
              bench_csr_vs_naive_baseline, bench_frontier_vs_full_sweep,
              bench_frontier_threshold_growth
}
criterion_main!(benches);
