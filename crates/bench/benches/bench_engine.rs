//! Engine throughput: cells updated per second per topology and per rule.
//!
//! Not a figure of the paper — this is the engineering baseline that tells
//! a user how large a torus the simulator handles comfortably.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctori_bench::{absorbing_patch, target_color};
use ctori_coloring::patterns::column_stripes;
use ctori_coloring::Color;
use ctori_engine::naive::NaiveSimulator;
use ctori_engine::{RunConfig, Simulator};
use ctori_protocols::{ReverseSimpleMajority, ReverseStrongMajority, SmpProtocol};
use ctori_topology::{Torus, TorusKind};
use std::hint::black_box;
use std::time::Instant;

fn bench_single_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/single_round");
    for &size in &[32usize, 64, 128, 256] {
        for kind in TorusKind::ALL {
            let torus = Torus::new(kind, size, size);
            let coloring = absorbing_patch(&torus, size / 2);
            group.throughput(Throughput::Elements((size * size) as u64));
            group.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', "_"), size),
                &size,
                |b, _| {
                    let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
                    b.iter(|| black_box(sim.step()));
                },
            );
        }
    }
    group.finish();
}

fn bench_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/rules_single_round");
    let size = 128usize;
    let torus = Torus::new(TorusKind::ToroidalMesh, size, size);
    let coloring = column_stripes(&torus, &[Color::new(1), Color::new(2), Color::new(3)]);
    group.throughput(Throughput::Elements((size * size) as u64));

    group.bench_function("smp", |b| {
        let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
        b.iter(|| black_box(sim.step()));
    });
    group.bench_function("reverse_simple_prefer_black", |b| {
        let mut sim = Simulator::new(
            &torus,
            ReverseSimpleMajority::prefer_black(),
            coloring.clone(),
        );
        b.iter(|| black_box(sim.step()));
    });
    group.bench_function("reverse_strong", |b| {
        let mut sim = Simulator::new(&torus, ReverseStrongMajority, coloring.clone());
        b.iter(|| black_box(sim.step()));
    });
    group.finish();
}

fn bench_run_to_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/run_to_convergence");
    group.sample_size(20);
    for &size in &[32usize, 64, 128] {
        let torus = Torus::new(TorusKind::ToroidalMesh, size, size);
        let coloring = absorbing_patch(&torus, size / 2);
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
                let report = sim.run(&RunConfig::default().without_cycle_detection());
                assert!(report.termination.is_monochromatic_in(target_color()));
                black_box(report.rounds)
            });
        });
    }
    group.finish();
}

/// The acceptance comparison for the shared CSR kernel: SMP round
/// throughput on a 256×256 toroidal mesh, the zero-allocation CSR stepper
/// versus the `Vec<NodeId>`-per-vertex baseline kept behind the engine's
/// bench-only `naive-baseline` feature.  Fails loudly if the CSR path is
/// not at least 2× faster, so a regression in the hot loop cannot hide
/// behind absolute numbers.
fn bench_csr_vs_naive_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/csr_vs_naive_smp_256x256");
    let size = 256usize;
    let torus = Torus::new(TorusKind::ToroidalMesh, size, size);
    let coloring = absorbing_patch(&torus, size / 2);
    let cells = size as u64 * size as u64;
    group.throughput(Throughput::Elements(cells));

    group.bench_function("csr", |b| {
        let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
        b.iter(|| black_box(sim.step()));
    });
    group.bench_function("naive_vec_per_vertex", |b| {
        let mut sim = NaiveSimulator::new(&torus, SmpProtocol, coloring.cells().to_vec());
        b.iter(|| black_box(sim.step()));
    });
    group.finish();

    // Direct ratio measurement (independent of the harness bookkeeping).
    // 100 rounds per stepper keeps the timing windows long enough
    // (~0.1 s / ~0.3 s) that scheduler noise cannot push the observed
    // ratio across the 2x acceptance line.
    let rounds = 100u32;
    let time_rounds = |mut step: Box<dyn FnMut() -> usize>| {
        for _ in 0..5 {
            black_box(step());
        }
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(step());
        }
        start.elapsed()
    };
    let mut csr = Simulator::new(&torus, SmpProtocol, coloring.clone());
    let csr_time = time_rounds(Box::new(move || csr.step().changed));
    let mut naive = NaiveSimulator::new(&torus, SmpProtocol, coloring.cells().to_vec());
    let naive_time = time_rounds(Box::new(move || naive.step()));

    let speedup = naive_time.as_secs_f64() / csr_time.as_secs_f64();
    let rate = |t: std::time::Duration| cells as f64 * rounds as f64 / t.as_secs_f64() / 1e6;
    println!(
        "csr_vs_naive (256x256 toroidal mesh, SMP): csr {:.1} Mcell/s, naive {:.1} Mcell/s, speedup {speedup:.2}x",
        rate(csr_time),
        rate(naive_time),
    );
    assert!(
        speedup >= 2.0,
        "CSR hot loop must be >= 2x the naive Vec-per-vertex baseline, got {speedup:.2}x"
    );
}

/// Criterion configuration shared by this file: shorter warm-up and
/// measurement windows so the full `cargo bench --workspace` sweep stays
/// within a few minutes while still producing stable estimates.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_single_round, bench_rules, bench_run_to_convergence, bench_csr_vs_naive_baseline
}
criterion_main!(benches);
