//! Multi-colour bit-plane lane throughput versus the generic frontier.
//!
//! The workload is a dense uniform scatter over the palette: under a
//! threshold (or plurality) rule almost every vertex is a flip candidate
//! for many rounds, so both lanes do real per-round work and the
//! comparison measures evaluation throughput, not frontier bookkeeping.
//!
//! The direct ratio measurement at the end prints the PR's acceptance
//! line — plane-lane throughput ≥ 10× the generic frontier on the
//! 3-colour 1024×1024 threshold run — and only *asserts* it when
//! `CTORI_BENCH_ASSERT_SPEEDUP` is set, so an ordinary `cargo bench` run
//! stays measurement-only and cannot flake on a loaded machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctori_bench::multicolor_scatter;
use ctori_coloring::Color;
use ctori_engine::Simulator;
use ctori_protocols::{SmpProtocol, ThresholdRule};
use ctori_topology::{Torus, TorusKind};
use std::hint::black_box;
use std::time::Instant;

/// The acceptance workload: a 3-colour uniform scatter on a 1024×1024
/// toroidal mesh under threshold-2 activation of the highest colour.
fn acceptance_workload() -> (Torus, ThresholdRule) {
    let torus = Torus::new(TorusKind::ToroidalMesh, 1024, 1024);
    (torus, ThresholdRule::new(Color::new(3), 2))
}

fn bench_planes_vs_generic_threshold(c: &mut Criterion) {
    let (torus, rule) = acceptance_workload();
    let coloring = multicolor_scatter(&torus, 3, 0xC70);
    let rounds = 16u32;
    let cells = (torus.rows() * torus.cols()) as u64;

    let mut group = c.benchmark_group("engine/planes_vs_generic_threshold_1024x1024");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells * u64::from(rounds)));
    // Each iteration rebuilds its simulator so both lanes time the same
    // `rounds` rounds from the same dense seed (reusing one stepped
    // simulator would leave later iterations measuring a saturated,
    // mostly-frozen state).
    group.bench_function("planes", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&torus, rule, coloring.clone());
            assert!(sim.uses_plane_lane());
            for _ in 0..rounds {
                black_box(sim.step());
            }
        });
    });
    group.bench_function("generic_frontier", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&torus, rule, coloring.clone()).with_generic_lane();
            for _ in 0..rounds {
                black_box(sim.step());
            }
        });
    });
    group.finish();

    // Direct ratio measurement with an equivalence check: both lanes
    // execute the same `rounds` synchronous rounds from the same seed.
    let mut planes = Simulator::new(&torus, rule, coloring.clone());
    assert!(
        planes.uses_plane_lane(),
        "3-colour threshold on a torus must select the plane lane"
    );
    let start = Instant::now();
    for _ in 0..rounds {
        black_box(planes.step());
    }
    let planes_time = start.elapsed();

    let mut generic = Simulator::new(&torus, rule, coloring).with_generic_lane();
    let start = Instant::now();
    for _ in 0..rounds {
        black_box(generic.step());
    }
    let generic_time = start.elapsed();

    assert_eq!(
        planes.snapshot(),
        generic.snapshot(),
        "the plane lane must reproduce the generic-frontier state exactly"
    );
    let speedup = generic_time.as_secs_f64() / planes_time.as_secs_f64();
    let rate = |t: std::time::Duration| cells as f64 * f64::from(rounds) / t.as_secs_f64() / 1e6;
    println!(
        "planes_vs_generic (1024x1024 toroidal mesh, 3 colours, threshold-2, {rounds} rounds): \
         planes {:.1} Mcell/s, generic {:.1} Mcell/s, speedup {speedup:.1}x",
        rate(planes_time),
        rate(generic_time),
    );
    // Opt-in acceptance gate: a timing assert inside a bench would fail
    // nondeterministically on loaded machines, so plain runs only warn.
    if std::env::var_os("CTORI_BENCH_ASSERT_SPEEDUP").is_some() {
        assert!(
            speedup >= 10.0,
            "plane lane must be >= 10x the generic frontier on the 3-colour \
             1024x1024 threshold run, got {speedup:.1}x"
        );
    } else if speedup < 10.0 {
        eprintln!(
            "warning: plane-lane speedup {speedup:.1}x is below the 10x acceptance target \
             (set CTORI_BENCH_ASSERT_SPEEDUP=1 to make this a hard failure)"
        );
    }
}

/// Measurement-only sweep of the plane lane across palettes and torus
/// kinds: SMP plurality on a 512×512 scatter, one group per palette size,
/// so plane-count effects (2 planes for 3–4 colours, 3 for 5–8) stay
/// visible in the Criterion history.
fn bench_planes_palette_sweep(c: &mut Criterion) {
    let size = 512usize;
    let rounds = 8u32;
    let cells = (size * size) as u64;
    let mut group = c.benchmark_group("engine/planes_smp_palette_512x512");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells * u64::from(rounds)));
    for &palette in &[3u16, 5, 8] {
        for kind in TorusKind::ALL {
            let torus = Torus::new(kind, size, size);
            let coloring = multicolor_scatter(&torus, palette, u64::from(palette));
            group.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', "_"), palette),
                &palette,
                |b, _| {
                    b.iter(|| {
                        let mut sim = Simulator::new(&torus, SmpProtocol, coloring.clone());
                        assert!(sim.uses_plane_lane());
                        for _ in 0..rounds {
                            black_box(sim.step());
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

/// Criterion configuration shared by this file: shorter warm-up and
/// measurement windows so the full `cargo bench --workspace` sweep stays
/// within a few minutes while still producing stable estimates.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_planes_vs_generic_threshold, bench_planes_palette_sweep
}
criterion_main!(benches);
