//! Execution-API overhead: `LocalExecutor` submit→wait through the
//! persistent worker pool vs the raw blocking `Runner::execute`, on the
//! same tiny spec.
//!
//! The pool path pays queue admission, a worker handoff, event
//! publishing and a condvar wakeup per job; this bench keeps that fixed
//! cost visible over time.  Two pool variants are measured: the
//! automatic progress stride (an event every round) and a sparse stride
//! (1 event per 1024 rounds), so the cost of the sampling observer
//! itself is separable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ctori_coloring::Color;
use ctori_engine::{
    EngineOptions, Executor, LocalExecutor, LocalExecutorConfig, RuleSpec, RunSpec, Runner,
    SeedSpec, SubmitOptions, TopologySpec,
};
use std::hint::black_box;

fn tiny_spec() -> RunSpec {
    RunSpec::new(
        TopologySpec::toroidal_mesh(8, 8),
        RuleSpec::parse("smp").expect("registry rule"),
        SeedSpec::Density {
            color: Color::new(1),
            palette: 4,
            fraction: 0.4,
            rng_seed: 7,
        },
    )
}

fn bench_submit_wait_overhead(c: &mut Criterion) {
    let spec = tiny_spec();
    let runner = Runner::with_threads(1);
    c.bench_function("executor/runner_execute_8x8", |b| {
        b.iter(|| black_box(runner.execute(&spec)))
    });

    let pool = LocalExecutor::start(LocalExecutorConfig {
        workers: 1,
        ..LocalExecutorConfig::default()
    });
    c.bench_function("executor/local_submit_wait_8x8", |b| {
        b.iter(|| {
            let mut handle = pool
                .submit(&spec, SubmitOptions::default())
                .expect("admitted");
            black_box(handle.wait().expect("finishes"))
        })
    });

    let sparse = spec
        .clone()
        .with_options(EngineOptions::default().with_progress_every(1024));
    c.bench_function("executor/local_submit_wait_8x8_sparse_events", |b| {
        b.iter(|| {
            let mut handle = pool
                .submit(&sparse, SubmitOptions::default())
                .expect("admitted");
            black_box(handle.wait().expect("finishes"))
        })
    });
    pool.drain();
}

fn bench_sweep_through_pool(c: &mut Criterion) {
    // An 18-spec grid through submit_sweep handles, next to the blocking
    // Runner::sweep of the identical grid — the batch-path comparison.
    let grid: Vec<RunSpec> = (0..18)
        .map(|n| {
            RunSpec::new(
                TopologySpec::toroidal_mesh(16, 16),
                RuleSpec::parse("smp").expect("registry rule"),
                SeedSpec::Density {
                    color: Color::new(1),
                    palette: 4,
                    fraction: 0.3 + 0.02 * n as f64,
                    rng_seed: 2011 + n,
                },
            )
        })
        .collect();
    let mut group = c.benchmark_group("executor/sweep_grid_18");
    group.sample_size(10);
    group.throughput(Throughput::Elements(grid.len() as u64));
    group.bench_function("runner_sweep_refs", |b| {
        let runner = Runner::new();
        b.iter(|| black_box(runner.sweep_refs(&grid)));
    });
    group.bench_function("local_executor_submit_sweep", |b| {
        let pool = LocalExecutor::start(LocalExecutorConfig::default());
        b.iter(|| {
            let handles = pool
                .submit_sweep(&grid, SubmitOptions::default())
                .expect("admitted");
            for mut handle in handles {
                black_box(handle.wait().expect("finishes"));
            }
        });
        pool.drain();
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_submit_wait_overhead,
    bench_sweep_through_pool
);
criterion_main!(benches);
