//! Service-layer throughput: submit→result latency over loopback TCP,
//! cold (fresh execution) vs. cache-hit (memoized outcome).
//!
//! The workload is the acceptance scenario: a 128×128 SMP spec with a
//! reproducible density seed.  Cold submissions vary the RNG seed so
//! every iteration has a distinct canonical key (guaranteed cache miss);
//! the cache-hit lane resubmits one fixed spec after priming.  The direct
//! ratio measurement at the end prints the PR's acceptance line —
//! cache-hit latency ≥ 10× lower than cold execution — and only *asserts*
//! it when `CTORI_BENCH_ASSERT_SPEEDUP` is set, so an ordinary
//! `cargo bench` run stays measurement-only and cannot flake on a loaded
//! machine.

use criterion::{criterion_group, criterion_main, Criterion};
use ctori_coloring::Color;
use ctori_engine::{RuleSpec, RunSpec, SeedSpec, TopologySpec};
use ctori_service::{SchedulerConfig, Server, ServiceClient, ServiceConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The 128×128 SMP acceptance spec, keyed by its RNG seed.
fn spec_128(rng_seed: u64) -> RunSpec {
    RunSpec::new(
        TopologySpec::toroidal_mesh(128, 128),
        RuleSpec::parse("smp").expect("registry rule"),
        SeedSpec::Density {
            color: Color::new(1),
            palette: 4,
            fraction: 0.4,
            rng_seed,
        },
    )
}

/// Starts an in-process server on an ephemeral loopback port and connects
/// one client to it.
fn start() -> (
    ServiceClient,
    std::thread::JoinHandle<std::io::Result<ctori_service::ServiceStats>>,
) {
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: SchedulerConfig {
            workers: 2,
            queue_capacity: 4096,
            cache_capacity: 4096,
            ..SchedulerConfig::default()
        },
    })
    .expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.serve());
    let client = ServiceClient::connect(addr).expect("connect");
    (client, handle)
}

/// One full submit→result round trip.
fn roundtrip(client: &mut ServiceClient, spec: &RunSpec) -> usize {
    let id = client.submit(spec).expect("submit");
    client.result(id).expect("result").rounds
}

fn bench_submit_result(c: &mut Criterion) {
    let (mut client, server) = start();
    let mut group = c.benchmark_group("service/submit_result_128x128_smp");
    group.sample_size(10);

    // Cold: a fresh canonical key every iteration.
    let mut next_seed = 0u64;
    group.bench_function("cold_miss", |b| {
        b.iter(|| {
            next_seed += 1;
            black_box(roundtrip(&mut client, &spec_128(next_seed)))
        });
    });

    // Cache hit: one fixed spec, primed once.
    let fixed = spec_128(u64::MAX);
    roundtrip(&mut client, &fixed);
    group.bench_function("cache_hit", |b| {
        b.iter(|| black_box(roundtrip(&mut client, &fixed)));
    });
    group.finish();

    // Direct ratio measurement (independent of the harness bookkeeping):
    // the acceptance line is cache-hit latency >= 10x lower than cold.
    let measure = |client: &mut ServiceClient,
                   iterations: u64,
                   mut spec_of: Box<dyn FnMut(u64) -> RunSpec>| {
        let start = Instant::now();
        for i in 0..iterations {
            black_box(roundtrip(client, &spec_of(i)));
        }
        start.elapsed() / iterations as u32
    };
    let cold: Duration = measure(
        &mut client,
        5,
        Box::new(|i| spec_128(1_000_000 + i)), // seeds no other lane used
    );
    let hit: Duration = measure(&mut client, 25, Box::new(|_| spec_128(u64::MAX)));
    let speedup = cold.as_secs_f64() / hit.as_secs_f64();
    println!(
        "service 128x128 SMP submit->result: cold {:.2} ms, cache-hit {:.3} ms, speedup {speedup:.1}x",
        cold.as_secs_f64() * 1e3,
        hit.as_secs_f64() * 1e3,
    );
    // Opt-in acceptance gate: a timing assert inside a bench would fail
    // nondeterministically on loaded machines, so plain runs only warn.
    if std::env::var_os("CTORI_BENCH_ASSERT_SPEEDUP").is_some() {
        assert!(
            speedup >= 10.0,
            "cache-hit latency must be >= 10x lower than cold execution, got {speedup:.1}x"
        );
    } else if speedup < 10.0 {
        eprintln!(
            "warning: cache-hit speedup {speedup:.1}x is below the 10x acceptance target \
             (set CTORI_BENCH_ASSERT_SPEEDUP=1 to make this a hard failure)"
        );
    }

    let stats = client.stats().expect("stats");
    assert!(stats.cache.hits > 0 && stats.cache.misses > 0);
    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("serve");
}

criterion_group!(benches, bench_submit_result);
criterion_main!(benches);
