//! One benchmark per paper figure: the time to regenerate each artefact
//! (configuration or recolouring-time matrix) from scratch.

use criterion::{criterion_group, criterion_main, Criterion};
use ctori_coloring::Color;
use ctori_core::dynamo::verify_dynamo;
use ctori_core::figures;
use std::hint::black_box;

fn k() -> Color {
    Color::new(1)
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");

    group.bench_function("fig1_seed_9x9", |b| {
        b.iter(|| {
            let (_, seed, picture) = figures::figure1(9, 9, k());
            assert_eq!(seed.count(k()), 16);
            black_box(picture.len())
        });
    });

    group.bench_function("fig2_construction_9x9", |b| {
        b.iter(|| {
            let built = figures::figure2(9, 9, k()).expect("constructible");
            assert_eq!(built.seed_size(), 16);
            black_box(built.colors_used())
        });
    });

    group.bench_function("fig3_counterexample_9x9", |b| {
        b.iter(|| {
            let (torus, coloring) = figures::figure3(9, 9, k());
            let report = verify_dynamo(&torus, &coloring, k());
            assert!(!report.is_dynamo());
            black_box(report.rounds)
        });
    });

    group.bench_function("fig4_frozen_9x9", |b| {
        b.iter(|| {
            let (torus, coloring) = figures::figure4(9, 9, k());
            let report = verify_dynamo(&torus, &coloring, k());
            assert!(!report.is_dynamo());
            black_box(report.rounds)
        });
    });

    group.bench_function("fig5_time_matrix_5x5", |b| {
        b.iter(|| {
            let times = figures::figure5(5, 5, k());
            assert_eq!(times.max_time(), Some(3));
            black_box(times.render().len())
        });
    });

    group.bench_function("fig6_time_matrix_5x5", |b| {
        b.iter(|| {
            let times = figures::figure6(5, 5, k());
            assert_eq!(times.max_time(), Some(8));
            black_box(times.render().len())
        });
    });

    // Larger instances of the figure-5/6 style matrices, to show how the
    // artefact scales with the torus size.
    for &size in &[16usize, 32, 64] {
        group.bench_function(format!("fig5_time_matrix_{size}x{size}"), |b| {
            b.iter(|| black_box(figures::figure5(size, size, k()).max_time()));
        });
        group.bench_function(format!("fig6_time_matrix_{size}x{size}"), |b| {
            b.iter(|| black_box(figures::figure6(size, size, k()).max_time()));
        });
    }

    group.finish();
}

/// Criterion configuration shared by this file: shorter warm-up and
/// measurement windows so the full `cargo bench --workspace` sweep stays
/// within a few minutes while still producing stable estimates.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_figures
}
criterion_main!(benches);
