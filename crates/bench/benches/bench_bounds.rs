//! Theorems 1, 3 and 5 (and Proposition 3): cost of the exhaustive
//! lower-bound verification on small tori, and of the block/non-block
//! detection primitives the bounds rest on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctori_bench::target_color;
use ctori_coloring::random::uniform_random;
use ctori_coloring::{Color, Palette};
use ctori_core::blocks::{find_k_blocks, find_non_k_blocks};
use ctori_core::bounds;
use ctori_core::search::verify_lower_bound;
use ctori_topology::{Torus, TorusKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_exhaustive_lower_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounds/exhaustive_small_tori");
    group.sample_size(10);
    let cases = [
        (TorusKind::ToroidalMesh, 3usize, 3usize),
        (TorusKind::TorusCordalis, 3, 3),
        (TorusKind::TorusSerpentinus, 4, 3),
    ];
    for (kind, m, n) in cases {
        let torus = Torus::new(kind, m, n);
        let bound = bounds::lower_bound(kind, m, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}_{m}x{n}", kind.name().replace(' ', "_"))),
            &bound,
            |b, &bound| {
                b.iter(|| {
                    let ok = verify_lower_bound(&torus, target_color(), Palette::new(4), bound);
                    assert!(ok);
                    black_box(ok)
                });
            },
        );
    }
    group.finish();
}

fn bench_block_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounds/block_detection");
    for &size in &[32usize, 128] {
        for kind in TorusKind::ALL {
            let torus = Torus::new(kind, size, size);
            let mut rng = StdRng::seed_from_u64(13);
            let coloring = uniform_random(&torus, &Palette::new(4), &mut rng);
            group.throughput(Throughput::Elements((size * size) as u64));
            group.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', "_"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        let kb = find_k_blocks(&torus, &coloring, Color::new(1));
                        let nb = find_non_k_blocks(&torus, &coloring, Color::new(1));
                        black_box((kb.len(), nb.len()))
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_bound_formulas(c: &mut Criterion) {
    // Trivially cheap, but keeping them benchmarked documents that the
    // bounds table of EXPERIMENTS.md costs nothing to regenerate at any
    // size.
    let mut group = c.benchmark_group("bounds/formulas");
    group.bench_function("all_kinds_up_to_4096", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in (8usize..=4096).step_by(8) {
                for kind in TorusKind::ALL {
                    acc = acc.wrapping_add(bounds::lower_bound(kind, s, s));
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

/// Criterion configuration shared by this file: shorter warm-up and
/// measurement windows so the full `cargo bench --workspace` sweep stays
/// within a few minutes while still producing stable estimates.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets =
    bench_exhaustive_lower_bounds,
    bench_block_detection,
    bench_bound_formulas

}
criterion_main!(benches);
