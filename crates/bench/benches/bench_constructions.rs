//! Theorems 2, 4 and 6: cost of building (and validating) the minimum
//! monotone dynamo constructions across torus sizes and topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctori_bench::target_color;
use ctori_core::construct::minimum_dynamo;
use ctori_core::hypotheses::check_hypotheses;
use ctori_topology::TorusKind;
use std::hint::black_box;

fn bench_construct(c: &mut Criterion) {
    let mut group = c.benchmark_group("constructions/build");
    // Sizes chosen so the 4-colour stripe fillers apply (a dimension
    // divisible by 3), matching the paper's |C| = 4 claim.
    for &size in &[9usize, 24, 48, 96] {
        for kind in TorusKind::ALL {
            group.throughput(Throughput::Elements((size * size) as u64));
            group.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', "_"), size),
                &size,
                |b, &s| {
                    b.iter(|| {
                        let built = minimum_dynamo(kind, s, s, target_color()).expect("builds");
                        black_box(built.seed_size())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_hypothesis_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("constructions/hypothesis_check");
    for &size in &[24usize, 96] {
        for kind in TorusKind::ALL {
            let built = ctori_bench::build_construction(kind, size, size);
            group.throughput(Throughput::Elements((size * size) as u64));
            group.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', "_"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        let violations =
                            check_hypotheses(built.torus(), built.coloring(), built.k());
                        assert!(violations.is_empty());
                        black_box(violations.len())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_local_search_filler(c: &mut Criterion) {
    // The randomized filler is only used for sizes the stripe patterns do
    // not cover; measure it separately so regressions are visible.
    let mut group = c.benchmark_group("constructions/local_search_filler");
    group.sample_size(10);
    for &(m, n) in &[(7usize, 8usize), (11, 10), (14, 13)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("cordalis_{m}x{n}")),
            &(m, n),
            |b, &(m, n)| {
                b.iter(|| {
                    let built = minimum_dynamo(TorusKind::TorusCordalis, m, n, target_color())
                        .expect("builds");
                    black_box(built.colors_used())
                });
            },
        );
    }
    group.finish();
}

/// Criterion configuration shared by this file: shorter warm-up and
/// measurement windows so the full `cargo bench --workspace` sweep stays
/// within a few minutes while still producing stable estimates.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets =
    bench_construct,
    bench_hypothesis_check,
    bench_local_search_filler

}
criterion_main!(benches);
