//! Batch-layer throughput: `Runner::sweep` over a declarative parameter
//! grid, in specs per second.
//!
//! The grid is 3 sizes × 3 torus kinds × 2 seed densities = 18 `RunSpec`s
//! (density × size × kind — the shape a batch/service layer will fan out).
//! Sequential execution (one thread) is measured next to the parallel
//! sweep so the scaling of the batch path stays visible over time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ctori_coloring::Color;
use ctori_engine::{RuleSpec, RunSpec, Runner, SeedSpec, TopologySpec};
use ctori_topology::TorusKind;
use std::hint::black_box;

/// The 3 × 3 × 2 scenario grid: size × kind × density.
fn spec_grid() -> Vec<RunSpec> {
    let sizes = [16usize, 24, 32];
    let densities = [0.3f64, 0.6];
    let mut grid = Vec::with_capacity(sizes.len() * TorusKind::ALL.len() * densities.len());
    for &size in &sizes {
        for kind in TorusKind::ALL {
            for &fraction in &densities {
                grid.push(RunSpec::new(
                    TopologySpec::torus(kind, size, size),
                    RuleSpec::parse("smp").expect("registry rule"),
                    SeedSpec::Density {
                        color: Color::new(1),
                        palette: 4,
                        fraction,
                        rng_seed: 2011,
                    },
                ));
            }
        }
    }
    grid
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let grid = spec_grid();
    let mut group = c.benchmark_group("runner/sweep_grid_3x3x2");
    group.sample_size(10);
    group.throughput(Throughput::Elements(grid.len() as u64));

    // sweep_refs borrows the grid, so no per-iteration clone pollutes
    // the measurement.
    group.bench_function("sequential_1_thread", |b| {
        let runner = Runner::with_threads(1);
        b.iter(|| black_box(runner.sweep_refs(&grid)));
    });
    group.bench_function("parallel_default_threads", |b| {
        let runner = Runner::new();
        b.iter(|| black_box(runner.sweep_refs(&grid)));
    });
    group.finish();
}

fn bench_single_spec_overhead(c: &mut Criterion) {
    // One tiny spec, executed alone: the fixed cost of the declarative
    // path (topology build + seed materialisation + lane selection) on
    // top of the raw simulator.
    let spec = RunSpec::new(
        TopologySpec::toroidal_mesh(8, 8),
        RuleSpec::parse("smp").expect("registry rule"),
        SeedSpec::Density {
            color: Color::new(1),
            palette: 4,
            fraction: 0.4,
            rng_seed: 7,
        },
    );
    let runner = Runner::with_threads(1);
    c.bench_function("runner/execute_single_8x8", |b| {
        b.iter(|| black_box(runner.execute(&spec)))
    });
}

criterion_group!(benches, bench_sweep_throughput, bench_single_spec_overhead);
criterion_main!(benches);
