//! Theorems 7 and 8: convergence-time sweeps.
//!
//! Each benchmark simulates the minimum-dynamo construction to the
//! monochromatic configuration and asserts that the measured round count
//! stays in the regime the paper predicts (O(max(m,n)) for the toroidal
//! mesh, O(m·n) for the chained tori) — so the harness regenerates the
//! round-complexity results while it measures wall-clock cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctori_bench::{build_construction, target_color};
use ctori_core::dynamo::verify_dynamo;
use ctori_core::rounds::{theorem7_rounds, theorem8_rounds};
use ctori_topology::TorusKind;
use std::hint::black_box;

fn bench_mesh_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounds/theorem7_mesh");
    group.sample_size(15);
    for &size in &[9usize, 15, 33, 63, 129] {
        let built = build_construction(TorusKind::ToroidalMesh, size, size);
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &s| {
            b.iter(|| {
                let report = verify_dynamo(built.torus(), built.coloring(), target_color());
                assert!(report.is_monotone_dynamo());
                let predicted = theorem7_rounds(s, s);
                // shape check: within two rounds of the formula
                assert!((report.rounds as i64 - predicted).abs() <= 2);
                black_box(report.rounds)
            });
        });
    }
    group.finish();
}

fn bench_chained_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounds/theorem8_cordalis_serpentinus");
    group.sample_size(15);
    for kind in [TorusKind::TorusCordalis, TorusKind::TorusSerpentinus] {
        for &size in &[9usize, 15, 33, 63] {
            let built = build_construction(kind, size, size);
            group.throughput(Throughput::Elements((size * size) as u64));
            group.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', "_"), size),
                &size,
                |b, &s| {
                    b.iter(|| {
                        let report = verify_dynamo(built.torus(), built.coloring(), target_color());
                        assert!(report.is_monotone_dynamo());
                        let predicted = theorem8_rounds(s, s);
                        // shape check: Theta(m*n/2) rounds, never more than a
                        // row-sweep away from the formula (odd sizes match it
                        // exactly; see the thm8 experiment).
                        assert!((report.rounds as i64 - predicted).unsigned_abs() as usize <= s);
                        black_box(report.rounds)
                    });
                },
            );
        }
    }
    group.finish();
}

/// Criterion configuration shared by this file: shorter warm-up and
/// measurement windows so the full `cargo bench --workspace` sweep stays
/// within a few minutes while still producing stable estimates.
fn configured() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_mesh_rounds, bench_chained_rounds
}
criterion_main!(benches);
