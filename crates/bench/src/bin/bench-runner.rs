//! The perf-trajectory recorder: measures plane-lane and generic-frontier
//! throughput over a fixed (torus kind × size × palette) grid and writes
//! the result as `BENCH_<pr>.json`.
//!
//! Unlike the Criterion benches (interactive, statistical), this binary
//! produces one machine-readable artefact per PR so throughput history is
//! diffable: `BENCH_6.json` is the first point of the trajectory, and CI
//! re-emits a quick-mode file on every push to catch silent regressions
//! (Mcell/s must stay positive and the grid complete; absolute numbers
//! are informational because runner hardware varies).
//!
//! ```text
//! bench-runner [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the grid to 128×128 with fewer rounds (CI smoke);
//! the default full grid is 1024² and 4096² so the cache-tiled traversal
//! is exercised on a torus that does not fit in L2.  Every measurement
//! checks lane equivalence (identical snapshots after the timed rounds)
//! before recording, so the artefact cannot contain numbers from a
//! diverged kernel.

use ctori_bench::multicolor_scatter;
use ctori_coloring::Color;
use ctori_engine::Simulator;
use ctori_protocols::ThresholdRule;
use ctori_topology::{Torus, TorusKind};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// The PR number this artefact belongs to (the perf-trajectory index).
const PR: u32 = 6;

/// One measured grid point.
struct Sample {
    kind: TorusKind,
    size: usize,
    palette: u16,
    planes_mcells: f64,
    generic_mcells: f64,
}

impl Sample {
    fn speedup(&self) -> f64 {
        self.planes_mcells / self.generic_mcells
    }
}

/// The registry name of a torus kind (`toroidal-mesh`, …).
fn kind_key(kind: TorusKind) -> &'static str {
    match kind {
        TorusKind::ToroidalMesh => "toroidal-mesh",
        TorusKind::TorusCordalis => "torus-cordalis",
        TorusKind::TorusSerpentinus => "torus-serpentinus",
        other => unreachable!("unknown torus kind {other:?}"),
    }
}

/// Times `rounds` synchronous rounds from the cold post-construction
/// state and returns Mcell/s.  No untimed warm round: each lane pays its
/// own first-round setup (frontier seeding, the plane lane's full first
/// sweep), so the figure is the end-to-end cost of advancing the workload
/// `rounds` rounds.
fn time_lane(mut sim: Simulator<ThresholdRule>, rounds: u32, cells: usize) -> (f64, Vec<Color>) {
    let start = Instant::now();
    for _ in 0..rounds {
        black_box(sim.step());
    }
    let elapsed = start.elapsed();
    let mcells = cells as f64 * f64::from(rounds) / elapsed.as_secs_f64() / 1e6;
    (mcells, sim.snapshot())
}

/// Measures one grid point: plane lane vs generic frontier on the same
/// dense scatter, with an exact-equivalence check before recording.
fn measure(kind: TorusKind, size: usize, palette: u16, rounds: u32) -> Sample {
    let torus = Torus::new(kind, size, size);
    let cells = size * size;
    // Threshold-2 activation of the highest palette colour over a dense
    // uniform scatter: nearly every vertex stays a flip candidate for the
    // whole measurement, the same workload as `bench_planes`.
    let rule = ThresholdRule::new(Color::new(palette), 2);
    let coloring = multicolor_scatter(&torus, palette, 0x6 + cells as u64);

    let planes_sim = Simulator::new(&torus, rule, coloring.clone());
    assert!(
        planes_sim.uses_plane_lane(),
        "{} {size}x{size} k={palette}: plane lane not selected",
        kind_key(kind)
    );
    let (planes_mcells, planes_snap) = time_lane(planes_sim, rounds, cells);

    let generic_sim = Simulator::new(&torus, rule, coloring).with_generic_lane();
    let (generic_mcells, generic_snap) = time_lane(generic_sim, rounds, cells);

    assert_eq!(
        planes_snap,
        generic_snap,
        "{} {size}x{size} k={palette}: lanes diverged",
        kind_key(kind)
    );
    Sample {
        kind,
        size,
        palette,
        planes_mcells,
        generic_mcells,
    }
}

/// Renders the samples as the `BENCH_<pr>.json` document.
fn render(samples: &[Sample], mode: &str, rounds: u32) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"planes_vs_generic\",");
    let _ = writeln!(out, "  \"pr\": {PR},");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"rule\": \"threshold(palette,2)\",");
    let _ = writeln!(out, "  \"rounds\": {rounds},");
    let _ = writeln!(out, "  \"unit\": \"Mcell/s\",");
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kind\": \"{}\", \"size\": {}, \"palette\": {}, \
             \"planes_mcells\": {:.1}, \"generic_mcells\": {:.1}, \"speedup\": {:.1}}}",
            kind_key(s.kind),
            s.size,
            s.palette,
            s.planes_mcells,
            s.generic_mcells,
            s.speedup(),
        );
        out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("BENCH_{PR}.json"));

    let (sizes, rounds, mode): (&[usize], u32, &str) = if quick {
        (&[128], 4, "quick")
    } else {
        (&[1024, 4096], 8, "full")
    };
    let palettes: &[u16] = &[3, 5, 8];

    let mut samples = Vec::new();
    for kind in TorusKind::ALL {
        for &size in sizes {
            for &palette in palettes {
                let sample = measure(kind, size, palette, rounds);
                eprintln!(
                    "{:<18} {size:>4}x{size:<4} k={palette}: planes {:>8.1} Mcell/s, \
                     generic {:>7.1} Mcell/s, {:>5.1}x",
                    kind_key(sample.kind),
                    sample.planes_mcells,
                    sample.generic_mcells,
                    sample.speedup(),
                );
                samples.push(sample);
            }
        }
    }

    let doc = render(&samples, mode, rounds);
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path} ({} grid points)", samples.len());
}
