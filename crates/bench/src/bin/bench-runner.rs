//! The perf-trajectory recorder: measures band-parallel plane-lane and
//! generic-frontier throughput over a fixed (threads × torus kind × size
//! × palette) grid and writes the result as `BENCH_<pr>.json`.
//!
//! Unlike the Criterion benches (interactive, statistical), this binary
//! produces one machine-readable artefact per PR so throughput history is
//! diffable: `BENCH_6.json` recorded the single-threaded three-lane
//! baseline, `BENCH_7.json` adds the threads axis — every grid point
//! is measured at `threads=1` and `threads=auto`, so the artefact
//! captures both the lane speedup over the generic frontier and the
//! intra-run thread scaling (`self_speedup`) — `BENCH_9.json` embeds
//! a `telemetry` object distilled from a short `LocalExecutor` workload:
//! queue-wait and run-time quantiles from the pool's latency histograms
//! plus the dense/sparse band ratio and cell throughput from the step
//! profile, so the artefact records latency alongside throughput — and
//! `BENCH_10.json` adds a `fleet` object: the same cache-cold sweep
//! timed through a one-backend and a three-backend [`FleetExecutor`]
//! (single-worker embedded servers, so backends are the only
//! parallelism), recording the fan-out speedup.  CI re-emits a
//! quick-mode file on every push to catch silent regressions (Mcell/s
//! must stay positive and the grid complete; absolute numbers are
//! informational because runner hardware varies).
//!
//! ```text
//! bench-runner [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the grid to 128×128 with fewer rounds (CI smoke);
//! the default full grid is 1024² and 4096² so the cache-tiled traversal
//! is exercised on a torus that does not fit in L2.  Every measurement
//! checks lane equivalence (identical snapshots after the timed rounds)
//! before recording, so the artefact cannot contain numbers from a
//! diverged kernel.
//!
//! With `CTORI_BENCH_ASSERT_SPEEDUP=1` the run *asserts* the headline
//! ratios (≥ 3× self-speedup on 4096² k=3 with ≥ 8 effective threads;
//! ≥ 8× over the generic frontier on 1024² k=8 single-threaded; ≥ 2×
//! fleet fan-out with three backends on a ≥ 3-core machine); without
//! it, shortfalls are warnings, because CI and laptop hardware vary.

use ctori_bench::multicolor_scatter;
use ctori_coloring::Color;
use ctori_engine::{
    default_threads, Executor, LocalExecutor, LocalExecutorConfig, RuleSpec, RunSpec, SeedSpec,
    Simulator, SubmitOptions, TopologySpec,
};
use ctori_fleet::{FleetConfig, FleetExecutor};
use ctori_protocols::ThresholdRule;
use ctori_service::{SchedulerConfig, Server, ServiceClient, ServiceConfig};
use ctori_topology::{Torus, TorusKind};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// The PR number this artefact belongs to (the perf-trajectory index).
const PR: u32 = 10;

/// One measured grid point: the plane lane at one thread setting against
/// the single-threaded generic frontier on the same workload.
struct Sample {
    kind: TorusKind,
    size: usize,
    palette: u16,
    /// `"1"` or `"auto"` — the spec-level thread setting.
    threads_mode: &'static str,
    /// The step-thread count the mode resolved to on this machine.
    effective_threads: usize,
    planes_mcells: f64,
    generic_mcells: f64,
    /// Plane lane at this thread setting vs plane lane at `threads=1`.
    self_speedup: f64,
}

impl Sample {
    fn speedup_vs_generic(&self) -> f64 {
        self.planes_mcells / self.generic_mcells
    }
}

/// The registry name of a torus kind (`toroidal-mesh`, …).
fn kind_key(kind: TorusKind) -> &'static str {
    match kind {
        TorusKind::ToroidalMesh => "toroidal-mesh",
        TorusKind::TorusCordalis => "torus-cordalis",
        TorusKind::TorusSerpentinus => "torus-serpentinus",
        other => unreachable!("unknown torus kind {other:?}"),
    }
}

/// Times `rounds` synchronous rounds from the cold post-construction
/// state and returns Mcell/s.  No untimed warm round: each lane pays its
/// own first-round setup (frontier seeding, the plane lane's full first
/// sweep), so the figure is the end-to-end cost of advancing the workload
/// `rounds` rounds.
fn time_lane(mut sim: Simulator<ThresholdRule>, rounds: u32, cells: usize) -> (f64, Vec<Color>) {
    let start = Instant::now();
    for _ in 0..rounds {
        black_box(sim.step());
    }
    let elapsed = start.elapsed();
    let mcells = cells as f64 * f64::from(rounds) / elapsed.as_secs_f64() / 1e6;
    (mcells, sim.snapshot())
}

/// Measures one (kind, size, palette) workload at both thread settings:
/// the generic frontier once (always sequential — the lane baseline),
/// the plane lane at `threads=1`, and the plane lane at `threads=auto`.
/// Exact-equivalence checks gate every recorded number.
fn measure(kind: TorusKind, size: usize, palette: u16, rounds: u32) -> Vec<Sample> {
    let torus = Torus::new(kind, size, size);
    let cells = size * size;
    // Threshold-2 activation of the highest palette colour over a dense
    // uniform scatter: nearly every vertex stays a flip candidate for the
    // whole measurement, the same workload as `bench_planes`.
    let rule = ThresholdRule::new(Color::new(palette), 2);
    let coloring = multicolor_scatter(&torus, palette, 0x6 + cells as u64);
    let auto_threads = default_threads().max(1);

    let planes_sim = Simulator::new(&torus, rule, coloring.clone());
    assert!(
        planes_sim.uses_plane_lane(),
        "{} {size}x{size} k={palette}: plane lane not selected",
        kind_key(kind)
    );
    let (planes_seq_mcells, planes_snap) = time_lane(planes_sim, rounds, cells);

    let planes_auto =
        Simulator::new(&torus, rule, coloring.clone()).with_step_threads(auto_threads);
    let (planes_auto_mcells, auto_snap) = time_lane(planes_auto, rounds, cells);

    let generic_sim = Simulator::new(&torus, rule, coloring).with_generic_lane();
    let (generic_mcells, generic_snap) = time_lane(generic_sim, rounds, cells);

    assert_eq!(
        planes_snap,
        generic_snap,
        "{} {size}x{size} k={palette}: lanes diverged",
        kind_key(kind)
    );
    assert_eq!(
        auto_snap,
        planes_snap,
        "{} {size}x{size} k={palette}: band-parallel stepping diverged",
        kind_key(kind)
    );
    vec![
        Sample {
            kind,
            size,
            palette,
            threads_mode: "1",
            effective_threads: 1,
            planes_mcells: planes_seq_mcells,
            generic_mcells,
            self_speedup: 1.0,
        },
        Sample {
            kind,
            size,
            palette,
            threads_mode: "auto",
            effective_threads: auto_threads,
            planes_mcells: planes_auto_mcells,
            generic_mcells,
            self_speedup: planes_auto_mcells / planes_seq_mcells,
        },
    ]
}

/// Executor-level telemetry distilled from a short pool-driven workload
/// — the same instruments the wire `METRICS` verb exposes, sampled here
/// so the artefact records latency alongside throughput.
struct TelemetryProbe {
    jobs: u64,
    queue_wait_us_p50: u64,
    queue_wait_us_p99: u64,
    job_run_us_p50: u64,
    job_run_us_p99: u64,
    cells_per_sec: f64,
    dense_band_ratio: f64,
}

/// Runs a small threshold-growth sweep through a [`LocalExecutor`] and
/// reads the pool's telemetry registry plus the jobs' step profiles.
fn probe_telemetry(quick: bool) -> TelemetryProbe {
    let size = if quick { 48 } else { 256 };
    let jobs = 6usize;
    let pool = LocalExecutor::start(LocalExecutorConfig::default());
    let specs: Vec<RunSpec> = (0..jobs)
        .map(|n| {
            RunSpec::new(
                TopologySpec::toroidal_mesh(size, size),
                RuleSpec::parse("threshold(2,1)").expect("registry rule"),
                SeedSpec::nodes(Color::new(2), Color::new(1), [n]),
            )
        })
        .collect();
    let handles = pool
        .submit_sweep(&specs, SubmitOptions::default())
        .expect("pool admits the probe sweep");
    let (mut cells, mut nanos, mut dense, mut sparse) = (0u64, 0u64, 0u64, 0u64);
    for mut handle in handles {
        let outcome = handle.wait().expect("probe job finishes");
        let stats = outcome.round_stats.expect("fresh run records stats");
        cells += stats.cells_evaluated;
        nanos += stats.nanos;
        dense += stats.dense_bands;
        sparse += stats.sparse_bands;
    }
    let registry = pool.telemetry();
    pool.drain();
    let snapshot = registry.snapshot();
    let wait = snapshot
        .histogram("exec.queue.wait-us")
        .expect("queue-wait histogram")
        .clone();
    let run = snapshot
        .histogram("exec.job.run-us")
        .expect("run-time histogram")
        .clone();
    assert_eq!(wait.count, jobs as u64, "every job recorded a queue wait");
    TelemetryProbe {
        jobs: snapshot
            .counter("exec.jobs.submitted")
            .expect("submission counter"),
        queue_wait_us_p50: wait.quantile(0.5),
        queue_wait_us_p99: wait.quantile(0.99),
        job_run_us_p50: run.quantile(0.5),
        job_run_us_p99: run.quantile(0.99),
        cells_per_sec: if nanos == 0 {
            0.0
        } else {
            cells as f64 / (nanos as f64 / 1e9)
        },
        dense_band_ratio: if dense + sparse == 0 {
            0.0
        } else {
            dense as f64 / (dense + sparse) as f64
        },
    }
}

/// The fleet fan-out axis: one cache-cold sweep timed through a
/// one-backend and a three-backend fleet.
struct FleetProbe {
    jobs: u64,
    one_backend_secs: f64,
    three_backend_secs: f64,
    /// `one_backend_secs / three_backend_secs`.
    speedup: f64,
}

/// Times a cache-cold sweep of `specs` through a fleet of `backends`
/// embedded single-worker servers, so the backend count is the only
/// source of parallelism.  Fresh servers per arm keep every run cold.
fn run_fleet_arm(backends: usize, specs: &[RunSpec]) -> f64 {
    let mut addrs = Vec::new();
    let mut servers = Vec::new();
    for _ in 0..backends {
        let server = Server::bind(ServiceConfig {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig {
                workers: 1,
                queue_capacity: specs.len().max(16),
                cache_capacity: specs.len().max(16),
                ..SchedulerConfig::default()
            },
        })
        .expect("bind embedded backend");
        addrs.push(server.local_addr().expect("local addr").to_string());
        servers.push(std::thread::spawn(move || server.serve()));
    }
    let fleet =
        FleetExecutor::connect(FleetConfig::new(addrs.iter().cloned())).expect("connect fleet");
    let start = Instant::now();
    let handles = fleet
        .submit_sweep(specs, SubmitOptions::default())
        .expect("fleet admits the sweep");
    for mut handle in handles {
        black_box(handle.wait().expect("fleet job finishes"));
    }
    let secs = start.elapsed().as_secs_f64();
    fleet.drain();
    for addr in &addrs {
        ServiceClient::connect(addr.as_str())
            .expect("connect for shutdown")
            .shutdown()
            .expect("backend shutdown");
    }
    for server in servers {
        server.join().expect("server thread").expect("server exit");
    }
    secs
}

/// Measures the fleet fan-out speedup on a sweep of distinct
/// threshold-growth runs (distinct seeds, so neither arm ever hits a
/// result cache).  The ≥ 2× gate is hard only under
/// `CTORI_BENCH_ASSERT_SPEEDUP` and only when the machine has the three
/// cores the backends need.
fn probe_fleet(quick: bool) -> FleetProbe {
    // Sized so one job runs for tens of milliseconds in release mode —
    // far above the fleet's 10ms completion-poll granularity, so the
    // measured ratio reflects fan-out, not polling overhead.
    let (size, jobs) = if quick { (768, 6) } else { (1024, 12) };
    let specs: Vec<RunSpec> = (0..jobs)
        .map(|n| {
            RunSpec::new(
                TopologySpec::toroidal_mesh(size, size),
                RuleSpec::parse("threshold(2,1)").expect("registry rule"),
                SeedSpec::nodes(Color::new(2), Color::new(1), [n]),
            )
            // One step thread per job: otherwise every job saturates the
            // machine on its own and backend fan-out only adds contention.
            .with_options(ctori_engine::EngineOptions::default().with_threads(1))
        })
        .collect();
    let one = run_fleet_arm(1, &specs);
    let three = run_fleet_arm(3, &specs);
    let speedup = one / three;
    if speedup < 2.0 {
        let complaint = format!(
            "fleet fan-out: {jobs} jobs {size}x{size}, 1 backend {one:.2}s vs \
             3 backends {three:.2}s = {speedup:.2}x < 2x"
        );
        if std::env::var("CTORI_BENCH_ASSERT_SPEEDUP").is_ok() && default_threads() >= 3 {
            panic!("headline perf gate failed: {complaint}");
        }
        eprintln!("warning: {complaint}");
    }
    FleetProbe {
        jobs: jobs as u64,
        one_backend_secs: one,
        three_backend_secs: three,
        speedup,
    }
}

/// Renders the samples as the `BENCH_<pr>.json` document.
fn render(
    samples: &[Sample],
    telemetry: &TelemetryProbe,
    fleet: &FleetProbe,
    mode: &str,
    rounds: u32,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"parallel_planes\",");
    let _ = writeln!(out, "  \"pr\": {PR},");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"rule\": \"threshold(palette,2)\",");
    let _ = writeln!(out, "  \"rounds\": {rounds},");
    let _ = writeln!(out, "  \"unit\": \"Mcell/s\",");
    out.push_str("  \"telemetry\": {\n");
    let _ = writeln!(out, "    \"jobs\": {},", telemetry.jobs);
    let _ = writeln!(
        out,
        "    \"queue_wait_us_p50\": {},",
        telemetry.queue_wait_us_p50
    );
    let _ = writeln!(
        out,
        "    \"queue_wait_us_p99\": {},",
        telemetry.queue_wait_us_p99
    );
    let _ = writeln!(out, "    \"job_run_us_p50\": {},", telemetry.job_run_us_p50);
    let _ = writeln!(out, "    \"job_run_us_p99\": {},", telemetry.job_run_us_p99);
    let _ = writeln!(
        out,
        "    \"cells_per_sec\": {:.0},",
        telemetry.cells_per_sec
    );
    let _ = writeln!(
        out,
        "    \"dense_band_ratio\": {:.3}",
        telemetry.dense_band_ratio
    );
    out.push_str("  },\n");
    out.push_str("  \"fleet\": {\n");
    let _ = writeln!(out, "    \"jobs\": {},", fleet.jobs);
    let _ = writeln!(
        out,
        "    \"one_backend_secs\": {:.3},",
        fleet.one_backend_secs
    );
    let _ = writeln!(
        out,
        "    \"three_backend_secs\": {:.3},",
        fleet.three_backend_secs
    );
    let _ = writeln!(out, "    \"speedup\": {:.2}", fleet.speedup);
    out.push_str("  },\n");
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kind\": \"{}\", \"size\": {}, \"palette\": {}, \
             \"threads\": \"{}\", \"effective_threads\": {}, \
             \"planes_mcells\": {:.1}, \"generic_mcells\": {:.1}, \
             \"speedup\": {:.1}, \"self_speedup\": {:.2}}}",
            kind_key(s.kind),
            s.size,
            s.palette,
            s.threads_mode,
            s.effective_threads,
            s.planes_mcells,
            s.generic_mcells,
            s.speedup_vs_generic(),
            s.self_speedup,
        );
        out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The headline perf gates.  Hard assertions only under
/// `CTORI_BENCH_ASSERT_SPEEDUP` (and, for the scaling gate, only when
/// the machine actually has the threads); warnings otherwise.
fn check_headlines(samples: &[Sample]) {
    let assert_hard = std::env::var("CTORI_BENCH_ASSERT_SPEEDUP").is_ok();
    let mut complaints = Vec::new();
    for s in samples {
        // ≥ 3× self-speedup on the 4096² k=3 auto row, when ≥ 8 threads
        // were actually available to scale across.
        if s.size == 4096 && s.palette == 3 && s.threads_mode == "auto" {
            if s.effective_threads >= 8 && s.self_speedup < 3.0 {
                complaints.push(format!(
                    "{} 4096x4096 k=3: self-speedup {:.2}x < 3x at {} threads",
                    kind_key(s.kind),
                    s.self_speedup,
                    s.effective_threads
                ));
            } else if s.effective_threads < 8 {
                eprintln!(
                    "note: {} 4096x4096 k=3 scaling gate skipped \
                     ({} effective threads < 8 on this machine)",
                    kind_key(s.kind),
                    s.effective_threads
                );
            }
        }
        // ≥ 8× over the generic frontier on 1024² k=8, single-threaded —
        // the PR-6 plane-lane headline must not regress.
        if s.size == 1024 && s.palette == 8 && s.threads_mode == "1" && s.speedup_vs_generic() < 8.0
        {
            complaints.push(format!(
                "{} 1024x1024 k=8: {:.1}x over generic < 8x single-threaded",
                kind_key(s.kind),
                s.speedup_vs_generic()
            ));
        }
    }
    for complaint in &complaints {
        if assert_hard {
            panic!("headline perf gate failed: {complaint}");
        }
        eprintln!("warning: {complaint}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("BENCH_{PR}.json"));

    let (sizes, rounds, mode): (&[usize], u32, &str) = if quick {
        (&[128], 4, "quick")
    } else {
        (&[1024, 4096], 8, "full")
    };
    let palettes: &[u16] = &[3, 8];

    let mut samples = Vec::new();
    for kind in TorusKind::ALL {
        for &size in sizes {
            for &palette in palettes {
                for sample in measure(kind, size, palette, rounds) {
                    eprintln!(
                        "{:<18} {size:>4}x{size:<4} k={palette} threads={:<4} (={}) : \
                         planes {:>8.1} Mcell/s, generic {:>7.1} Mcell/s, \
                         {:>5.1}x vs generic, {:>4.2}x self",
                        kind_key(sample.kind),
                        sample.threads_mode,
                        sample.effective_threads,
                        sample.planes_mcells,
                        sample.generic_mcells,
                        sample.speedup_vs_generic(),
                        sample.self_speedup,
                    );
                    samples.push(sample);
                }
            }
        }
    }

    check_headlines(&samples);
    let telemetry = probe_telemetry(quick);
    eprintln!(
        "telemetry probe: {} jobs, queue-wait p50/p99 {}us/{}us, \
         run p50/p99 {}us/{}us, {:.1} Mcell/s, dense ratio {:.3}",
        telemetry.jobs,
        telemetry.queue_wait_us_p50,
        telemetry.queue_wait_us_p99,
        telemetry.job_run_us_p50,
        telemetry.job_run_us_p99,
        telemetry.cells_per_sec / 1e6,
        telemetry.dense_band_ratio,
    );
    let fleet = probe_fleet(quick);
    eprintln!(
        "fleet probe: {} jobs, 1 backend {:.2}s, 3 backends {:.2}s, {:.2}x fan-out",
        fleet.jobs, fleet.one_backend_secs, fleet.three_backend_secs, fleet.speedup,
    );
    let doc = render(&samples, &telemetry, &fleet, mode, rounds);
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path} ({} grid points)", samples.len());
}
