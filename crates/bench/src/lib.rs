//! Shared helpers for the Criterion benchmark harness.
//!
//! Every benchmark group regenerates one of the paper's artefacts (a
//! figure, a theorem's sweep, or a baseline comparison); the helpers here
//! keep the individual bench files small and consistent.

#![deny(unsafe_code)]

use ctori_coloring::{Color, Coloring, ColoringBuilder};
use ctori_core::construct::{minimum_dynamo, ConstructedDynamo};
use ctori_core::dynamo::verify_dynamo;
use ctori_topology::{Torus, TorusKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The target colour used by every benchmark.
pub fn target_color() -> Color {
    Color::new(1)
}

/// Builds the minimum-dynamo construction for a torus kind and size,
/// panicking with a readable message on failure (benchmark setup only).
pub fn build_construction(kind: TorusKind, m: usize, n: usize) -> ConstructedDynamo {
    minimum_dynamo(kind, m, n, target_color())
        .unwrap_or_else(|e| panic!("benchmark setup: construction failed for {kind} {m}x{n}: {e}"))
}

/// Runs a construction to convergence and returns the number of rounds,
/// asserting that it really is a monotone dynamo (so a broken build fails
/// loudly instead of producing meaningless timings).
pub fn rounds_to_monochromatic(built: &ConstructedDynamo) -> usize {
    let report = verify_dynamo(built.torus(), built.coloring(), built.k());
    assert!(
        report.is_monotone_dynamo(),
        "benchmark setup: construction is not a monotone dynamo"
    );
    report.rounds
}

/// An "absorbing patch" workload: the torus is entirely the target colour
/// except for a small square patch of pairwise-distinct colours; used for
/// engine-throughput benchmarks because the work per round is predictable.
pub fn absorbing_patch(torus: &Torus, patch: usize) -> Coloring {
    let k = target_color();
    let mut builder = ColoringBuilder::filled(torus, k);
    let mut next = 2u16;
    for i in 0..patch.min(torus.rows().saturating_sub(1)) {
        for j in 0..patch.min(torus.cols().saturating_sub(1)) {
            builder = builder.cell(1 + i, 1 + j, Color::new(next));
            next += 1;
        }
    }
    builder.build()
}

/// A reproducible uniform scatter over palette `1..=palette`: every vertex
/// draws its colour independently.  This is the dense-activity workload of
/// the multi-colour lane benchmarks — under a threshold or plurality rule
/// almost every vertex is a flip candidate for many rounds, so the
/// comparison measures raw per-round evaluation throughput rather than
/// frontier bookkeeping.
pub fn multicolor_scatter(torus: &Torus, palette: u16, seed: u64) -> Coloring {
    assert!(palette >= 2, "a scatter needs at least two colours");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = ColoringBuilder::filled(torus, Color::new(1));
    for r in 0..torus.rows() {
        for c in 0..torus.cols() {
            builder = builder.cell(r, c, Color::new(rng.gen_range(1..=palette)));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_valid_workloads() {
        let built = build_construction(TorusKind::ToroidalMesh, 6, 6);
        assert_eq!(built.seed_size(), 10);
        assert!(rounds_to_monochromatic(&built) >= 1);

        let torus = ctori_topology::toroidal_mesh(8, 8);
        let patch = absorbing_patch(&torus, 3);
        assert_eq!(patch.count(target_color()), 64 - 9);

        let scatter = multicolor_scatter(&torus, 3, 42);
        let total: usize = (1..=3).map(|c| scatter.count(Color::new(c))).sum();
        assert_eq!(total, 64, "every vertex draws from the palette");
        assert_eq!(
            scatter,
            multicolor_scatter(&torus, 3, 42),
            "the scatter is reproducible"
        );
    }
}
