//! End-to-end fleet behaviour over real loopback backends: the
//! acceptance criteria of the fleet layer.
//!
//! - **Cache-preserving routing**: identical specs resubmitted under
//!   stable membership land on the same backend and are served from its
//!   result cache (asserted via the aggregated STATS hit counters).
//! - **Failure survival**: one of three backends killed mid-sweep, the
//!   sweep still completes with outcomes equal to a single-threaded
//!   reference run, and the fleet metrics record the eviction and the
//!   reroutes.
//! - **Work stealing**: a sweep job queued behind a long run on a busy
//!   backend is re-dispatched to an idle one.

use ctori_coloring::Color;
use ctori_engine::{Executor, RuleSpec, RunSpec, Runner, SeedSpec, SubmitOptions, TopologySpec};
use ctori_fleet::{FleetConfig, FleetExecutor};
use ctori_service::{SchedulerConfig, Server, ServiceClient, ServiceConfig, ServiceStats};
use std::time::Duration;

type ServerHandle = std::thread::JoinHandle<std::io::Result<ServiceStats>>;

fn start_server(workers: usize) -> (String, ServerHandle) {
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: SchedulerConfig {
            workers,
            queue_capacity: 128,
            cache_capacity: 64,
            ..SchedulerConfig::default()
        },
    })
    .expect("bind ephemeral loopback port");
    let addr = server.local_addr().expect("local addr").to_string();
    #[allow(clippy::disallowed_methods)]
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

/// A quick deterministic spec, distinct per `salt`.
fn quick_spec(salt: u64) -> RunSpec {
    RunSpec::new(
        TopologySpec::toroidal_mesh(12, 12),
        RuleSpec::parse("smp").expect("registry rule"),
        SeedSpec::Density {
            color: Color::new(1),
            palette: 3,
            fraction: 0.4,
            rng_seed: salt,
        },
    )
}

/// A long-running spec: threshold-1 growth floods the torus row by row,
/// so the run spans ~2·n rounds of genuine work.
fn slow_spec(n: usize) -> RunSpec {
    RunSpec::new(
        TopologySpec::toroidal_mesh(n, n),
        RuleSpec::parse("threshold(2,1)").expect("registry rule"),
        SeedSpec::nodes(Color::new(2), Color::new(1), [0usize]),
    )
}

#[test]
fn identical_specs_route_to_the_same_backend_and_hit_its_cache() {
    let (addrs, servers): (Vec<String>, Vec<ServerHandle>) =
        (0..3).map(|_| start_server(2)).unzip();
    let fleet = FleetExecutor::connect(FleetConfig::new(addrs.iter().cloned())).expect("fleet");

    let spec = quick_spec(42);
    let reference = Runner::with_threads(1).execute(&spec);
    let mut first = fleet
        .submit(&spec, SubmitOptions::default())
        .expect("submit");
    assert_eq!(*first.wait().expect("first run"), reference);
    let mut second = fleet
        .submit(&spec, SubmitOptions::default())
        .expect("resubmit");
    assert_eq!(*second.wait().expect("second run"), reference);

    let stats = fleet.stats();
    // Consistent hashing sent both submissions to one backend…
    let loaded: Vec<&u64> = stats.local.jobs_routed.iter().filter(|&&n| n > 0).collect();
    assert_eq!(loaded, vec![&2], "both submissions routed to one backend");
    // …and the second was served from that backend's result cache.
    assert_eq!(stats.aggregate.cache.misses, 1, "{:?}", stats.local);
    assert_eq!(stats.aggregate.cache.hits, 1, "{:?}", stats.local);
    assert_eq!(stats.aggregate.done, 2);

    fleet.drain();
    for (addr, server) in addrs.iter().zip(servers) {
        ServiceClient::connect(addr.as_str())
            .expect("connect for shutdown")
            .shutdown()
            .expect("shutdown");
        server.join().expect("server thread").expect("serve");
    }
}

#[test]
fn killing_one_of_three_backends_mid_sweep_is_survived() {
    let (addrs, servers): (Vec<String>, Vec<ServerHandle>) =
        (0..3).map(|_| start_server(1)).unzip();
    let mut config = FleetConfig::new(addrs.iter().cloned());
    // Aggressive detection so the test converges quickly.
    config.probe_interval = Duration::from_millis(50);
    config.probe_timeout = Duration::from_millis(250);
    config.failure_threshold = 1;
    config.request_timeout = Duration::from_millis(500);
    // Stealing is exercised by its own test; keep it quiet here.
    config.steal_patience = Duration::from_secs(30);
    let fleet = FleetExecutor::connect(config).expect("fleet");

    let grid: Vec<RunSpec> = (0..9).map(quick_spec).collect();
    let reference: Vec<_> = grid
        .iter()
        .map(|s| Runner::with_threads(1).execute(s))
        .collect();
    let handles = fleet
        .submit_sweep(&grid, SubmitOptions::default())
        .expect("sweep admitted");

    // Kill the middle backend before any result is fetched: its chunk's
    // results become unreachable, so those handles must re-route.
    ServiceClient::connect(addrs[1].as_str())
        .expect("connect for kill")
        .shutdown()
        .expect("shutdown");

    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|mut h| (*h.wait().expect("job survives the kill")).clone())
        .collect();
    assert_eq!(
        outcomes, reference,
        "every grid point completes with the single-backend reference outcome"
    );

    let local = fleet.local();
    assert!(local.evictions >= 1, "the kill was recorded: {local:?}");
    assert!(local.reroutes >= 1, "orphaned jobs re-routed: {local:?}");
    assert!(
        local.jobs_routed[0] + local.jobs_routed[2] >= local.reroutes,
        "re-routed work landed on the survivors: {local:?}"
    );
    assert_eq!(fleet.healthy_backends(), 2, "{local:?}");

    // The merged telemetry exposes the same counters.
    let metrics = fleet.metrics();
    assert!(metrics.counter("fleet.evictions").unwrap_or(0) >= 1);
    assert!(metrics.counter("fleet.reroutes").unwrap_or(0) >= 1);
    assert_eq!(metrics.gauge("fleet.backends.healthy"), Some(2));

    fleet.drain();
    for (index, (addr, server)) in addrs.iter().zip(servers).enumerate() {
        if index != 1 {
            ServiceClient::connect(addr.as_str())
                .expect("connect for shutdown")
                .shutdown()
                .expect("shutdown");
        }
        server.join().expect("server thread").expect("serve");
    }
}

#[test]
fn a_lagging_backend_is_stolen_from() {
    let (addrs, servers): (Vec<String>, Vec<ServerHandle>) =
        (0..2).map(|_| start_server(1)).unzip();
    let mut config = FleetConfig::new(addrs.iter().cloned());
    config.steal_patience = Duration::from_millis(10);
    let fleet = FleetExecutor::connect(config).expect("fleet");

    // Equal idle hints split 3 specs [2, 1]: the first backend gets two
    // long runs back to back, the second one quick run.  The long runs
    // take hundreds of milliseconds each (threshold growth sweeps the
    // whole torus once per round), so the second sits queued far longer
    // than the steal patience.
    let grid = vec![slow_spec(512), slow_spec(576), quick_spec(7)];
    let reference: Vec<_> = grid
        .iter()
        .map(|s| Runner::with_threads(1).execute(s))
        .collect();
    let mut handles = fleet
        .submit_sweep(&grid, SubmitOptions::default())
        .expect("sweep admitted");

    // Finish the idle backend's share first so its pending count drops
    // to zero — that is what makes it a legal steal target.
    let quick = handles.pop().expect("three handles");
    let mut outcomes = vec![None, None, None];
    let mut wait = |index: usize, mut handle: ctori_engine::JobHandle| {
        outcomes[index] = Some((*handle.wait().expect("job finishes")).clone());
    };
    wait(2, quick);
    // The second slow run is queued behind the first on the busy
    // backend; after the patience window its handle re-dispatches it to
    // the now-idle backend.
    for (index, handle) in handles.into_iter().enumerate().rev() {
        wait(index, handle);
    }
    let outcomes: Vec<_> = outcomes
        .into_iter()
        .map(|o| o.expect("all waited"))
        .collect();
    assert_eq!(outcomes, reference, "stolen runs still agree");

    let local = fleet.local();
    assert!(local.steals >= 1, "the lagging tail was stolen: {local:?}");

    fleet.drain();
    for (addr, server) in addrs.iter().zip(servers) {
        ServiceClient::connect(addr.as_str())
            .expect("connect for shutdown")
            .shutdown()
            .expect("shutdown");
        server.join().expect("server thread").expect("serve");
    }
}
