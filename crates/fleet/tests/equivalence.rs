//! The PR-5 equivalence property, extended to the fleet: the **same
//! spec driven through `LocalExecutor`, `RemoteExecutor`, and a
//! single-backend `FleetExecutor` yields equal `RunOutcome`s** — adding
//! a routing layer on top of the service must be invisible to callers.
//!
//! One embedded server is shared by the remote executor and the fleet
//! (a one-backend fleet routes every key to it); outcomes are also
//! compared against a plain blocking `Runner::execute` as ground truth.

use ctori_coloring::Color;
use ctori_engine::spec::PatternSpec;
use ctori_engine::{
    EngineOptions, Executor, JobHandle, LaneSpec, LocalExecutor, LocalExecutorConfig, RuleSpec,
    RunOutcome, RunSpec, Runner, SeedSpec, SubmitOptions, TopologySpec,
};
use ctori_fleet::{FleetConfig, FleetExecutor};
use ctori_service::{RemoteExecutor, SchedulerConfig, Server, ServiceConfig};
use ctori_topology::TorusKind;
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

struct Harness {
    local: LocalExecutor,
    remote: RemoteExecutor,
    fleet: FleetExecutor,
}

fn start_server(workers: usize) -> String {
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        scheduler: SchedulerConfig {
            workers,
            queue_capacity: 256,
            cache_capacity: 64,
            ..SchedulerConfig::default()
        },
    })
    .expect("bind ephemeral loopback port");
    let addr = server.local_addr().expect("local addr").to_string();
    // The server thread lives for the whole test process.
    #[allow(clippy::disallowed_methods)]
    std::thread::spawn(move || server.serve());
    addr
}

fn harness() -> &'static Harness {
    static HARNESS: OnceLock<Harness> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let addr = start_server(2);
        let mut config = FleetConfig::new([addr.clone()]);
        // Keep the probe quiet during the proptest run.
        config.probe_interval = Duration::from_millis(500);
        Harness {
            local: LocalExecutor::start(LocalExecutorConfig {
                workers: 2,
                ..LocalExecutorConfig::default()
            }),
            remote: RemoteExecutor::connect(addr.as_str()).expect("connect"),
            fleet: FleetExecutor::connect(config).expect("connect fleet"),
        }
    })
}

fn drive(exec: &dyn Executor, spec: &RunSpec) -> RunOutcome {
    let mut handle: JobHandle = exec
        .submit(spec, SubmitOptions::default())
        .expect("submit must be admitted");
    (*handle.wait().expect("job must finish")).clone()
}

fn torus_kind() -> impl Strategy<Value = TorusKind> {
    prop_oneof![
        Just(TorusKind::ToroidalMesh),
        Just(TorusKind::TorusCordalis),
        Just(TorusKind::TorusSerpentinus),
    ]
}

fn rule_text() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("smp"),
        Just("prefer-black"),
        Just("strong-majority"),
        Just("threshold(2,1)"),
        Just("irreversible-smp(2)"),
    ]
}

fn seed_spec(m: usize, n: usize) -> impl Strategy<Value = SeedSpec> {
    let c = Color::new;
    let nodes = proptest::collection::vec(0..(m * n) as u32, 0..8).prop_map(|mut nodes| {
        nodes.sort_unstable();
        nodes.dedup();
        SeedSpec::Nodes {
            color: Color::BLACK,
            background: Color::WHITE,
            nodes,
        }
    });
    let pattern = prop_oneof![
        Just(SeedSpec::Pattern(PatternSpec::Checkerboard(c(1), c(2)))),
        Just(SeedSpec::uniform(c(2))),
    ];
    let density =
        (0u64..1_000_000, 0u32..=100).prop_map(move |(rng_seed, percent)| SeedSpec::Density {
            color: c(1),
            palette: 4,
            fraction: f64::from(percent) / 100.0,
            rng_seed,
        });
    prop_oneof![nodes, pattern, density]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fleet_remote_and_local_backends_agree(
        kind in torus_kind(),
        m in 3usize..=7,
        n in 3usize..=7,
        rule in rule_text(),
        lane_full in any::<bool>(),
        seed in seed_spec(7, 7),
    ) {
        let seed = match seed {
            SeedSpec::Nodes { color, background, nodes } => SeedSpec::Nodes {
                color,
                background,
                nodes: nodes.into_iter().filter(|&v| (v as usize) < m * n).collect(),
            },
            other => other,
        };
        let mut options = EngineOptions::default();
        if lane_full {
            options = options.with_lane(LaneSpec::FullSweep);
        }
        let spec = RunSpec::new(
            TopologySpec::torus(kind, m, n),
            RuleSpec::parse(rule).unwrap(),
            seed,
        )
        .with_options(options);

        let harness = harness();
        let local = drive(&harness.local, &spec);
        let remote = drive(&harness.remote, &spec);
        let fleet = drive(&harness.fleet, &spec);

        prop_assert_eq!(&local, &remote, "local vs remote\n{}", spec.to_text());
        prop_assert_eq!(&local, &fleet, "local vs fleet\n{}", spec.to_text());
        let direct = Runner::with_threads(1).execute(&spec);
        prop_assert_eq!(&local, &direct, "executor must equal Runner::execute");
    }
}

/// Sweeps through a *three*-backend fleet: outcomes equal the local
/// pool's, pairwise and in spec order, even though the grid was split
/// across backends.
#[test]
fn fleet_sweeps_agree_with_local() {
    let grid: Vec<RunSpec> = TorusKind::ALL
        .into_iter()
        .flat_map(|kind| {
            [0.25f64, 0.6].into_iter().map(move |fraction| {
                RunSpec::new(
                    TopologySpec::torus(kind, 6, 6),
                    RuleSpec::parse("smp").unwrap(),
                    SeedSpec::Density {
                        color: Color::new(1),
                        palette: 4,
                        fraction,
                        rng_seed: 2011,
                    },
                )
            })
        })
        .collect();
    let addrs: Vec<String> = (0..3).map(|_| start_server(2)).collect();
    let fleet = FleetExecutor::connect(FleetConfig::new(addrs)).expect("connect fleet");
    let local = LocalExecutor::start(LocalExecutorConfig {
        workers: 2,
        ..LocalExecutorConfig::default()
    });
    let wait_all = |handles: Vec<JobHandle>| -> Vec<RunOutcome> {
        handles
            .into_iter()
            .map(|mut h| (*h.wait().expect("job must finish")).clone())
            .collect()
    };
    let fleet_outcomes = wait_all(fleet.submit_sweep(&grid, SubmitOptions::default()).unwrap());
    let local_outcomes = wait_all(local.submit_sweep(&grid, SubmitOptions::default()).unwrap());
    assert_eq!(fleet_outcomes, local_outcomes);
    for (spec, outcome) in grid.iter().zip(&fleet_outcomes) {
        assert_eq!(
            *outcome,
            Runner::with_threads(1).execute(spec),
            "order kept"
        );
    }
    let routed: u64 = fleet.local().jobs_routed.iter().sum();
    assert!(
        routed >= grid.len() as u64,
        "every grid point was routed (stealing may add more): {routed}"
    );
    fleet.drain();
    local.drain();
}
