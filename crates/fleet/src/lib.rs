//! Sharded multi-backend coordinator for the simulation service.
//!
//! One `ctori-serve` process is a hard ceiling on throughput and cache
//! capacity.  This crate scales horizontally: [`FleetExecutor`]
//! implements [`ctori_engine::Executor`] over **N** backends, so the
//! same caller code that drives a `LocalExecutor` or a single
//! `RemoteExecutor` drives a whole fleet.
//!
//! The three load-bearing mechanisms:
//!
//! - **Consistent-hash routing** ([`ring::HashRing`]): jobs are routed
//!   by `RunSpec::canonical_key()` over a hash ring with virtual nodes,
//!   so each backend's LRU result cache stays hot and disjoint, and a
//!   membership change only re-routes the keys that lived on the
//!   departed backend.
//! - **Health probing**: a background thread pings every backend with a
//!   lightweight `STATS` round trip; a failure-threshold run of misses
//!   evicts the backend from the ring, a later successful probe re-adds
//!   it.  In-flight jobs on a dead backend are resubmitted to the ring
//!   successor — resubmission is idempotent because jobs are
//!   content-addressed by spec key (a duplicate completion is a cache
//!   hit, not a bug).
//! - **Sweep fan-out with work stealing**: `submit_sweep` splits the
//!   grid across healthy backends proportional to their idle capacity,
//!   and handles that out-wait the configured patience re-dispatch
//!   their spec to a backend that has finished its own share.
//!
//! ```no_run
//! use ctori_engine::{Executor, RunSpec, SubmitOptions};
//! use ctori_fleet::{FleetConfig, FleetExecutor};
//!
//! let fleet = FleetExecutor::connect(FleetConfig::new([
//!     "127.0.0.1:7171",
//!     "127.0.0.1:7172",
//!     "127.0.0.1:7173",
//! ]))
//! .unwrap();
//! let spec = RunSpec::from_text(
//!     "topology: toroidal-mesh 64x64\nrule: smp\nseed: checkerboard 1 2\n",
//! )
//! .unwrap();
//! let mut handle = fleet.submit(&spec, SubmitOptions::default()).unwrap();
//! println!("{} rounds", handle.wait().unwrap().rounds);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod fleet;
pub mod ring;

pub use fleet::{BackendStats, FleetConfig, FleetExecutor, FleetLocal, FleetStats};
pub use ring::HashRing;
