//! Consistent-hash ring over backend slots.
//!
//! Each healthy backend contributes `virtual_nodes` points to a sorted
//! ring of 64-bit hashes; a spec key routes to the owner of the first
//! point at or clockwise-after the key's folded hash.  Virtual nodes
//! smooth the load split, and — the property the fleet's result caches
//! depend on — removing one backend only re-routes the keys that lived
//! on *its* points: every other key keeps its owner, so the surviving
//! backends' LRU caches stay hot across membership churn.

use ctori_engine::SpecKey;

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string, the same family the engine uses for
/// [`SpecKey`] itself (64-bit here — ring points don't need 128 bits).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV64_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV64_PRIME);
    }
    hash
}

/// Folds the engine's 128-bit spec key onto the 64-bit ring space.
fn fold(key: SpecKey) -> u64 {
    let k = key.as_u128();
    (k ^ (k >> 64)) as u64
}

/// A consistent-hash ring mapping [`SpecKey`]s to backend slot indices.
#[derive(Clone, Debug, Default)]
pub struct HashRing {
    /// Sorted `(point hash, slot index)` pairs.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds a ring from `(slot index, address)` members, each
    /// contributing `virtual_nodes` points derived from its address.
    pub fn build<'a>(
        members: impl IntoIterator<Item = (usize, &'a str)>,
        virtual_nodes: usize,
    ) -> HashRing {
        let mut points = Vec::new();
        for (slot, addr) in members {
            for v in 0..virtual_nodes.max(1) {
                let label = format!("{addr}#{v}");
                points.push((fnv1a64(label.as_bytes()), slot));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The slot index owning this key, or `None` on an empty ring.
    /// Deterministic: the same key on the same membership always routes
    /// to the same slot.
    pub fn route(&self, key: SpecKey) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let target = fold(key);
        let at = self.points.partition_point(|&(hash, _)| hash < target);
        let at = if at == self.points.len() { 0 } else { at };
        Some(self.points[at].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_engine::RunSpec;

    fn keys(n: usize) -> Vec<SpecKey> {
        (0..n)
            .map(|i| {
                RunSpec::from_text(&format!(
                    "topology: toroidal-mesh {}x{}\nrule: smp\nseed: checkerboard 1 2\n",
                    4 + i,
                    4 + i
                ))
                .unwrap()
                .canonical_key()
            })
            .collect()
    }

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:71{i:02}")).collect()
    }

    #[test]
    fn routing_is_deterministic() {
        let addrs = addrs(3);
        let members = || addrs.iter().enumerate().map(|(i, a)| (i, a.as_str()));
        let a = HashRing::build(members(), 64);
        let b = HashRing::build(members(), 64);
        for key in keys(40) {
            assert_eq!(a.route(key), b.route(key));
        }
    }

    #[test]
    fn removal_only_moves_the_departed_backends_keys() {
        let addrs = addrs(3);
        let full = HashRing::build(addrs.iter().enumerate().map(|(i, a)| (i, a.as_str())), 64);
        let without_1 = HashRing::build(
            addrs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 1)
                .map(|(i, a)| (i, a.as_str())),
            64,
        );
        for key in keys(60) {
            let before = full.route(key).unwrap();
            let after = without_1.route(key).unwrap();
            if before != 1 {
                assert_eq!(before, after, "a surviving backend kept its keys");
            } else {
                assert_ne!(after, 1, "orphaned keys moved to a survivor");
            }
        }
    }

    #[test]
    fn virtual_nodes_spread_the_load() {
        let addrs = addrs(3);
        let ring = HashRing::build(addrs.iter().enumerate().map(|(i, a)| (i, a.as_str())), 64);
        let mut per_slot = [0usize; 3];
        for key in keys(64) {
            per_slot[ring.route(key).unwrap()] += 1;
        }
        for (slot, count) in per_slot.iter().enumerate() {
            assert!(
                *count > 0,
                "slot {slot} owns no keys at all: {per_slot:?} — the split is degenerate"
            );
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::default();
        assert!(ring.is_empty());
        assert_eq!(ring.route(keys(1)[0]), None);
    }
}
