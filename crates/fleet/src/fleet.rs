//! The fleet coordinator: [`FleetExecutor`] and its configuration.
//!
//! See the [crate docs](crate) for the routing / probing / stealing
//! semantics.  Lock discipline: the membership table (`members`) and the
//! probe-thread handle (`probe`) are independent mutexes that are never
//! held together; every counter is a plain atomic so the hot submit
//! path holds `members` only long enough to read the ring.

use crate::ring::HashRing;
use ctori_engine::exec::{
    ExecError, Executor, JobControl, JobHandle, JobStatus, RunEvent, SubmitOptions,
};
use ctori_engine::telemetry::MetricValue;
use ctori_engine::{MetricsSnapshot, RunOutcome, RunSpec};
use ctori_service::{RemoteExecutor, ServiceClient, ServiceError, ServiceStats};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often a fleet handle re-probes its backend while waiting.
const FLEET_POLL: Duration = Duration::from_millis(10);

/// Static description of the fleet: where the backends are and how
/// aggressively to probe, evict, and steal.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Backend addresses (`host:port`), one `ctori-serve` each.
    pub addrs: Vec<String>,
    /// Ring points per backend; more points smooth the key split.
    pub virtual_nodes: usize,
    /// Pause between health-probe rounds.
    pub probe_interval: Duration,
    /// Connect + read deadline of one probe round trip.
    pub probe_timeout: Duration,
    /// Consecutive probe failures before a backend is evicted.
    pub failure_threshold: u32,
    /// How long a sweep handle waits on a busy backend before stealing
    /// capacity from an idle one.
    pub steal_patience: Duration,
    /// Connect deadline for the initial dial of each backend.
    pub connect_timeout: Duration,
    /// Read deadline on every backend round trip.  Fleet handles only
    /// ever issue quick non-blocking verbs (`try_result`, not
    /// server-side `RESULT wait`), so a reply that out-waits this is a
    /// wedged or draining backend — the deadline is what turns such a
    /// zombie into a routable [`ExecError::TimedOut`] instead of a hang.
    pub request_timeout: Duration,
}

impl FleetConfig {
    /// A config over the given backend addresses with default tuning.
    pub fn new(addrs: impl IntoIterator<Item = impl Into<String>>) -> FleetConfig {
        FleetConfig {
            addrs: addrs.into_iter().map(Into::into).collect(),
            virtual_nodes: 64,
            probe_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_millis(500),
            failure_threshold: 3,
            steal_patience: Duration::from_millis(250),
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(2),
        }
    }
}

/// One backend's seat in the membership table.
struct BackendSlot {
    addr: String,
    remote: Arc<RemoteExecutor>,
    healthy: bool,
    consecutive_failures: u32,
    /// Last probed idle capacity (`workers - running`, at least 1);
    /// drives the proportional sweep split.
    idle_hint: usize,
}

/// Membership table + the ring derived from its healthy rows.
struct Members {
    slots: Vec<BackendSlot>,
    ring: HashRing,
}

impl Members {
    fn rebuild_ring(&mut self, virtual_nodes: usize) {
        self.ring = HashRing::build(
            self.slots
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.healthy)
                .map(|(index, slot)| (index, slot.addr.as_str())),
            virtual_nodes,
        );
    }
}

/// Fleet-local counters (everything the backends cannot know).
struct Counters {
    routed: Vec<AtomicU64>,
    reroutes: AtomicU64,
    steals: AtomicU64,
    probe_failures: AtomicU64,
    evictions: AtomicU64,
    readds: AtomicU64,
}

impl Counters {
    fn new(backends: usize) -> Counters {
        Counters {
            routed: (0..backends).map(|_| AtomicU64::new(0)).collect(),
            reroutes: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            readds: AtomicU64::new(0),
        }
    }
}

/// State shared between the executor, its handles, and the probe thread.
struct Shared {
    members: Mutex<Members>,
    counters: Counters,
    stop: AtomicBool,
    config: FleetConfig,
}

impl Shared {
    /// Evicts a backend the moment a request path observed its
    /// connection die — no need to wait for the probe threshold; the
    /// probe loop re-adds it when it answers again.
    fn report_lost(&self, index: usize) {
        let mut members = self.members.lock().expect("fleet members poisoned");
        let slot = &mut members.slots[index];
        if slot.healthy {
            slot.healthy = false;
            slot.consecutive_failures = self.config.failure_threshold;
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            members.rebuild_ring(self.config.virtual_nodes);
        }
    }

    /// Routes a key on the current ring; `None` when no backend is
    /// healthy.
    fn route(&self, key: ctori_engine::SpecKey) -> Option<(usize, Arc<RemoteExecutor>)> {
        let members = self.members.lock().expect("fleet members poisoned");
        members
            .ring
            .route(key)
            .map(|index| (index, Arc::clone(&members.slots[index].remote)))
    }

    /// Submits one spec to its ring owner, evicting and re-routing past
    /// backends whose connection is gone.  Bounded by the fleet size, so
    /// a cascade of dead backends terminates in `no healthy backends`.
    fn dispatch(
        &self,
        spec: &RunSpec,
        options: SubmitOptions,
    ) -> Result<(usize, JobHandle), ExecError> {
        let key = spec.canonical_key();
        let attempts = self
            .members
            .lock()
            .expect("fleet members poisoned")
            .slots
            .len();
        for attempt in 0..=attempts {
            let Some((index, remote)) = self.route(key) else {
                break;
            };
            match remote.submit(spec, options) {
                Ok(handle) => {
                    if attempt > 0 {
                        self.counters.reroutes.fetch_add(1, Ordering::Relaxed);
                    }
                    self.counters.routed[index].fetch_add(1, Ordering::Relaxed);
                    return Ok((index, handle));
                }
                // A dead, wedged, or draining backend takes no new work:
                // evict it and let the loop route to the ring successor.
                Err(ExecError::BackendLost(_) | ExecError::TimedOut | ExecError::ShuttingDown) => {
                    self.report_lost(index)
                }
                Err(other) => return Err(other),
            }
        }
        Err(ExecError::Backend("no healthy backends".into()))
    }
}

/// A [`ctori_engine::Executor`] that shards jobs across many
/// `ctori-serve` backends.  See the [crate docs](crate).
///
/// Unlike the single-backend executors, a fleet sweep is **not** atomic
/// across the whole grid: each backend's chunk is admitted atomically,
/// but a failure mid-fan-out can leave earlier chunks admitted (their
/// handles are still returned inside the error-free case only; on error
/// the admitted jobs simply run to completion server-side and are
/// re-served from cache on resubmission).
pub struct FleetExecutor {
    shared: Arc<Shared>,
    probe: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl FleetExecutor {
    /// Dials every configured backend and starts the health-probe
    /// thread.  Fails if `addrs` is empty or any initial dial fails —
    /// a fleet that starts degraded is a config error, not a runtime
    /// condition.
    pub fn connect(config: FleetConfig) -> Result<FleetExecutor, ServiceError> {
        if config.addrs.is_empty() {
            return Err(ServiceError::Protocol(
                "fleet config lists no backend addresses".into(),
            ));
        }
        let mut slots = Vec::with_capacity(config.addrs.len());
        for addr in &config.addrs {
            let mut client = ServiceClient::connect_timeout(addr.as_str(), config.connect_timeout)?;
            client.set_read_timeout(Some(config.request_timeout))?;
            let remote = RemoteExecutor::new(client);
            let idle_hint = remote
                .stats()
                .map(|s| s.workers.saturating_sub(s.running))
                .unwrap_or(1)
                .max(1);
            slots.push(BackendSlot {
                addr: addr.clone(),
                remote: Arc::new(remote),
                healthy: true,
                consecutive_failures: 0,
                idle_hint,
            });
        }
        let mut members = Members {
            slots,
            ring: HashRing::default(),
        };
        members.rebuild_ring(config.virtual_nodes);
        let backends = config.addrs.len();
        let shared = Arc::new(Shared {
            members: Mutex::new(members),
            counters: Counters::new(backends),
            stop: AtomicBool::new(false),
            config,
        });
        let probe = spawn_probe(Arc::clone(&shared));
        Ok(FleetExecutor {
            shared,
            probe: Mutex::new(Some(probe)),
        })
    }

    /// Number of currently healthy backends.
    pub fn healthy_backends(&self) -> usize {
        let members = self.shared.members.lock().expect("fleet members poisoned");
        members.slots.iter().filter(|slot| slot.healthy).count()
    }

    /// Fleet-wide observability: per-backend [`ServiceStats`] (fetched
    /// live; `None` for unreachable backends), their aggregate, and the
    /// fleet-local counters.
    pub fn stats(&self) -> FleetStats {
        let snapshot: Vec<(String, bool, Arc<RemoteExecutor>)> = {
            let members = self.shared.members.lock().expect("fleet members poisoned");
            members
                .slots
                .iter()
                .map(|slot| (slot.addr.clone(), slot.healthy, Arc::clone(&slot.remote)))
                .collect()
        };
        let mut per_backend = Vec::with_capacity(snapshot.len());
        let mut aggregate = ServiceStats::default();
        for (addr, healthy, remote) in snapshot {
            let stats = remote.stats().ok();
            if let Some(s) = &stats {
                aggregate.workers += s.workers;
                aggregate.queued += s.queued;
                aggregate.running += s.running;
                aggregate.done += s.done;
                aggregate.failed += s.failed;
                aggregate.cancelled += s.cancelled;
                aggregate.jobs_submitted += s.jobs_submitted;
                aggregate.queue_depth_hwm = aggregate.queue_depth_hwm.max(s.queue_depth_hwm);
                aggregate.uptime_seconds = aggregate.uptime_seconds.max(s.uptime_seconds);
                aggregate.cache.hits += s.cache.hits;
                aggregate.cache.misses += s.cache.misses;
                aggregate.cache.evictions += s.cache.evictions;
                aggregate.cache.insertions += s.cache.insertions;
                aggregate.cache.entries += s.cache.entries;
                aggregate.cache.capacity += s.cache.capacity;
            }
            per_backend.push(BackendStats {
                addr,
                healthy,
                stats,
            });
        }
        FleetStats {
            per_backend,
            aggregate,
            local: self.local(),
        }
    }

    /// The fleet-local counters alone (no backend round trips).
    pub fn local(&self) -> FleetLocal {
        let c = &self.shared.counters;
        FleetLocal {
            jobs_routed: c.routed.iter().map(|n| n.load(Ordering::Relaxed)).collect(),
            reroutes: c.reroutes.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            probe_failures: c.probe_failures.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            readds: c.readds.load(Ordering::Relaxed),
        }
    }

    /// Merged telemetry of every reachable backend (the snapshots merge
    /// associatively: counters add, gauges max, histograms bucket-wise)
    /// plus the fleet's own counters under the `fleet.` namespace.
    pub fn metrics(&self) -> MetricsSnapshot {
        let remotes: Vec<Arc<RemoteExecutor>> = {
            let members = self.shared.members.lock().expect("fleet members poisoned");
            members
                .slots
                .iter()
                .map(|slot| Arc::clone(&slot.remote))
                .collect()
        };
        let mut merged = MetricsSnapshot::default();
        for remote in remotes {
            if let Ok(snapshot) = remote.metrics() {
                merged.merge(&snapshot);
            }
        }
        let local = self.local();
        merged.insert("fleet.reroutes", MetricValue::Counter(local.reroutes));
        merged.insert("fleet.steals", MetricValue::Counter(local.steals));
        merged.insert(
            "fleet.probe.failures",
            MetricValue::Counter(local.probe_failures),
        );
        merged.insert("fleet.evictions", MetricValue::Counter(local.evictions));
        merged.insert("fleet.readds", MetricValue::Counter(local.readds));
        merged.insert(
            "fleet.backends.healthy",
            MetricValue::Gauge(self.healthy_backends() as u64),
        );
        for (index, routed) in local.jobs_routed.iter().enumerate() {
            merged.insert(
                format!("fleet.routed.backend-{index}"),
                MetricValue::Counter(*routed),
            );
        }
        merged
    }
}

impl Executor for FleetExecutor {
    fn submit(&self, spec: &RunSpec, options: SubmitOptions) -> Result<JobHandle, ExecError> {
        let (backend, inner) = self.shared.dispatch(spec, options)?;
        Ok(JobHandle::new(Box::new(FleetJob::new(
            Arc::clone(&self.shared),
            spec.clone(),
            options,
            backend,
            inner,
            None,
        ))))
    }

    fn submit_sweep(
        &self,
        specs: &[RunSpec],
        options: SubmitOptions,
    ) -> Result<Vec<JobHandle>, ExecError> {
        if specs.is_empty() {
            return Err(ExecError::Backend("empty sweep".into()));
        }
        // Snapshot the healthy backends and their idle capacity; the
        // split is proportional to `idle_hint` so a busy backend gets a
        // smaller share of the grid up front (stealing mops up the rest).
        let plan: Vec<(usize, Arc<RemoteExecutor>, usize)> = {
            let members = self.shared.members.lock().expect("fleet members poisoned");
            members
                .slots
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.healthy)
                .map(|(index, slot)| (index, Arc::clone(&slot.remote), slot.idle_hint.max(1)))
                .collect()
        };
        if plan.is_empty() {
            return Err(ExecError::Backend("no healthy backends".into()));
        }
        let backends = self.shared.counters.routed.len();
        let total_idle: usize = plan.iter().map(|(_, _, idle)| idle).sum();
        let mut counts: Vec<usize> = plan
            .iter()
            .map(|(_, _, idle)| idle * specs.len() / total_idle)
            .collect();
        let assigned: usize = counts.iter().sum();
        let shares = counts.len();
        for extra in 0..specs.len() - assigned {
            counts[extra % shares] += 1;
        }
        let tracker = Arc::new(SweepTracker::new(backends));
        let mut placed: Vec<(RunSpec, usize, JobHandle)> = Vec::with_capacity(specs.len());
        let mut offset = 0;
        for ((index, remote, _), count) in plan.into_iter().zip(counts) {
            if count == 0 {
                continue;
            }
            let chunk = &specs[offset..offset + count];
            offset += count;
            match remote.submit_sweep(chunk, options) {
                Ok(handles) => {
                    tracker.add(index, count);
                    self.shared.counters.routed[index].fetch_add(count as u64, Ordering::Relaxed);
                    for (inner, spec) in handles.into_iter().zip(chunk) {
                        placed.push((spec.clone(), index, inner));
                    }
                }
                Err(ExecError::BackendLost(_) | ExecError::TimedOut | ExecError::ShuttingDown) => {
                    // The whole chunk moves: evict the backend and route
                    // each spec individually by its ring owner.
                    self.shared.report_lost(index);
                    for spec in chunk {
                        let (moved_to, inner) = self.shared.dispatch(spec, options)?;
                        self.shared
                            .counters
                            .reroutes
                            .fetch_add(1, Ordering::Relaxed);
                        tracker.add(moved_to, 1);
                        placed.push((spec.clone(), moved_to, inner));
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Ok(placed
            .into_iter()
            .map(|(spec, backend, inner)| {
                JobHandle::new(Box::new(FleetJob::new(
                    Arc::clone(&self.shared),
                    spec,
                    options,
                    backend,
                    inner,
                    Some(Arc::clone(&tracker)),
                )))
            })
            .collect())
    }

    fn drain(&self) {
        self.stop_probe();
        // Like `RemoteExecutor::drain`, this never shuts the backends
        // down — they are shared infrastructure and every admitted job
        // runs to completion server-side.
    }
}

impl FleetExecutor {
    fn stop_probe(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let handle = {
            let mut probe = self.probe.lock().expect("fleet probe poisoned");
            probe.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for FleetExecutor {
    fn drop(&mut self) {
        self.stop_probe();
    }
}

// ---------------------------------------------------------------------------
// Health probing
// ---------------------------------------------------------------------------

// Deliberate thread: the prober is the fleet's background heartbeat,
// joined by `drain` via the stop flag.
#[allow(clippy::disallowed_methods)]
fn spawn_probe(shared: Arc<Shared>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || probe_loop(&shared))
}

fn probe_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(shared.config.probe_interval);
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let targets: Vec<(usize, String)> = {
            let members = shared.members.lock().expect("fleet members poisoned");
            members
                .slots
                .iter()
                .enumerate()
                .map(|(index, slot)| (index, slot.addr.clone()))
                .collect()
        };
        for (index, addr) in targets {
            let outcome = probe_once(&addr, shared.config.probe_timeout);
            let mut members = shared.members.lock().expect("fleet members poisoned");
            let slot = &mut members.slots[index];
            match outcome {
                Ok(stats) => {
                    slot.consecutive_failures = 0;
                    slot.idle_hint = stats.workers.saturating_sub(stats.running).max(1);
                    if !slot.healthy {
                        slot.healthy = true;
                        shared.counters.readds.fetch_add(1, Ordering::Relaxed);
                        members.rebuild_ring(shared.config.virtual_nodes);
                    }
                }
                Err(_) => {
                    shared
                        .counters
                        .probe_failures
                        .fetch_add(1, Ordering::Relaxed);
                    slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
                    if slot.healthy && slot.consecutive_failures >= shared.config.failure_threshold
                    {
                        slot.healthy = false;
                        shared.counters.evictions.fetch_add(1, Ordering::Relaxed);
                        members.rebuild_ring(shared.config.virtual_nodes);
                    }
                }
            }
        }
    }
}

/// One probe: a fresh connection (so a wedged shared client cannot make
/// a live backend look dead) driving a single bounded `STATS` round trip.
fn probe_once(addr: &str, timeout: Duration) -> Result<ServiceStats, ServiceError> {
    let mut client = ServiceClient::connect_timeout(addr, timeout)?;
    client.set_read_timeout(Some(timeout))?;
    client.stats()
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// Per-sweep bookkeeping: how many grid points each backend still owes.
/// Drives stealing — a handle only steals toward a backend whose own
/// share is exhausted.
struct SweepTracker {
    pending: Vec<AtomicUsize>,
}

impl SweepTracker {
    fn new(backends: usize) -> SweepTracker {
        SweepTracker {
            pending: (0..backends).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    fn add(&self, index: usize, count: usize) {
        self.pending[index].fetch_add(count, Ordering::Relaxed);
    }

    fn pending(&self, index: usize) -> usize {
        self.pending[index].load(Ordering::Relaxed)
    }

    fn transfer(&self, from: usize, to: usize) {
        let _ = self.pending[from].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            Some(n.saturating_sub(1))
        });
        self.pending[to].fetch_add(1, Ordering::Relaxed);
    }

    fn complete(&self, index: usize) {
        let _ = self.pending[index].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            Some(n.saturating_sub(1))
        });
    }
}

/// The fleet [`JobControl`]: wraps the backend's own handle and owns the
/// spec, so the job can be resubmitted wholesale when its backend dies
/// (re-route) or lags (steal).  Correctness of both rests on jobs being
/// content-addressed: a duplicate execution converges to the same
/// outcome and usually costs one cache hit.
struct FleetJob {
    shared: Arc<Shared>,
    spec: RunSpec,
    options: SubmitOptions,
    backend: usize,
    inner: JobHandle,
    tracker: Option<Arc<SweepTracker>>,
    done: bool,
    dispatched: Instant,
}

impl FleetJob {
    // Deliberate timing code: the dispatch timestamp seeds the
    // steal-patience clock.
    #[allow(clippy::disallowed_methods)]
    fn new(
        shared: Arc<Shared>,
        spec: RunSpec,
        options: SubmitOptions,
        backend: usize,
        inner: JobHandle,
        tracker: Option<Arc<SweepTracker>>,
    ) -> FleetJob {
        FleetJob {
            shared,
            spec,
            options,
            backend,
            inner,
            tracker,
            done: false,
            dispatched: Instant::now(),
        }
    }

    /// Records completion exactly once toward the sweep tracker.
    fn mark_done(&mut self) {
        if !self.done {
            self.done = true;
            if let Some(tracker) = &self.tracker {
                tracker.complete(self.backend);
            }
        }
    }

    /// The backend died under this job: evict it and resubmit the spec
    /// to its new ring owner.
    // Deliberate timing code: a re-dispatch restarts the patience clock.
    #[allow(clippy::disallowed_methods)]
    fn reroute(&mut self) -> Result<(), ExecError> {
        self.shared.report_lost(self.backend);
        self.shared
            .counters
            .reroutes
            .fetch_add(1, Ordering::Relaxed);
        let (backend, inner) = self.shared.dispatch(&self.spec, self.options)?;
        if let Some(tracker) = &self.tracker {
            tracker.transfer(self.backend, backend);
        }
        self.backend = backend;
        self.inner = inner;
        self.dispatched = Instant::now();
        Ok(())
    }

    /// Re-dispatches a sweep job that out-waited the patience window to
    /// a healthy backend whose own share of the sweep is done.  The
    /// original submission keeps running — whichever copy finishes
    /// first wins, the other is a cache hit.
    // Deliberate timing code: patience is a wall-clock window.
    #[allow(clippy::disallowed_methods)]
    fn maybe_steal(&mut self) {
        let Some(tracker) = self.tracker.clone() else {
            return;
        };
        if self.dispatched.elapsed() < self.shared.config.steal_patience {
            return;
        }
        let target = {
            let members = self.shared.members.lock().expect("fleet members poisoned");
            members
                .slots
                .iter()
                .enumerate()
                .find(|(index, slot)| {
                    *index != self.backend && slot.healthy && tracker.pending(*index) == 0
                })
                .map(|(index, slot)| (index, Arc::clone(&slot.remote)))
        };
        let Some((index, remote)) = target else {
            self.dispatched = Instant::now();
            return;
        };
        if let Ok(inner) = remote.submit(&self.spec, self.options) {
            tracker.transfer(self.backend, index);
            self.backend = index;
            self.inner = inner;
            self.shared.counters.steals.fetch_add(1, Ordering::Relaxed);
            self.shared.counters.routed[index].fetch_add(1, Ordering::Relaxed);
        }
        self.dispatched = Instant::now();
    }

    /// One result probe against the current backend, rerouting (at most
    /// `attempts` times, naturally bounded by the fleet size inside
    /// `dispatch`) when the backend is gone.
    fn probe_outcome(&mut self) -> Result<Option<Arc<RunOutcome>>, ExecError> {
        match self.inner.try_outcome() {
            Err(ExecError::BackendLost(_) | ExecError::TimedOut) => {
                self.reroute()?;
                self.inner.try_outcome()
            }
            other => other,
        }
    }
}

impl JobControl for FleetJob {
    fn label(&self) -> String {
        format!("fleet[{}]:{}", self.backend, self.inner.label())
    }

    fn status(&mut self) -> Result<JobStatus, ExecError> {
        match self.inner.status() {
            Err(ExecError::BackendLost(_) | ExecError::TimedOut) => {
                self.reroute()?;
                self.inner.status()
            }
            other => other,
        }
    }

    // Deliberate timing code: the bounded wait polls against a deadline.
    #[allow(clippy::disallowed_methods)]
    fn wait(&mut self, timeout: Option<Duration>) -> Result<Arc<RunOutcome>, ExecError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            match self.probe_outcome() {
                Ok(Some(outcome)) => {
                    self.mark_done();
                    return Ok(outcome);
                }
                Ok(None) => {}
                Err(terminal) => {
                    self.mark_done();
                    return Err(terminal);
                }
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Err(ExecError::NotFinished);
                }
            }
            self.maybe_steal();
            std::thread::sleep(FLEET_POLL);
        }
    }

    fn try_outcome(&mut self) -> Result<Option<Arc<RunOutcome>>, ExecError> {
        let outcome = self.probe_outcome()?;
        if outcome.is_some() {
            self.mark_done();
        }
        Ok(outcome)
    }

    fn cancel(&mut self) -> Result<(), ExecError> {
        self.inner.cancel()
    }

    fn poll_events(&mut self) -> Result<Vec<RunEvent>, ExecError> {
        match self.inner.poll_events() {
            Err(ExecError::BackendLost(_) | ExecError::TimedOut) => {
                // The stream restarts on the new backend; a replayed
                // `started` event is possible and harmless (observers
                // must already tolerate at-least-once delivery).
                self.reroute()?;
                self.inner.poll_events()
            }
            other => other,
        }
    }
}

// ---------------------------------------------------------------------------
// Observability payloads
// ---------------------------------------------------------------------------

/// One backend's row in [`FleetStats`].
#[derive(Clone, Debug)]
pub struct BackendStats {
    /// The backend's address.
    pub addr: String,
    /// Whether the ring currently includes it.
    pub healthy: bool,
    /// Its live [`ServiceStats`], `None` if it did not answer.
    pub stats: Option<ServiceStats>,
}

/// Fleet-local counters: everything the router knows that no single
/// backend can.  Round-trips through [`FleetLocal::to_text`] /
/// [`FleetLocal::from_text`] in the workspace's `key: value` convention.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetLocal {
    /// Jobs routed to each backend, by slot index.
    pub jobs_routed: Vec<u64>,
    /// In-flight jobs resubmitted because their backend died.
    pub reroutes: u64,
    /// Sweep jobs re-dispatched from a lagging backend to an idle one.
    pub steals: u64,
    /// Individual probe round trips that failed.
    pub probe_failures: u64,
    /// Backends evicted from the ring (threshold or request-path loss).
    pub evictions: u64,
    /// Evicted backends re-added after answering a probe.
    pub readds: u64,
}

impl FleetLocal {
    /// Renders the counters as `key: value` lines.
    pub fn to_text(&self) -> String {
        let routed: Vec<String> = self.jobs_routed.iter().map(u64::to_string).collect();
        format!(
            "jobs-routed: {}\nreroutes: {}\nsteals: {}\nprobe-failures: {}\nevictions: {}\nreadds: {}\n",
            routed.join(" "),
            self.reroutes,
            self.steals,
            self.probe_failures,
            self.evictions,
            self.readds,
        )
    }

    /// Parses the text form produced by [`FleetLocal::to_text`].
    pub fn from_text(text: &str) -> Result<FleetLocal, ServiceError> {
        let mut local = FleetLocal::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let (key, value) = line.split_once(':').ok_or_else(|| {
                ServiceError::Protocol(format!("fleet line {line:?} is not `key: value`"))
            })?;
            let value = value.trim();
            let parse = |v: &str| {
                v.parse::<u64>().map_err(|_| {
                    ServiceError::Protocol(format!("fleet value {v:?} is not a number"))
                })
            };
            match key.trim() {
                "jobs-routed" => {
                    local.jobs_routed = value
                        .split_whitespace()
                        .map(parse)
                        .collect::<Result<_, _>>()?;
                }
                "reroutes" => local.reroutes = parse(value)?,
                "steals" => local.steals = parse(value)?,
                "probe-failures" => local.probe_failures = parse(value)?,
                "evictions" => local.evictions = parse(value)?,
                "readds" => local.readds = parse(value)?,
                other => {
                    return Err(ServiceError::Protocol(format!(
                        "unknown fleet key {other:?}"
                    )))
                }
            }
        }
        Ok(local)
    }
}

/// The full fleet observability snapshot.
#[derive(Clone, Debug)]
pub struct FleetStats {
    /// One row per configured backend, in slot order.
    pub per_backend: Vec<BackendStats>,
    /// Sum/max aggregation of every answering backend's stats.
    pub aggregate: ServiceStats,
    /// The router's own counters.
    pub local: FleetLocal,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_local_text_round_trips() {
        let local = FleetLocal {
            jobs_routed: vec![3, 0, 7],
            reroutes: 2,
            steals: 1,
            probe_failures: 5,
            evictions: 1,
            readds: 1,
        };
        let text = local.to_text();
        assert_eq!(FleetLocal::from_text(&text).unwrap(), local, "\n{text}");
        assert!(FleetLocal::from_text("steals: many\n").is_err());
        assert!(FleetLocal::from_text("nonsense\n").is_err());
        assert!(FleetLocal::from_text("turbo: 1\n").is_err());
    }

    #[test]
    fn empty_config_is_rejected() {
        let err = FleetExecutor::connect(FleetConfig::new(Vec::<String>::new()));
        assert!(err.is_err());
    }
}
