//! Diffusion processes on general graphs.
//!
//! Two processes are provided:
//!
//! * the **linear-threshold activation** process of the TSS literature
//!   (Granovetter \[17\], Kempe–Kleinberg–Tardos \[20\]): a vertex activates
//!   once the number of its active neighbours reaches its threshold and
//!   never deactivates;
//! * the **SMP-Protocol on a general graph**, the paper's future-work
//!   question: vertices carry colours and adopt the colour of a unique
//!   plurality of at least two neighbours.

use ctori_coloring::{Color, Coloring};
use ctori_engine::{
    EngineOptions, PackedFrontier, RuleSpec, RunSpec, Runner, SeedSpec, Termination, TopologySpec,
};
use ctori_protocols::capability::NEVER;
use ctori_protocols::{AnyRule, SmpProtocol};
use ctori_topology::{Adjacency, Graph, NodeId, Topology};

/// Per-vertex activation thresholds.
pub type Thresholds = Vec<usize>;

/// Thresholds equal to the simple majority of each vertex's degree
/// (`⌈d/2⌉`), the rule the paper's tori use.
pub fn simple_majority_thresholds(graph: &Graph) -> Thresholds {
    (0..graph.node_count())
        .map(|v| graph.degree(NodeId::new(v)).div_ceil(2).max(1))
        .collect()
}

/// Thresholds equal to the strong majority of each vertex's degree
/// (`⌈(d+1)/2⌉`).
pub fn strong_majority_thresholds(graph: &Graph) -> Thresholds {
    (0..graph.node_count())
        .map(|v| (graph.degree(NodeId::new(v)) + 1).div_ceil(2).max(1))
        .collect()
}

/// Uniform thresholds.
pub fn uniform_thresholds(graph: &Graph, threshold: usize) -> Thresholds {
    vec![threshold.max(1); graph.node_count()]
}

/// Result of a linear-threshold spread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpreadResult {
    /// Number of vertices active at the end of the process.
    pub activated_count: usize,
    /// Rounds until the process stopped changing.
    pub rounds: usize,
    /// Whether every vertex ended up active (the seed was a *perfect*
    /// target set).
    pub complete: bool,
    /// Per-vertex activation round (`None` = never activated, `Some(0)` =
    /// seed).
    pub activation_round: Vec<Option<usize>>,
}

/// Runs the linear-threshold process from the given seed set until no
/// vertex changes.
///
/// Convenience wrapper over [`spread_on`] that flattens the graph into the
/// shared CSR kernel first; callers running many spreads on one graph
/// should build the [`Adjacency`] once and call [`spread_on`] directly.
pub fn spread(graph: &Graph, thresholds: &Thresholds, seeds: &[NodeId]) -> SpreadResult {
    spread_on(&Adjacency::build(graph), thresholds, seeds)
}

/// Runs the linear-threshold process on a prebuilt CSR adjacency.
///
/// This is a thin wrapper over the engine's packed two-colour frontier
/// lane ([`ctori_engine::PackedFrontier`]) — the same scheduler the
/// simulator uses for two-colour runs: active vertices are single bits,
/// the per-vertex thresholds become the lane's up-thresholds (activation
/// is monotone, so the down direction is [`NEVER`]), and after the first
/// full round only the frontier — vertices adjacent to the last
/// activations — is re-evaluated.  The activation rounds are identical to
/// the synchronous re-scan semantics; vertices with a zero threshold need
/// no active neighbour at all and self-activate in round 1.
pub fn spread_on(adjacency: &Adjacency, thresholds: &Thresholds, seeds: &[NodeId]) -> SpreadResult {
    let n = adjacency.node_count();
    assert_eq!(thresholds.len(), n, "one threshold per vertex");
    let up: Vec<u32> = thresholds
        .iter()
        .map(|&t| u32::try_from(t).unwrap_or(NEVER))
        .collect();
    let mut lane = PackedFrontier::new(n, up, vec![NEVER; n]);
    let mut activation_round = vec![None; n];
    for &s in seeds {
        lane.set_one(s.index());
        activation_round[s.index()] = Some(0);
    }

    let mut rounds = 0usize;
    loop {
        if lane.step(adjacency) == 0 {
            break;
        }
        rounds += 1;
        for &v in lane.flips() {
            activation_round[v as usize] = Some(rounds);
        }
    }

    let activated_count = lane.ones();
    SpreadResult {
        activated_count,
        rounds,
        complete: activated_count == n,
        activation_round,
    }
}

/// Whether the seed set is a *perfect target set* (activates everything).
pub fn is_perfect_target_set(graph: &Graph, thresholds: &Thresholds, seeds: &[NodeId]) -> bool {
    spread(graph, thresholds, seeds).complete
}

/// Runs the SMP-Protocol on a general graph from a two-colour initial
/// state: vertices in `seeds` start with colour `k`, everything else with
/// colour assigned round-robin from `other_colors` (pairwise-different
/// colours around a vertex make the protocol behave like threshold-2
/// growth, mirroring the torus constructions).
///
/// Returns `(final k-count, rounds, reached k-monochromatic)`.
///
/// The graph is snapshotted into the spec's edge list and rebuilt by the
/// runner (specs are plain data) — an `O(|E|)` cost per call that is
/// negligible next to the simulation itself; callers needing to amortise
/// it across very many runs should drive a `Simulator` directly.
pub fn smp_on_graph(
    graph: &Graph,
    seeds: &[NodeId],
    k: Color,
    other_colors: &[Color],
) -> (usize, usize, bool) {
    assert!(!other_colors.is_empty(), "need at least one non-k colour");
    let n = graph.node_count();
    let mut state = vec![Color::UNSET; n];
    for &s in seeds {
        state[s.index()] = k;
    }
    let mut idx = 0usize;
    for cell in state.iter_mut() {
        if cell.is_unset() {
            *cell = other_colors[idx % other_colors.len()];
            idx += 1;
        }
    }
    let spec = RunSpec::new(
        TopologySpec::from_graph(graph),
        RuleSpec::from_rule(SmpProtocol),
        SeedSpec::Explicit(Coloring::from_cells(1, n, state)),
    )
    .with_options(EngineOptions::default().with_max_rounds(4 * n + 16));
    let outcome = Runner::new().execute(&spec);
    let reached = outcome.reached_monochromatic(k);
    (outcome.final_count(k), outcome.rounds, reached)
}

/// Runs an arbitrary registry rule on a general graph from an explicit
/// initial colour vector; convenience wrapper used by the experiments.
/// Executes through the declarative [`Runner`] path.
pub fn run_rule_on_graph(
    graph: &Graph,
    rule: impl Into<AnyRule>,
    initial: Vec<Color>,
    max_rounds: usize,
) -> (Vec<Color>, usize, Termination) {
    let n = graph.node_count();
    let spec = RunSpec::new(
        TopologySpec::from_graph(graph),
        RuleSpec::from_rule(rule),
        SeedSpec::Explicit(Coloring::from_cells(1, n, initial)),
    )
    .with_options(EngineOptions::default().with_max_rounds(max_rounds));
    let outcome = Runner::new().execute(&spec);
    (
        outcome.final_coloring.cells().to_vec(),
        outcome.rounds,
        outcome.termination,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, ring_lattice};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The synchronous re-scan reference implementation the frontier-based
    /// [`spread_on`] must agree with, round for round.
    fn spread_reference(graph: &Graph, thresholds: &Thresholds, seeds: &[NodeId]) -> SpreadResult {
        let n = graph.node_count();
        let mut active = vec![false; n];
        let mut activation_round = vec![None; n];
        for &s in seeds {
            active[s.index()] = true;
            activation_round[s.index()] = Some(0);
        }
        let mut round = 0usize;
        loop {
            round += 1;
            let mut newly: Vec<usize> = Vec::new();
            for v in 0..n {
                if active[v] {
                    continue;
                }
                let active_nbrs = graph
                    .neighbors_slice(NodeId::new(v))
                    .iter()
                    .filter(|u| active[u.index()])
                    .count();
                if active_nbrs >= thresholds[v] {
                    newly.push(v);
                }
            }
            if newly.is_empty() {
                round -= 1;
                break;
            }
            for v in newly {
                active[v] = true;
                activation_round[v] = Some(round);
            }
        }
        let activated_count = active.iter().filter(|&&a| a).count();
        SpreadResult {
            activated_count,
            rounds: round,
            complete: activated_count == n,
            activation_round,
        }
    }

    #[test]
    fn frontier_spread_matches_rescan_reference() {
        let mut rng = StdRng::seed_from_u64(17);
        for (nodes, m_edges) in [(40usize, 2usize), (120, 3), (250, 4)] {
            let g = barabasi_albert(nodes, m_edges, &mut rng);
            for thresholds in [
                simple_majority_thresholds(&g),
                strong_majority_thresholds(&g),
                uniform_thresholds(&g, 2),
            ] {
                let seeds = crate::selection::highest_degree_seeds(&g, nodes / 8);
                assert_eq!(
                    spread(&g, &thresholds, &seeds),
                    spread_reference(&g, &thresholds, &seeds),
                    "mismatch on {nodes}-vertex graph"
                );
            }
        }
    }

    #[test]
    fn zero_thresholds_self_activate_in_round_one() {
        let g = ring_lattice(6, 1);
        let thresholds = vec![0usize; 6];
        let result = spread(&g, &thresholds, &[]);
        assert!(result.complete);
        assert_eq!(result.rounds, 1);
        assert!(result.activation_round.iter().all(|&r| r == Some(1)));
    }

    #[test]
    fn spread_on_reuses_a_prebuilt_adjacency() {
        let g = ring_lattice(12, 2);
        let adjacency = Adjacency::build(&g);
        let thresholds = simple_majority_thresholds(&g);
        let seeds = [NodeId::new(0), NodeId::new(1)];
        assert_eq!(
            spread_on(&adjacency, &thresholds, &seeds),
            spread(&g, &thresholds, &seeds)
        );
    }

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn spread_on_a_path_with_threshold_one() {
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1));
        }
        let thresholds = uniform_thresholds(&g, 1);
        let result = spread(&g, &thresholds, &ids(&[0]));
        assert!(result.complete);
        assert_eq!(result.activated_count, 5);
        assert_eq!(result.rounds, 4);
        assert_eq!(result.activation_round[4], Some(4));
        assert_eq!(result.activation_round[0], Some(0));
        assert!(is_perfect_target_set(&g, &thresholds, &ids(&[0])));
    }

    #[test]
    fn spread_stops_when_threshold_is_not_met() {
        let g = ring_lattice(12, 2); // degree 4
        let thresholds = simple_majority_thresholds(&g); // threshold 2
                                                         // A single seed can never activate anyone (its neighbours see one
                                                         // active vertex but need two).
        let result = spread(&g, &thresholds, &ids(&[0]));
        assert_eq!(result.activated_count, 1);
        assert_eq!(result.rounds, 0);
        assert!(!result.complete);
        // Two adjacent seeds activate their common neighbours and sweep the
        // ring.
        let result = spread(&g, &thresholds, &ids(&[0, 1]));
        assert!(result.complete, "two adjacent seeds sweep a degree-4 ring");
    }

    #[test]
    fn strong_thresholds_are_harder_than_simple() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = barabasi_albert(150, 3, &mut rng);
        let seeds = crate::selection::highest_degree_seeds(&g, 15);
        let simple = spread(&g, &simple_majority_thresholds(&g), &seeds);
        let strong = spread(&g, &strong_majority_thresholds(&g), &seeds);
        assert!(simple.activated_count >= strong.activated_count);
    }

    #[test]
    fn empty_seed_activates_nothing() {
        let g = ring_lattice(10, 1);
        let result = spread(&g, &uniform_thresholds(&g, 1), &[]);
        assert_eq!(result.activated_count, 0);
        assert!(!result.complete);
        assert!(result.activation_round.iter().all(|r| r.is_none()));
    }

    #[test]
    fn smp_on_graph_spreads_from_a_dense_seed() {
        // On a degree-4 ring, two adjacent k vertices give each neighbour
        // two k-coloured neighbours, and with pairwise-distinct other
        // colours the plurality rule fires just like threshold-2 growth.
        let g = ring_lattice(12, 2);
        let others: Vec<Color> = (2..14).map(Color::new).collect();
        let (count, rounds, reached) = smp_on_graph(&g, &ids(&[0, 1]), Color::new(1), &others);
        assert!(reached, "the ring should become k-monochromatic");
        assert_eq!(count, 12);
        assert!(rounds >= 1);
    }

    #[test]
    fn run_rule_on_graph_reports_termination() {
        let g = ring_lattice(8, 1);
        let initial = vec![Color::new(1); 8];
        let (state, rounds, termination) = run_rule_on_graph(&g, SmpProtocol, initial, 100);
        assert_eq!(rounds, 0);
        assert!(matches!(termination, Termination::Monochromatic(_)));
        assert!(state.iter().all(|&c| c == Color::new(1)));
    }

    #[test]
    #[should_panic(expected = "one threshold per vertex")]
    fn threshold_length_is_checked() {
        let g = ring_lattice(8, 1);
        let _ = spread(&g, &vec![1; 3], &[]);
    }
}
