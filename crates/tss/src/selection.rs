//! Seed-selection heuristics for target set selection.
//!
//! Finding a minimum perfect target set is NP-hard (the paper cites the
//! reduction of Kempe–Kleinberg–Tardos \[20\]), so practice uses heuristics.
//! The experiments compare three standard ones plus, on small graphs, the
//! exact optimum by exhaustive search:
//!
//! * [`highest_degree_seeds`] — pick the `k` highest-degree vertices;
//! * [`greedy_seeds`] — repeatedly add the vertex giving the largest
//!   marginal increase in spread (the classic greedy of \[20\]);
//! * [`random_seeds`] — a uniform random baseline;
//! * [`exact_minimum_target_set`] — smallest perfect target set by
//!   exhaustive search (exponential; small graphs only).

use crate::diffusion::{spread, Thresholds};
use ctori_topology::{Graph, NodeId, Topology};
use rand::seq::SliceRandom;
use rand::Rng;

/// The `count` vertices of highest degree (ties broken by index).
pub fn highest_degree_seeds(graph: &Graph, count: usize) -> Vec<NodeId> {
    let mut by_degree: Vec<NodeId> = (0..graph.node_count()).map(NodeId::new).collect();
    by_degree.sort_by_key(|v| (std::cmp::Reverse(graph.degree(*v)), v.index()));
    by_degree.truncate(count);
    by_degree
}

/// Uniformly random seeds.
pub fn random_seeds<R: Rng + ?Sized>(graph: &Graph, count: usize, rng: &mut R) -> Vec<NodeId> {
    let mut all: Vec<NodeId> = (0..graph.node_count()).map(NodeId::new).collect();
    all.shuffle(rng);
    all.truncate(count);
    all
}

/// Greedy marginal-gain selection: grow the seed set one vertex at a time,
/// always adding the vertex that maximises the resulting spread.
pub fn greedy_seeds(graph: &Graph, thresholds: &Thresholds, count: usize) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut seeds: Vec<NodeId> = Vec::with_capacity(count);
    for _ in 0..count.min(n) {
        let mut best: Option<(usize, NodeId)> = None;
        for v in 0..n {
            let v = NodeId::new(v);
            if seeds.contains(&v) {
                continue;
            }
            let mut candidate = seeds.clone();
            candidate.push(v);
            let gain = spread(graph, thresholds, &candidate).activated_count;
            if best.map(|(g, _)| gain > g).unwrap_or(true) {
                best = Some((gain, v));
            }
        }
        match best {
            Some((_, v)) => seeds.push(v),
            None => break,
        }
    }
    seeds
}

/// The smallest perfect target set, found by exhaustive search over
/// subsets in increasing size.  Exponential — intended for graphs of at
/// most ~20 vertices (the experiments use it to calibrate the heuristics).
pub fn exact_minimum_target_set(graph: &Graph, thresholds: &Thresholds) -> Option<Vec<NodeId>> {
    let n = graph.node_count();
    if n == 0 {
        return Some(Vec::new());
    }
    assert!(n <= 24, "exhaustive search is limited to 24 vertices");
    for size in 1..=n {
        let mut indices: Vec<usize> = (0..size).collect();
        loop {
            let seeds: Vec<NodeId> = indices.iter().map(|&i| NodeId::new(i)).collect();
            if spread(graph, thresholds, &seeds).complete {
                return Some(seeds);
            }
            // next combination
            let mut i = size;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if indices[i] != i + n - size {
                    indices[i] += 1;
                    for j in i + 1..size {
                        indices[j] = indices[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    // exhausted this size
                    indices.clear();
                    break;
                }
            }
            if indices.is_empty() {
                break;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusion::{simple_majority_thresholds, uniform_thresholds};
    use crate::generators::{barabasi_albert, ring_lattice};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn highest_degree_picks_hubs() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(120, 2, &mut rng);
        let seeds = highest_degree_seeds(&g, 5);
        assert_eq!(seeds.len(), 5);
        let min_seed_degree = seeds.iter().map(|v| g.degree(*v)).min().unwrap();
        // Every selected vertex has degree at least as high as every
        // non-selected vertex.
        for v in 0..g.node_count() {
            let v = NodeId::new(v);
            if !seeds.contains(&v) {
                assert!(g.degree(v) <= min_seed_degree);
            }
        }
    }

    #[test]
    fn random_seeds_have_requested_size_and_no_duplicates() {
        let g = ring_lattice(30, 2);
        let mut rng = StdRng::seed_from_u64(8);
        let seeds = random_seeds(&g, 10, &mut rng);
        assert_eq!(seeds.len(), 10);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn greedy_beats_or_matches_random_on_spread() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(80, 2, &mut rng);
        let thresholds = simple_majority_thresholds(&g);
        let budget = 6;
        let greedy = greedy_seeds(&g, &thresholds, budget);
        let random = random_seeds(&g, budget, &mut rng);
        let greedy_spread = spread(&g, &thresholds, &greedy).activated_count;
        let random_spread = spread(&g, &thresholds, &random).activated_count;
        assert!(
            greedy_spread >= random_spread,
            "greedy ({greedy_spread}) must not lose to random ({random_spread})"
        );
        assert_eq!(greedy.len(), budget);
    }

    #[test]
    fn exact_minimum_on_a_small_ring() {
        // Degree-2 ring with threshold 1: one seed suffices.
        let g = ring_lattice(8, 1);
        let t1 = uniform_thresholds(&g, 1);
        let opt = exact_minimum_target_set(&g, &t1).unwrap();
        assert_eq!(opt.len(), 1);
        // Threshold 2 on a degree-2 ring: a vertex activates only when both
        // neighbours are active; the optimum must alternate — 4 seeds.
        let t2 = uniform_thresholds(&g, 2);
        let opt = exact_minimum_target_set(&g, &t2).unwrap();
        assert_eq!(opt.len(), 4);
    }

    #[test]
    fn exact_search_reports_infeasible_as_full_set() {
        // With thresholds above the degree, only seeding everything works.
        let g = ring_lattice(6, 1);
        let t = uniform_thresholds(&g, 5);
        let opt = exact_minimum_target_set(&g, &t).unwrap();
        assert_eq!(opt.len(), 6);
    }

    #[test]
    fn greedy_with_budget_larger_than_graph() {
        let g = ring_lattice(5, 1);
        let t = uniform_thresholds(&g, 1);
        let seeds = greedy_seeds(&g, &t, 50);
        assert_eq!(seeds.len(), 5);
    }
}
