//! Random graph generators (re-export).
//!
//! The generator implementations moved to [`ctori_topology::generators`] so
//! the engine's declarative [`TopologySpec`] can construct the same models
//! without a dependency cycle; this module keeps the historical
//! `ctori_tss::generators` path working.
//!
//! [`TopologySpec`]: ctori_engine::TopologySpec

pub use ctori_topology::generators::{barabasi_albert, erdos_renyi, ring_lattice, small_world};
