//! # ctori-tss
//!
//! Target-set-selection substrate for the *Dynamic Monopolies in Colored
//! Tori* reproduction.
//!
//! The paper frames dynamos as a multi-coloured generalisation of **target
//! set selection (TSS)** in the linear threshold model: find a smallest set
//! of initially-active vertices whose influence eventually activates the
//! whole graph.  Its introduction motivates the problem with viral
//! marketing on social ("influential") networks, and its conclusions call
//! for studying the SMP-Protocol on scale-free networks as future work.
//! This crate provides that substrate:
//!
//! * [`generators`] — random graph models (Barabási–Albert scale-free,
//!   Erdős–Rényi, ring lattices) used as synthetic social networks;
//! * [`diffusion`] — the linear-threshold activation process on general
//!   graphs (monotone, threshold per vertex), plus an SMP-Protocol runner
//!   on arbitrary graphs for the future-work experiment;
//! * [`selection`] — seed-selection heuristics (highest degree, greedy
//!   marginal gain, random) and an exact brute-force optimum for small
//!   graphs, so the experiments can compare them the way the TSS
//!   literature does.
//!
//! # Example
//!
//! ```
//! use ctori_tss::generators::barabasi_albert;
//! use ctori_tss::diffusion::{simple_majority_thresholds, spread};
//! use ctori_tss::selection::highest_degree_seeds;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = barabasi_albert(200, 3, &mut rng);
//! let thresholds = simple_majority_thresholds(&g);
//! let seeds = highest_degree_seeds(&g, 20);
//! let result = spread(&g, &thresholds, &seeds);
//! assert!(result.activated_count >= 20);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod diffusion;
pub mod generators;
pub mod selection;

pub use diffusion::{spread, spread_on, SpreadResult};
pub use generators::{barabasi_albert, erdos_renyi, ring_lattice};
pub use selection::{greedy_seeds, highest_degree_seeds, random_seeds};
