//! Property-based tests for the local rules.

use ctori_coloring::Color;
use ctori_protocols::{
    Irreversible, LocalRule, ReverseSimpleMajority, ReverseStrongMajority, SmpProtocol,
    ThresholdRule,
};
use proptest::prelude::*;

fn color() -> impl Strategy<Value = Color> {
    (1u16..=6).prop_map(Color::new)
}

fn neighborhood() -> impl Strategy<Value = Vec<Color>> {
    prop::collection::vec(color(), 4)
}

proptest! {
    /// The SMP rule is invariant under permutations of the neighbour list
    /// (Algorithm 1 only talks about the multiset of neighbour colours).
    #[test]
    fn smp_ignores_neighbor_order(own in color(), nbrs in neighborhood(), rotation in 0usize..4) {
        let mut rotated = nbrs.clone();
        rotated.rotate_left(rotation);
        prop_assert_eq!(
            SmpProtocol.next_color(own, &nbrs),
            SmpProtocol.next_color(own, &rotated)
        );
    }

    /// The SMP rule either keeps the vertex's colour or adopts a colour
    /// held by at least two neighbours — never anything else.
    #[test]
    fn smp_output_is_own_or_a_neighbor_pair(own in color(), nbrs in neighborhood()) {
        let next = SmpProtocol.next_color(own, &nbrs);
        if next != own {
            let count = nbrs.iter().filter(|&&c| c == next).count();
            prop_assert!(count >= 2, "adopted colour {next} appears only {count} times");
        }
    }

    /// The SMP rule commutes with colour relabelling.
    #[test]
    fn smp_commutes_with_relabelling(own in color(), nbrs in neighborhood(), shift in 1u16..5) {
        let relabel = |c: Color| Color::new(((c.index() - 1 + shift) % 7) + 1);
        let direct = relabel(SmpProtocol.next_color(own, &nbrs));
        let relabeled: Vec<Color> = nbrs.iter().map(|&c| relabel(c)).collect();
        let mapped = SmpProtocol.next_color(relabel(own), &relabeled);
        prop_assert_eq!(direct, mapped);
    }

    /// Whenever reverse strong majority recolours a vertex, the SMP rule
    /// recolours it to the same colour (the ordering behind Proposition 2).
    #[test]
    fn strong_majority_decisions_are_smp_decisions(own in color(), nbrs in neighborhood()) {
        let strong = ReverseStrongMajority.next_color(own, &nbrs);
        if strong != own {
            prop_assert_eq!(SmpProtocol.next_color(own, &nbrs), strong);
        }
    }

    /// Prefer-black and prefer-current only ever differ on configurations
    /// where black ties for the plurality.
    #[test]
    fn tie_break_only_matters_on_black_ties(own in color(), nbrs in neighborhood()) {
        let pb = ReverseSimpleMajority::prefer_black().next_color(own, &nbrs);
        let pc = ReverseSimpleMajority::prefer_current().next_color(own, &nbrs);
        if pb != pc {
            prop_assert_eq!(pb, Color::BLACK);
            let black_count = nbrs.iter().filter(|&&c| c == Color::BLACK).count();
            prop_assert!(black_count >= 2);
        }
    }

    /// An irreversible rule never lets a vertex leave the target colour,
    /// and otherwise agrees with the wrapped rule.
    #[test]
    fn irreversible_locks_the_target(own in color(), nbrs in neighborhood(), target in color()) {
        let rule = Irreversible::new(SmpProtocol, target);
        let next = rule.next_color(own, &nbrs);
        if own == target {
            prop_assert_eq!(next, target);
        } else {
            prop_assert_eq!(next, SmpProtocol.next_color(own, &nbrs));
        }
    }

    /// The threshold rule is monotone: it never deactivates, and it
    /// activates exactly when enough neighbours are active.
    #[test]
    fn threshold_rule_activation(own in color(), nbrs in neighborhood(), threshold in 1usize..5) {
        let active = Color::new(1);
        let rule = ThresholdRule::new(active, threshold);
        let next = rule.next_color(own, &nbrs);
        let active_nbrs = nbrs.iter().filter(|&&c| c == active).count();
        if own == active || active_nbrs >= threshold {
            prop_assert_eq!(next, active);
        } else {
            prop_assert_eq!(next, own);
        }
    }
}
