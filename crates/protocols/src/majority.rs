//! Bi-coloured majority baselines (Flocchini et al. \[15\], Peleg \[26\]).
//!
//! Propositions 1 and 2 of the paper transfer lower/upper bounds from the
//! bi-coloured *reverse simple majority* and *reverse strong majority*
//! rules to the multi-coloured SMP-Protocol.  These baselines are
//! re-implemented here from the definitions quoted in the paper:
//!
//! * **reverse simple majority** — a vertex recolours to the colour held by
//!   at least ⌈d/2⌉ = 2 of its 4 neighbours.  When both colours reach the
//!   threshold (a 2–2 split) a tie-break is needed:
//!   [`TieBreak::PreferBlack`] recolours black (the choice made in \[15\]),
//!   [`TieBreak::PreferCurrent`] keeps the current colour (the PC option of
//!   \[26\]).
//! * **reverse strong majority** — a vertex recolours to a colour only if
//!   at least ⌈(d+1)/2⌉ = 3 of its neighbours hold it; otherwise it keeps
//!   its colour.  With threshold 3 no tie is possible.
//!
//! "Reverse" refers to the non-monotone character of the process: vertices
//! may flip back and forth, exactly as in the SMP-Protocol.
//!
//! Although stated for two colours in \[15\], both rules are implemented here
//! for arbitrary palettes (threshold on the count of any single colour,
//! black preference only applying to [`ctori_coloring::Color::BLACK`]), so
//! they can also be run on multi-coloured configurations for comparison
//! experiments.

use crate::capability::{ColorCountRule, TwoStateThreshold};
use crate::rule::LocalRule;
use ctori_coloring::Color;

/// Tie-breaking policy for the reverse simple majority rule on a 2–2 split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieBreak {
    /// Recolour black (colour 2) on ties involving black — the rule of \[15\].
    PreferBlack,
    /// Keep the current colour on ties — the PC option of \[26\].
    PreferCurrent,
}

/// Reverse simple majority: adopt a colour held by at least half (= 2) of
/// the neighbours.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReverseSimpleMajority {
    tie_break: TieBreak,
}

impl ReverseSimpleMajority {
    /// Simple-majority threshold for degree-4 vertices: ⌈4/2⌉ = 2.
    pub const THRESHOLD: usize = 2;

    /// Creates the rule with the given tie-break policy.
    pub fn new(tie_break: TieBreak) -> Self {
        ReverseSimpleMajority { tie_break }
    }

    /// The rule exactly as used in \[15\]: prefer black on ties.
    pub fn prefer_black() -> Self {
        Self::new(TieBreak::PreferBlack)
    }

    /// The Prefer-Current variant.
    pub fn prefer_current() -> Self {
        Self::new(TieBreak::PreferCurrent)
    }

    /// The configured tie-break policy.
    pub fn tie_break(&self) -> TieBreak {
        self.tie_break
    }
}

impl LocalRule for ReverseSimpleMajority {
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color {
        let stats = crate::counting::leader_stats(neighbors);
        if stats.max < Self::THRESHOLD {
            return own;
        }
        if !stats.tied {
            return stats.leader;
        }
        match self.tie_break {
            TieBreak::PreferBlack if stats.black_leads => Color::BLACK,
            TieBreak::PreferBlack => {
                // Tie not involving black: fall back to keeping the colour
                // (the bi-coloured setting of [15] never reaches this arm).
                own
            }
            TieBreak::PreferCurrent => own,
        }
    }

    fn name(&self) -> &'static str {
        match self.tie_break {
            TieBreak::PreferBlack => "reverse simple majority (prefer-black)",
            TieBreak::PreferCurrent => "reverse simple majority (prefer-current)",
        }
    }

    fn as_two_state_threshold(&self) -> Option<TwoStateThreshold> {
        // On two colours the leader either has a strict majority (adopt) or
        // exactly half the neighbourhood; the tie-break decides the rest.
        let t = TwoStateThreshold::majority(Self::THRESHOLD as u32);
        Some(match self.tie_break {
            TieBreak::PreferBlack => t.with_tie_to(Color::BLACK),
            TieBreak::PreferCurrent => t,
        })
    }

    fn as_color_count_rule(&self) -> Option<ColorCountRule> {
        // Prefer-Current is a pure counting rule: adopt the unique leader
        // at multiplicity >= 2, keep on ties.  The Prefer-Black tie-break
        // recolours on a tie *involving black*, which depends on which
        // colour is black rather than on counts alone, so it stays off the
        // plane lane.
        match self.tie_break {
            TieBreak::PreferCurrent => Some(ColorCountRule::plurality(Self::THRESHOLD as u32)),
            TieBreak::PreferBlack => None,
        }
    }
}

/// Reverse strong majority: adopt a colour held by at least
/// ⌈(d+1)/2⌉ = 3 of the 4 neighbours.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReverseStrongMajority;

impl ReverseStrongMajority {
    /// Strong-majority threshold for degree-4 vertices: ⌈(4+1)/2⌉ = 3.
    pub const THRESHOLD: usize = 3;
}

impl LocalRule for ReverseStrongMajority {
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color {
        match crate::counting::plurality(neighbors, Self::THRESHOLD) {
            Some(c) => c,
            None => own,
        }
    }

    fn name(&self) -> &'static str {
        "reverse strong majority"
    }

    fn as_two_state_threshold(&self) -> Option<TwoStateThreshold> {
        Some(TwoStateThreshold::majority(Self::THRESHOLD as u32))
    }

    fn as_color_count_rule(&self) -> Option<ColorCountRule> {
        // A unique plurality at multiplicity >= 3 — with threshold 3 on
        // degree 4 the uniqueness requirement is automatic, and on larger
        // degrees (TSS hubs) `counting::plurality` demands it too.
        Some(ColorCountRule::plurality(Self::THRESHOLD as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> Color {
        Color::new(i)
    }

    const WHITE: u16 = 1;
    const BLACK: u16 = 2;

    fn simple_pb(own: u16, nbrs: [u16; 4]) -> Color {
        ReverseSimpleMajority::prefer_black()
            .next_color(c(own), &[c(nbrs[0]), c(nbrs[1]), c(nbrs[2]), c(nbrs[3])])
    }

    fn simple_pc(own: u16, nbrs: [u16; 4]) -> Color {
        ReverseSimpleMajority::prefer_current()
            .next_color(c(own), &[c(nbrs[0]), c(nbrs[1]), c(nbrs[2]), c(nbrs[3])])
    }

    fn strong(own: u16, nbrs: [u16; 4]) -> Color {
        ReverseStrongMajority.next_color(c(own), &[c(nbrs[0]), c(nbrs[1]), c(nbrs[2]), c(nbrs[3])])
    }

    #[test]
    fn simple_majority_plain_cases() {
        // 3 black, 1 white: black under both tie-breaks.
        assert_eq!(simple_pb(WHITE, [BLACK, BLACK, BLACK, WHITE]), c(BLACK));
        assert_eq!(simple_pc(WHITE, [BLACK, BLACK, BLACK, WHITE]), c(BLACK));
        // 3 white, 1 black: white.
        assert_eq!(simple_pb(BLACK, [WHITE, WHITE, WHITE, BLACK]), c(WHITE));
        // 4 white: white.
        assert_eq!(simple_pb(BLACK, [WHITE; 4]), c(WHITE));
    }

    #[test]
    fn two_two_tie_differs_between_pb_and_pc() {
        // This is the exact situation discussed in the paper's
        // introduction: "in [15] if in the neighborhood of a node v there
        // are two black and two white nodes, v recolors black, whereas in
        // our case the node does not change color".
        let nbrs = [BLACK, BLACK, WHITE, WHITE];
        assert_eq!(simple_pb(WHITE, nbrs), c(BLACK));
        assert_eq!(simple_pc(WHITE, nbrs), c(WHITE));
        assert_eq!(simple_pc(BLACK, nbrs), c(BLACK));
    }

    #[test]
    fn multicolor_tie_without_black_keeps_current() {
        let nbrs = [3, 3, 4, 4];
        assert_eq!(simple_pb(1, nbrs), c(1));
        assert_eq!(simple_pc(1, nbrs), c(1));
    }

    #[test]
    fn below_threshold_keeps_current() {
        // In a multi-coloured configuration a 1-1-1-1 neighbourhood leaves
        // the vertex unchanged under simple majority.
        assert_eq!(simple_pb(5, [1, 2, 3, 4]), c(5));
    }

    #[test]
    fn strong_majority_needs_three() {
        assert_eq!(strong(WHITE, [BLACK, BLACK, BLACK, WHITE]), c(BLACK));
        assert_eq!(strong(WHITE, [BLACK, BLACK, BLACK, BLACK]), c(BLACK));
        // Only two black: not enough.
        assert_eq!(strong(WHITE, [BLACK, BLACK, WHITE, WHITE]), c(WHITE));
        assert_eq!(strong(WHITE, [BLACK, BLACK, WHITE, 3]), c(WHITE));
        // Three of a non-black colour also wins (multi-colour extension).
        assert_eq!(strong(1, [4, 4, 4, 2]), c(4));
    }

    #[test]
    fn strong_majority_is_stricter_than_smp() {
        // Proposition 2 rests on this: whenever reverse strong majority
        // recolours, the SMP rule would too, but not vice versa.
        use crate::smp::SmpProtocol;
        let smp = SmpProtocol;
        let patterns: [[u16; 4]; 5] = [
            [2, 2, 2, 2],
            [2, 2, 2, 1],
            [2, 2, 1, 3],
            [2, 2, 1, 1],
            [1, 2, 3, 4],
        ];
        for p in patterns {
            let nbrs = [c(p[0]), c(p[1]), c(p[2]), c(p[3])];
            let own = c(9);
            let strong_next = ReverseStrongMajority.next_color(own, &nbrs);
            if strong_next != own {
                assert_eq!(
                    smp.next_color(own, &nbrs),
                    strong_next,
                    "SMP must recolour whenever strong majority does ({p:?})"
                );
            }
        }
    }

    #[test]
    fn names_and_accessors() {
        assert_eq!(
            ReverseSimpleMajority::prefer_black().tie_break(),
            TieBreak::PreferBlack
        );
        assert!(ReverseSimpleMajority::prefer_black()
            .name()
            .contains("prefer-black"));
        assert!(ReverseSimpleMajority::prefer_current()
            .name()
            .contains("prefer-current"));
        assert_eq!(ReverseStrongMajority.name(), "reverse strong majority");
        assert!(!ReverseStrongMajority.is_monotone_for(c(2)));
    }
}
