//! The SMP-Protocol (Algorithm 1 of the paper).
//!
//! > *"a node recolors itself by directly assuming the color of the
//! > adjacent vertices either if two neighbors have the same color and the
//! > remaining ones have different colors in between or all the neighbors
//! > have the same color"*
//!
//! Formally (Algorithm 1): for a vertex `x` with neighbours `a, b, c, d`,
//! if `(r(a) = r(b) ∧ r(c) ≠ r(d)) ∨ (r(a) = r(b) = r(c) = r(d))` then
//! `r(x) ← r(a)`.
//!
//! Reading the quantification over the *choice* of the pair `{a, b}`, the
//! rule is equivalent to: **adopt the colour held by a unique plurality of
//! at least two neighbours; otherwise keep the current colour.**  The
//! neighbour multisets of a degree-4 vertex fall into exactly five
//! patterns:
//!
//! | pattern | example | action |
//! |---------|---------|--------|
//! | 4       | `k k k k` | adopt `k` (second clause) |
//! | 3-1     | `k k k c` | adopt `k` (pair of `k`s, remaining `k ≠ c`) |
//! | 2-1-1   | `k k c d` | adopt `k` (pair of `k`s, remaining `c ≠ d`) |
//! | 2-2     | `k k c c` | **no change** (whichever pair is chosen, the remaining two are equal) |
//! | 1-1-1-1 | `a b c d` | no change (no pair exists) |
//!
//! The 2-2 case is precisely where the paper departs from the
//! Prefer-Black / Prefer-Current rules of \[15\]/\[26\]: the SMP-Protocol gives
//! no colour priority, so restricted to two colours it does **not** reduce
//! to the rule of \[15\] (Remark 1 of the paper builds on this).

use crate::capability::{ColorCountRule, TwoStateThreshold};
use crate::counting::plurality;
use crate::rule::LocalRule;
use ctori_coloring::Color;

/// The paper's "simple majority with persuadable entities" protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SmpProtocol;

impl SmpProtocol {
    /// The number of equal-coloured neighbours required to trigger a
    /// recolouring (two, per Algorithm 1).
    pub const REQUIRED_PAIR: usize = 2;
}

impl LocalRule for SmpProtocol {
    #[inline]
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color {
        match plurality(neighbors, Self::REQUIRED_PAIR) {
            Some(c) => c,
            None => own,
        }
    }

    fn name(&self) -> &'static str {
        "SMP-Protocol"
    }

    fn as_two_state_threshold(&self) -> Option<TwoStateThreshold> {
        // On two colours "unique plurality of >= 2" degenerates to "strict
        // majority with a pair": ties (the 2-2 pattern) keep the colour.
        Some(TwoStateThreshold::majority(Self::REQUIRED_PAIR as u32))
    }

    fn as_color_count_rule(&self) -> Option<ColorCountRule> {
        // `next_color` is literally `plurality(neighbors, 2)` with the own
        // colour as fallback, which is the counting form verbatim.
        Some(ColorCountRule::plurality(Self::REQUIRED_PAIR as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> Color {
        Color::new(i)
    }

    fn step(own: u16, nbrs: [u16; 4]) -> Color {
        SmpProtocol.next_color(c(own), &[c(nbrs[0]), c(nbrs[1]), c(nbrs[2]), c(nbrs[3])])
    }

    #[test]
    fn all_four_equal_recolors() {
        // Second clause of Algorithm 1.
        assert_eq!(step(1, [2, 2, 2, 2]), c(2));
        // Also when the vertex already has the colour (no-op).
        assert_eq!(step(2, [2, 2, 2, 2]), c(2));
    }

    #[test]
    fn three_one_recolors_to_majority() {
        assert_eq!(step(1, [3, 3, 3, 2]), c(3));
        assert_eq!(step(5, [2, 3, 3, 3]), c(3));
    }

    #[test]
    fn two_one_one_recolors_to_the_pair() {
        // First clause: a pair with the remaining two different.
        assert_eq!(step(1, [4, 4, 2, 3]), c(4));
        assert_eq!(step(9, [2, 7, 7, 3]), c(7));
        // The pair may be the vertex's own colour — then nothing visibly
        // changes, but the rule still "fires".
        assert_eq!(step(4, [4, 4, 2, 3]), c(4));
    }

    #[test]
    fn two_two_tie_keeps_current_color() {
        // This is where the SMP-Protocol deliberately differs from
        // Prefer-Black: in [15] a 2-2 black/white split recolours black.
        assert_eq!(step(1, [2, 2, 3, 3]), c(1));
        assert_eq!(step(7, [1, 2, 1, 2]), c(7));
        // Even if the tie involves the vertex's own colour.
        assert_eq!(step(2, [2, 2, 3, 3]), c(2));
    }

    #[test]
    fn all_different_keeps_current_color() {
        assert_eq!(step(9, [1, 2, 3, 4]), c(9));
        assert_eq!(step(1, [1, 2, 3, 4]), c(1));
    }

    #[test]
    fn rule_is_independent_of_neighbor_order() {
        let nbrs = [c(2), c(5), c(5), c(9)];
        let mut permuted = nbrs;
        // check a few permutations
        for _ in 0..4 {
            permuted.rotate_left(1);
            assert_eq!(
                SmpProtocol.next_color(c(1), &nbrs),
                SmpProtocol.next_color(c(1), &permuted)
            );
        }
    }

    #[test]
    fn own_color_does_not_influence_decision() {
        // The rule reads the neighbourhood only; the vertex's own colour
        // matters only as the fallback.
        let nbrs = [c(3), c(3), c(1), c(2)];
        for own in 1..6 {
            assert_eq!(SmpProtocol.next_color(c(own), &nbrs), c(3));
        }
    }

    #[test]
    fn not_monotone_by_default() {
        assert!(!SmpProtocol.is_monotone_for(c(1)));
        assert_eq!(SmpProtocol.name(), "SMP-Protocol");
    }

    #[test]
    fn k_block_members_never_change() {
        // A vertex with two k-coloured neighbours (its block mates) and two
        // equal "outside" neighbours sees a 2-2 tie and keeps k; with two
        // different outside neighbours it re-adopts k.  Either way it stays
        // k — the invariant behind Definition 4.
        assert_eq!(step(2, [2, 2, 5, 5]), c(2));
        assert_eq!(step(2, [2, 2, 5, 6]), c(2));
        assert_eq!(step(2, [2, 2, 2, 6]), c(2));
    }

    #[test]
    fn non_k_block_members_never_become_k() {
        // A vertex with at least three non-k neighbours can never see two
        // k-coloured neighbours, so it can never adopt k (Definition 5).
        // Example: three neighbours coloured 3, one coloured k=2.
        assert_eq!(step(4, [3, 3, 3, 2]), c(3));
        // Example: neighbours 3, 4, 5 and one k=2: no pair at all.
        assert_eq!(step(4, [3, 4, 5, 2]), c(4));
    }
}
