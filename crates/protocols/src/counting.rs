//! Neighbourhood colour counting.
//!
//! All the rules in this crate reduce to questions about the multiset of
//! neighbour colours: "is there a unique colour held by at least two
//! neighbours?", "how many neighbours are black?".  [`ColorCounts`] answers
//! them without allocating: the paper's vertices have only four neighbours,
//! so a tiny fixed-capacity table is enough (it grows on the stack up to 8
//! distinct colours which covers every rule in the workspace, and falls
//! back to linear scanning beyond that).

use ctori_coloring::Color;

/// Maximum number of distinct colours a degree-4 vertex can see, plus slack
/// for the general-graph rules used by the TSS substrate.
const INLINE_CAPACITY: usize = 8;

/// A small multiset of colours with their multiplicities.
#[derive(Clone, Debug, Default)]
pub struct ColorCounts {
    entries: Vec<(Color, usize)>,
}

impl ColorCounts {
    /// Counts the colours of a neighbour slice.
    pub fn from_neighbors(neighbors: &[Color]) -> Self {
        let mut counts = ColorCounts {
            entries: Vec::with_capacity(INLINE_CAPACITY.min(neighbors.len())),
        };
        for &c in neighbors {
            counts.add(c);
        }
        counts
    }

    /// Adds one occurrence of a colour.
    pub fn add(&mut self, color: Color) {
        if let Some(e) = self.entries.iter_mut().find(|(c, _)| *c == color) {
            e.1 += 1;
        } else {
            self.entries.push((color, 1));
        }
    }

    /// Multiplicity of a colour.
    pub fn count(&self, color: Color) -> usize {
        self.entries
            .iter()
            .find(|(c, _)| *c == color)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Number of distinct colours seen.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// The highest multiplicity.
    pub fn max_count(&self) -> usize {
        self.entries.iter().map(|(_, n)| *n).max().unwrap_or(0)
    }

    /// The colour with the strictly highest multiplicity, if it is unique.
    ///
    /// Returns `None` when two or more colours tie for the maximum — the
    /// situation in which the SMP-Protocol leaves the vertex unchanged.
    pub fn unique_plurality(&self) -> Option<(Color, usize)> {
        let max = self.max_count();
        if max == 0 {
            return None;
        }
        let mut winner = None;
        for &(c, n) in &self.entries {
            if n == max {
                if winner.is_some() {
                    return None;
                }
                winner = Some((c, n));
            }
        }
        winner
    }

    /// Iterates over `(colour, multiplicity)` pairs in first-seen order.
    pub fn iter(&self) -> impl Iterator<Item = (Color, usize)> + '_ {
        self.entries.iter().copied()
    }
}

/// The colour held by a unique plurality of at least `min_count`
/// neighbours, if any.
///
/// This is the core decision of the SMP-Protocol (with `min_count = 2`):
/// the patterns 4-0-0-0, 3-1-0-0 and 2-1-1-0 have such a colour, the
/// patterns 2-2-0-0 and 1-1-1-1 do not.
pub fn plurality(neighbors: &[Color], min_count: usize) -> Option<Color> {
    let counts = ColorCounts::from_neighbors(neighbors);
    match counts.unique_plurality() {
        Some((c, n)) if n >= min_count => Some(c),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> Color {
        Color::new(i)
    }

    #[test]
    fn counts_and_distinct() {
        let counts = ColorCounts::from_neighbors(&[c(1), c(2), c(1), c(3)]);
        assert_eq!(counts.count(c(1)), 2);
        assert_eq!(counts.count(c(2)), 1);
        assert_eq!(counts.count(c(9)), 0);
        assert_eq!(counts.distinct(), 3);
        assert_eq!(counts.max_count(), 2);
    }

    #[test]
    fn unique_plurality_cases() {
        // 4-0: unique
        assert_eq!(
            ColorCounts::from_neighbors(&[c(5); 4]).unique_plurality(),
            Some((c(5), 4))
        );
        // 3-1: unique
        assert_eq!(
            ColorCounts::from_neighbors(&[c(1), c(1), c(1), c(2)]).unique_plurality(),
            Some((c(1), 3))
        );
        // 2-1-1: unique
        assert_eq!(
            ColorCounts::from_neighbors(&[c(1), c(1), c(2), c(3)]).unique_plurality(),
            Some((c(1), 2))
        );
        // 2-2: tie
        assert_eq!(
            ColorCounts::from_neighbors(&[c(1), c(1), c(2), c(2)]).unique_plurality(),
            None
        );
        // 1-1-1-1: four-way tie
        assert_eq!(
            ColorCounts::from_neighbors(&[c(1), c(2), c(3), c(4)]).unique_plurality(),
            None
        );
        // empty
        assert_eq!(ColorCounts::from_neighbors(&[]).unique_plurality(), None);
    }

    #[test]
    fn plurality_threshold() {
        assert_eq!(plurality(&[c(1), c(1), c(2), c(3)], 2), Some(c(1)));
        assert_eq!(plurality(&[c(1), c(1), c(2), c(3)], 3), None);
        assert_eq!(plurality(&[c(1), c(1), c(1), c(3)], 3), Some(c(1)));
        assert_eq!(plurality(&[c(1), c(2), c(3), c(4)], 1), None, "four-way tie");
        assert_eq!(plurality(&[c(7)], 1), Some(c(7)));
    }

    #[test]
    fn iteration_preserves_first_seen_order() {
        let counts = ColorCounts::from_neighbors(&[c(3), c(1), c(3), c(2)]);
        let order: Vec<Color> = counts.iter().map(|(col, _)| col).collect();
        assert_eq!(order, vec![c(3), c(1), c(2)]);
    }

    #[test]
    fn add_after_construction() {
        let mut counts = ColorCounts::default();
        counts.add(c(1));
        counts.add(c(1));
        counts.add(c(2));
        assert_eq!(counts.count(c(1)), 2);
        assert_eq!(counts.unique_plurality(), Some((c(1), 2)));
    }
}
