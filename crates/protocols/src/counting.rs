//! Neighbourhood colour counting.
//!
//! All the rules in this crate reduce to questions about the multiset of
//! neighbour colours: "is there a unique colour held by at least two
//! neighbours?", "how many neighbours are black?".  [`ColorCounts`] answers
//! them without allocating: the paper's vertices have only four neighbours,
//! so a tiny fixed-capacity table is enough (it grows on the stack up to 8
//! distinct colours which covers every rule in the workspace, and falls
//! back to linear scanning beyond that).

use ctori_coloring::Color;

/// Maximum number of distinct colours a degree-4 vertex can see, plus slack
/// for the general-graph rules used by the TSS substrate.
pub(crate) const INLINE_CAPACITY: usize = 8;

/// A small multiset of colours with their multiplicities.
///
/// The first `INLINE_CAPACITY` distinct colours live in a fixed array on
/// the stack, so the simulation hot loop (degree-4 tori: at most 4 distinct
/// colours per neighbourhood) never touches the heap.  Only neighbourhoods
/// with more distinct colours — large-degree hubs in the TSS substrate —
/// spill into a heap-allocated overflow vector.
#[derive(Clone, Debug)]
pub struct ColorCounts {
    inline: [(Color, usize); INLINE_CAPACITY],
    inline_len: usize,
    spill: Vec<(Color, usize)>,
}

impl Default for ColorCounts {
    fn default() -> Self {
        ColorCounts {
            inline: [(Color::UNSET, 0); INLINE_CAPACITY],
            inline_len: 0,
            spill: Vec::new(),
        }
    }
}

impl ColorCounts {
    /// Counts the colours of a neighbour slice.
    pub fn from_neighbors(neighbors: &[Color]) -> Self {
        let mut counts = ColorCounts::default();
        for &c in neighbors {
            counts.add(c);
        }
        counts
    }

    /// Adds one occurrence of a colour.
    pub fn add(&mut self, color: Color) {
        for e in &mut self.inline[..self.inline_len] {
            if e.0 == color {
                e.1 += 1;
                return;
            }
        }
        if let Some(e) = self.spill.iter_mut().find(|(c, _)| *c == color) {
            e.1 += 1;
        } else if self.inline_len < INLINE_CAPACITY {
            self.inline[self.inline_len] = (color, 1);
            self.inline_len += 1;
        } else {
            self.spill.push((color, 1));
        }
    }

    /// Multiplicity of a colour.
    pub fn count(&self, color: Color) -> usize {
        self.iter()
            .find(|&(c, _)| c == color)
            .map(|(_, n)| n)
            .unwrap_or(0)
    }

    /// Number of distinct colours seen.
    pub fn distinct(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    /// The highest multiplicity.
    pub fn max_count(&self) -> usize {
        self.iter().map(|(_, n)| n).max().unwrap_or(0)
    }

    /// The colour with the strictly highest multiplicity, if it is unique.
    ///
    /// Returns `None` when two or more colours tie for the maximum — the
    /// situation in which the SMP-Protocol leaves the vertex unchanged.
    pub fn unique_plurality(&self) -> Option<(Color, usize)> {
        let max = self.max_count();
        if max == 0 {
            return None;
        }
        let mut winner = None;
        for (c, n) in self.iter() {
            if n == max {
                if winner.is_some() {
                    return None;
                }
                winner = Some((c, n));
            }
        }
        winner
    }

    /// Iterates over `(colour, multiplicity)` pairs in first-seen order.
    pub fn iter(&self) -> impl Iterator<Item = (Color, usize)> + '_ {
        self.inline[..self.inline_len]
            .iter()
            .chain(self.spill.iter())
            .copied()
    }
}

/// The colour held by a unique plurality of at least `min_count`
/// neighbours, if any.
///
/// This is the core decision of the SMP-Protocol (with `min_count = 2`):
/// the patterns 4-0-0-0, 3-1-0-0 and 2-1-1-0 have such a colour, the
/// patterns 2-2-0-0 and 1-1-1-1 do not.
///
/// This is the innermost call of the simulation hot loop; it shares the
/// allocation-aware scan of `leader_stats` with the majority rules.
pub fn plurality(neighbors: &[Color], min_count: usize) -> Option<Color> {
    let stats = leader_stats(neighbors);
    if !stats.tied && stats.max > 0 && stats.max >= min_count {
        Some(stats.leader)
    } else {
        None
    }
}

/// The outcome of one plurality scan over a neighbour slice.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LeaderStats {
    /// The first colour reaching the maximum multiplicity
    /// ([`ctori_coloring::Color::UNSET`] for an empty slice).
    pub leader: Color,
    /// The maximum multiplicity (0 for an empty slice).
    pub max: usize,
    /// Whether two or more colours tie for the maximum.
    pub tied: bool,
    /// Whether black is among the colours reaching the maximum.
    pub black_leads: bool,
}

/// Counts the leading colour of a neighbour slice.
///
/// Small neighbourhoods (the paper's degree-4 vertices) use a direct
/// quadratic scan that touches no memory beyond the slice; larger
/// neighbourhoods (hubs in the TSS substrate) go through the
/// [`ColorCounts`] table so the cost stays O(d · distinct) instead of
/// O(d²).  Both the SMP plurality decision and the majority baselines
/// derive their answers from this single scan.
pub(crate) fn leader_stats(neighbors: &[Color]) -> LeaderStats {
    let mut stats = LeaderStats {
        leader: Color::UNSET,
        max: 0,
        tied: false,
        black_leads: false,
    };
    let mut consider = |c: Color, n: usize| {
        if n > stats.max {
            stats.leader = c;
            stats.max = n;
            stats.tied = false;
            stats.black_leads = c == Color::BLACK;
        } else if n == stats.max && n > 0 {
            stats.tied = true;
            stats.black_leads |= c == Color::BLACK;
        }
    };
    if neighbors.len() > INLINE_CAPACITY {
        for (c, n) in ColorCounts::from_neighbors(neighbors).iter() {
            consider(c, n);
        }
    } else {
        for (i, &c) in neighbors.iter().enumerate() {
            // Count each distinct colour at its first occurrence only.
            if neighbors[..i].contains(&c) {
                continue;
            }
            consider(c, neighbors[i..].iter().filter(|&&x| x == c).count());
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> Color {
        Color::new(i)
    }

    #[test]
    fn counts_and_distinct() {
        let counts = ColorCounts::from_neighbors(&[c(1), c(2), c(1), c(3)]);
        assert_eq!(counts.count(c(1)), 2);
        assert_eq!(counts.count(c(2)), 1);
        assert_eq!(counts.count(c(9)), 0);
        assert_eq!(counts.distinct(), 3);
        assert_eq!(counts.max_count(), 2);
    }

    #[test]
    fn unique_plurality_cases() {
        // 4-0: unique
        assert_eq!(
            ColorCounts::from_neighbors(&[c(5); 4]).unique_plurality(),
            Some((c(5), 4))
        );
        // 3-1: unique
        assert_eq!(
            ColorCounts::from_neighbors(&[c(1), c(1), c(1), c(2)]).unique_plurality(),
            Some((c(1), 3))
        );
        // 2-1-1: unique
        assert_eq!(
            ColorCounts::from_neighbors(&[c(1), c(1), c(2), c(3)]).unique_plurality(),
            Some((c(1), 2))
        );
        // 2-2: tie
        assert_eq!(
            ColorCounts::from_neighbors(&[c(1), c(1), c(2), c(2)]).unique_plurality(),
            None
        );
        // 1-1-1-1: four-way tie
        assert_eq!(
            ColorCounts::from_neighbors(&[c(1), c(2), c(3), c(4)]).unique_plurality(),
            None
        );
        // empty
        assert_eq!(ColorCounts::from_neighbors(&[]).unique_plurality(), None);
    }

    #[test]
    fn plurality_threshold() {
        assert_eq!(plurality(&[c(1), c(1), c(2), c(3)], 2), Some(c(1)));
        assert_eq!(plurality(&[c(1), c(1), c(2), c(3)], 3), None);
        assert_eq!(plurality(&[c(1), c(1), c(1), c(3)], 3), Some(c(1)));
        assert_eq!(
            plurality(&[c(1), c(2), c(3), c(4)], 1),
            None,
            "four-way tie"
        );
        assert_eq!(plurality(&[c(7)], 1), Some(c(7)));
    }

    #[test]
    fn plurality_hub_fallback_matches_small_path() {
        // Above INLINE_CAPACITY neighbours the ColorCounts fallback runs;
        // it must agree with the direct scan on the same multiset.
        let mut hub: Vec<Color> = Vec::new();
        for i in 0..20 {
            hub.push(c(1 + (i % 3)));
        }
        hub.push(c(1)); // colour 1 now has a strict plurality (8 vs 7 vs 6)
        assert!(hub.len() > INLINE_CAPACITY);
        assert_eq!(plurality(&hub, 2), Some(c(1)));
        // A perfect three-way tie stays a tie through the fallback.
        let tie: Vec<Color> = (0..21).map(|i| c(1 + (i % 3))).collect();
        assert_eq!(plurality(&tie, 1), None);
        // Threshold above the plurality count yields None.
        assert_eq!(plurality(&hub, 9), None);
    }

    #[test]
    fn iteration_preserves_first_seen_order() {
        let counts = ColorCounts::from_neighbors(&[c(3), c(1), c(3), c(2)]);
        let order: Vec<Color> = counts.iter().map(|(col, _)| col).collect();
        assert_eq!(order, vec![c(3), c(1), c(2)]);
    }

    #[test]
    fn add_after_construction() {
        let mut counts = ColorCounts::default();
        counts.add(c(1));
        counts.add(c(1));
        counts.add(c(2));
        assert_eq!(counts.count(c(1)), 2);
        assert_eq!(counts.unique_plurality(), Some((c(1), 2)));
    }
}
