//! Name-based rule registry.
//!
//! Scenario descriptions (`RunSpec` in `ctori-engine`, and eventually a
//! service endpoint) select rules **by string**, so that a complete run is
//! plain data with a text form.  This module is the single place where
//! those strings are defined: [`parse`] resolves a rule name (plus optional
//! parenthesised parameters) to an [`AnyRule`], and [`canonical_name`]
//! renders any [`AnyRule`] back to the exact string [`parse`] accepts, so
//! the two functions round-trip.
//!
//! Recognised forms:
//!
//! | string | rule |
//! |--------|------|
//! | `smp` | [`SmpProtocol`] |
//! | `prefer-black` | [`ReverseSimpleMajority::prefer_black`] |
//! | `prefer-current` | [`ReverseSimpleMajority::prefer_current`] |
//! | `strong-majority` | [`ReverseStrongMajority`] |
//! | `irreversible-smp(K)` | [`Irreversible`]`<`[`SmpProtocol`]`>` locking colour `K` |
//! | `threshold(K,T)` | [`ThresholdRule`] activating colour `K` at threshold `T` |
//!
//! Colour parameters are the 1-based colour indices of
//! [`ctori_coloring::Color`].
//!
//! Every registered rule advertises its capability forms
//! ([`crate::rule::LocalRule::as_two_state_threshold`] and
//! [`crate::rule::LocalRule::as_color_count_rule`]) through the
//! [`AnyRule`] forwarders, so a scenario selected *by name* qualifies
//! for the engine's packed and bit-plane lanes exactly like one built
//! from the concrete rule type — lane auto-selection never depends on
//! how the rule was constructed.

use crate::irreversible::Irreversible;
use crate::majority::{ReverseSimpleMajority, ReverseStrongMajority, TieBreak};
use crate::rule::AnyRule;
use crate::smp::SmpProtocol;
use crate::threshold::ThresholdRule;
use ctori_coloring::Color;

/// Why a rule string failed to resolve.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuleParseError {
    /// The rule name is not in the registry.
    UnknownRule {
        /// The name that failed to resolve.
        name: String,
    },
    /// The rule name was recognised but its parameter list was malformed.
    BadParameters {
        /// The rule whose parameters were malformed.
        rule: &'static str,
        /// What was wrong with them.
        detail: String,
    },
}

impl std::fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleParseError::UnknownRule { name } => {
                write!(f, "unknown rule {name:?}; known rules: ")?;
                for (i, known) in KNOWN_RULES.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(known)?;
                }
                Ok(())
            }
            RuleParseError::BadParameters { rule, detail } => {
                write!(f, "bad parameters for rule {rule}: {detail}")
            }
        }
    }
}

impl std::error::Error for RuleParseError {}

/// The rule forms [`parse`] accepts, for help texts and error messages.
pub const KNOWN_RULES: [&str; 6] = [
    "smp",
    "prefer-black",
    "prefer-current",
    "strong-majority",
    "irreversible-smp(K)",
    "threshold(K,T)",
];

/// Splits `name(a,b,c)` into `("name", ["a", "b", "c"])`; a bare `name`
/// yields an empty parameter list.
fn split_params(text: &str) -> (&str, Vec<&str>) {
    match text.find('(') {
        Some(open) if text.ends_with(')') => {
            let name = text[..open].trim();
            let inner = &text[open + 1..text.len() - 1];
            let params = inner.split(',').map(str::trim).collect();
            (name, params)
        }
        _ => (text.trim(), Vec::new()),
    }
}

fn color_param(rule: &'static str, raw: &str) -> Result<Color, RuleParseError> {
    let index: u16 = raw.parse().map_err(|_| RuleParseError::BadParameters {
        rule,
        detail: format!("{raw:?} is not a colour index"),
    })?;
    if index == 0 {
        return Err(RuleParseError::BadParameters {
            rule,
            detail: "colour indices are 1-based; 0 is the unset sentinel".into(),
        });
    }
    Ok(Color::new(index))
}

fn arity(rule: &'static str, params: &[&str], expected: usize) -> Result<(), RuleParseError> {
    if params.len() == expected {
        Ok(())
    } else {
        Err(RuleParseError::BadParameters {
            rule,
            detail: format!("expected {expected} parameter(s), got {}", params.len()),
        })
    }
}

/// Resolves a rule string to an [`AnyRule`].
pub fn parse(text: &str) -> Result<AnyRule, RuleParseError> {
    let (name, params) = split_params(text.trim());
    match name {
        "smp" => {
            arity("smp", &params, 0)?;
            Ok(AnyRule::Smp(SmpProtocol))
        }
        "prefer-black" => {
            arity("prefer-black", &params, 0)?;
            Ok(AnyRule::ReverseSimple(ReverseSimpleMajority::prefer_black()))
        }
        "prefer-current" => {
            arity("prefer-current", &params, 0)?;
            Ok(AnyRule::ReverseSimple(
                ReverseSimpleMajority::prefer_current(),
            ))
        }
        "strong-majority" => {
            arity("strong-majority", &params, 0)?;
            Ok(AnyRule::ReverseStrong(ReverseStrongMajority))
        }
        "irreversible-smp" => {
            arity("irreversible-smp", &params, 1)?;
            let target = color_param("irreversible-smp", params[0])?;
            Ok(AnyRule::IrreversibleSmp(Irreversible::new(
                SmpProtocol,
                target,
            )))
        }
        "threshold" => {
            arity("threshold", &params, 2)?;
            let active = color_param("threshold", params[0])?;
            let threshold: usize =
                params[1]
                    .parse()
                    .map_err(|_| RuleParseError::BadParameters {
                        rule: "threshold",
                        detail: format!("{:?} is not a threshold", params[1]),
                    })?;
            if threshold == 0 {
                return Err(RuleParseError::BadParameters {
                    rule: "threshold",
                    detail: "a zero threshold would activate everything at once".into(),
                });
            }
            Ok(AnyRule::Threshold(ThresholdRule::new(active, threshold)))
        }
        other => Err(RuleParseError::UnknownRule { name: other.into() }),
    }
}

/// Renders a rule as the exact string [`parse`] resolves back to it.
pub fn canonical_name(rule: &AnyRule) -> String {
    match rule {
        AnyRule::Smp(_) => "smp".into(),
        AnyRule::ReverseSimple(r) => match r.tie_break() {
            TieBreak::PreferBlack => "prefer-black".into(),
            TieBreak::PreferCurrent => "prefer-current".into(),
        },
        AnyRule::ReverseStrong(_) => "strong-majority".into(),
        AnyRule::IrreversibleSmp(r) => format!("irreversible-smp({})", r.target().index()),
        AnyRule::Threshold(r) => {
            format!("threshold({},{})", r.active_color().index(), r.threshold())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::LocalRule;

    #[test]
    fn every_known_form_parses_and_round_trips() {
        let examples = [
            "smp",
            "prefer-black",
            "prefer-current",
            "strong-majority",
            "irreversible-smp(3)",
            "threshold(2,2)",
        ];
        for text in examples {
            let rule = parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(canonical_name(&rule), text, "canonical form drifted");
            assert_eq!(parse(&canonical_name(&rule)), Ok(rule));
        }
    }

    #[test]
    fn parsed_rules_behave_like_their_constructors() {
        let c = |i| Color::new(i);
        let smp = parse("smp").unwrap();
        assert_eq!(smp.next_color(c(1), &[c(3), c(3), c(2), c(4)]), c(3));
        let threshold = parse("threshold(5,3)").unwrap();
        assert!(threshold.is_monotone_for(c(5)));
        let irr = parse("irreversible-smp(2)").unwrap();
        assert_eq!(irr.next_color(c(2), &[c(3), c(3), c(3), c(3)]), c(2));
    }

    /// Counting-form capability is what routes a *name-selected* scenario
    /// onto the multi-colour bit-plane lane, so a regression here silently
    /// drops parsed `RunSpec`s back to the generic stepper.  Prefer-black
    /// is the one deliberate exception: its tie-break depends on which
    /// colour is black, not on counts alone.
    #[test]
    fn registered_rules_advertise_their_counting_form() {
        let counting = [
            "smp",
            "prefer-current",
            "strong-majority",
            "irreversible-smp(3)",
            "threshold(2,2)",
        ];
        for text in counting {
            let rule = parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert!(
                rule.as_color_count_rule().is_some(),
                "{text}: no ColorCountRule capability"
            );
        }
        let prefer_black = parse("prefer-black").unwrap();
        assert!(prefer_black.as_color_count_rule().is_none());
    }

    #[test]
    fn whitespace_is_tolerated() {
        assert_eq!(parse("  smp  "), parse("smp"));
        assert_eq!(parse("threshold( 2 , 4 )"), parse("threshold(2,4)"));
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            parse("majority"),
            Err(RuleParseError::UnknownRule { .. })
        ));
        assert!(matches!(
            parse("threshold(2)"),
            Err(RuleParseError::BadParameters { .. })
        ));
        assert!(matches!(
            parse("threshold(0,2)"),
            Err(RuleParseError::BadParameters { .. })
        ));
        assert!(matches!(
            parse("threshold(2,0)"),
            Err(RuleParseError::BadParameters { .. })
        ));
        assert!(matches!(
            parse("irreversible-smp(x)"),
            Err(RuleParseError::BadParameters { .. })
        ));
        assert!(parse("smp(1)").is_err());
        let message = parse("nope").unwrap_err().to_string();
        assert!(message.contains("smp"), "error lists known rules");
    }
}
