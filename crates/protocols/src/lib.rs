//! # ctori-protocols
//!
//! Local recolouring rules for the *Dynamic Monopolies in Colored Tori*
//! reproduction.
//!
//! Every protocol studied in the paper (and every baseline it compares
//! against) is a **local rule**: a pure function from a vertex's current
//! colour and the multiset of its neighbours' colours to its next colour.
//! All vertices apply the rule simultaneously each round (the synchronous
//! model of Section III.D); the simulation engine in `ctori-engine` does
//! the orchestration, this crate only defines the rules.
//!
//! Provided rules:
//!
//! * [`SmpProtocol`] — the paper's SMP-Protocol (*simple majority with
//!   persuadable entities*, Algorithm 1): adopt the colour of a unique
//!   plurality of at least two neighbours; keep the current colour on
//!   2–2 ties or when all neighbours differ.
//! * [`ReverseSimpleMajority`] — the bi-coloured baseline of Flocchini et
//!   al. \[15\] with the two classical tie-breaking options
//!   ([`TieBreak::PreferBlack`] and [`TieBreak::PreferCurrent`], the
//!   Prefer-Black / Prefer-Current rules attributed to Peleg \[26\]).
//! * [`ReverseStrongMajority`] — the strong-majority variant (a vertex
//!   needs at least ⌈(d+1)/2⌉ = 3 equal-coloured neighbours to recolour),
//!   used by Proposition 2 for the upper-bound transfer.
//! * [`Irreversible`] — a wrapper making any rule monotone with respect to
//!   a target colour (once a vertex turns `k` it stays `k`), the
//!   "irreversible dynamo" model referenced in the related work.
//! * [`ThresholdRule`] — the linear threshold rule used by the
//!   target-set-selection substrate.
//!
//! Rules are also selectable **by string** through the [`registry`]
//! (`"smp"`, `"prefer-black"`, `"threshold(2,2)"`, …), which is how the
//! engine's declarative `RunSpec` scenarios name them.
//!
//! # Example
//!
//! ```
//! use ctori_coloring::Color;
//! use ctori_protocols::{LocalRule, SmpProtocol};
//!
//! let rule = SmpProtocol;
//! let c = |i| Color::new(i);
//! // Two neighbours coloured 3, the other two with different colours:
//! // adopt colour 3 (first clause of Algorithm 1).
//! assert_eq!(rule.next_color(c(1), &[c(3), c(3), c(2), c(4)]), c(3));
//! // A 2-2 tie: keep the current colour (the paper's deliberate
//! // departure from Prefer-Black).
//! assert_eq!(rule.next_color(c(1), &[c(3), c(3), c(2), c(2)]), c(1));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod capability;
pub mod counting;
pub mod irreversible;
pub mod majority;
pub mod registry;
pub mod rule;
pub mod smp;
pub mod threshold;

pub use capability::{ColorCountForm, ColorCountRule, TwoStateThreshold};
pub use counting::{plurality, ColorCounts};
pub use irreversible::Irreversible;
pub use majority::{ReverseSimpleMajority, ReverseStrongMajority, TieBreak};
pub use registry::RuleParseError;
pub use rule::{AnyRule, LocalRule};
pub use smp::SmpProtocol;
pub use threshold::ThresholdRule;
