//! Rule capabilities: static structure the engine can exploit.
//!
//! Every rule in this crate is a pure function of a vertex's own colour and
//! its neighbours' colours, but several of them have much more structure
//! than the generic [`crate::LocalRule::next_color`] signature exposes.
//! Restricted to **two** colours, each of the paper's rules degenerates to a
//! pair of counting thresholds — "flip to the other colour once at least
//! `t` neighbours hold it" — which is exactly the shape a bit-packed
//! simulation lane can evaluate with popcounts instead of colour multiset
//! scans.  [`TwoStateThreshold`] is the declarative description of that
//! degenerate form; rules advertise it through
//! [`crate::LocalRule::as_two_state_threshold`] and the engine resolves it
//! against the concrete colour pair and vertex degrees **once** at
//! simulator construction, so the hot loop never touches the rule object.

use ctori_coloring::Color;

/// Sentinel threshold meaning "this flip can never happen".
///
/// Returned by [`TwoStateThreshold::flip_thresholds`] for monotone rules
/// (an activated vertex never deactivates) and for locked colours; no
/// vertex degree can reach it.
pub const NEVER: u32 = u32::MAX;

/// The counting core of a two-state rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Base {
    /// Adopt the strict majority colour of the neighbourhood, provided at
    /// least `min_pair` neighbours hold it; on an exact tie the vertex
    /// keeps its colour unless `tie_to` names one of the two colours, in
    /// which case the tie resolves to that colour.
    Majority {
        min_pair: u32,
        tie_to: Option<Color>,
    },
    /// Monotone activation: a non-`active` vertex adopts `active` once at
    /// least `threshold` neighbours hold it, and `active` is never dropped.
    Activation { active: Color, threshold: u32 },
}

/// Declarative description of a rule restricted to a two-colour state
/// space.
///
/// A rule that returns one of these from
/// [`crate::LocalRule::as_two_state_threshold`] promises: *whenever every
/// vertex holds one of two colours `(zero, one)`, my
/// [`next_color`](crate::LocalRule::next_color) is equivalent to the pair
/// of flip thresholds produced by [`flip_thresholds`]* — for **every**
/// ordered colour pair and every degree.  The engine verifies nothing; the
/// property tests in `tests/stepper_equivalence.rs` pin the equivalence
/// for every rule in the workspace.
///
/// [`flip_thresholds`]: TwoStateThreshold::flip_thresholds
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoStateThreshold {
    base: Base,
    /// A colour whose holders never change again (the irreversible
    /// wrapper's target).
    locked: Option<Color>,
}

impl TwoStateThreshold {
    /// A strict-majority rule requiring a pair of at least `min_pair`
    /// equal-coloured neighbours, keeping the current colour on ties
    /// (the two-colour restriction of the SMP-Protocol with
    /// `min_pair = 2`, of reverse strong majority with `min_pair = 3`).
    pub fn majority(min_pair: u32) -> Self {
        TwoStateThreshold {
            base: Base::Majority {
                min_pair,
                tie_to: None,
            },
            locked: None,
        }
    }

    /// Monotone activation at `threshold` active neighbours (the linear
    /// threshold rule).
    pub fn activation(active: Color, threshold: u32) -> Self {
        TwoStateThreshold {
            base: Base::Activation { active, threshold },
            locked: None,
        }
    }

    /// Resolves exact ties towards `color` when it is one of the two state
    /// colours (the Prefer-Black tie-break of \[15\]).
    pub fn with_tie_to(mut self, color: Color) -> Self {
        if let Base::Majority { tie_to, .. } = &mut self.base {
            *tie_to = Some(color);
        }
        self
    }

    /// Locks `color`: a vertex holding it never changes again (the
    /// irreversible wrapper).
    pub fn with_locked(mut self, color: Color) -> Self {
        self.locked = Some(color);
        self
    }

    /// Resolves the descriptor against an ordered colour pair and a vertex
    /// degree.
    ///
    /// Returns `(up, down)`: a `zero`-coloured vertex of degree `degree`
    /// flips to `one` when at least `up` of its neighbours hold `one`, and
    /// a `one`-coloured vertex flips to `zero` when at least `down` of its
    /// neighbours hold `zero`.  [`NEVER`] marks a flip that cannot happen.
    /// The thresholds are exact for *any* degree, so non-regular graphs
    /// resolve per vertex.
    pub fn flip_thresholds(&self, zero: Color, one: Color, degree: usize) -> (u32, u32) {
        let d = degree as u32;
        let (mut up, mut down) = match self.base {
            Base::Majority { min_pair, tie_to } => {
                // Strict majority needs floor(d/2)+1 neighbours; an exact
                // tie (only possible for even d) additionally flips towards
                // the preferred colour at d/2.
                let strict = d / 2 + 1;
                let even = d.is_multiple_of(2);
                let up_base = if even && tie_to == Some(one) {
                    d / 2
                } else {
                    strict
                };
                let down_base = if even && tie_to == Some(zero) {
                    d / 2
                } else {
                    strict
                };
                (up_base.max(min_pair), down_base.max(min_pair))
            }
            Base::Activation { active, threshold } => {
                if one == active {
                    (threshold, NEVER)
                } else if zero == active {
                    (NEVER, threshold)
                } else {
                    // Neither state colour is the activation colour: no
                    // vertex ever sees an active neighbour, nothing moves.
                    (NEVER, NEVER)
                }
            }
        };
        if self.locked == Some(zero) {
            up = NEVER;
        }
        if self.locked == Some(one) {
            down = NEVER;
        }
        (up, down)
    }
}

/// The counting core of a rule over an **arbitrary** palette.
///
/// Marked `#[non_exhaustive]`: future protocols may add plane-evaluable
/// forms (weighted counts, per-colour thresholds), so downstream `match`es
/// must keep a wildcard arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ColorCountForm {
    /// Adopt the colour held by a **unique strict plurality** of at least
    /// `min_pair` neighbours; keep the current colour on ties or when no
    /// colour reaches `min_pair` (the SMP-Protocol with `min_pair = 2`).
    Plurality {
        /// Minimum multiplicity the winning colour must reach.
        min_pair: u32,
    },
    /// Monotone activation: a non-`active` vertex adopts `active` once at
    /// least `threshold` neighbours hold it; `active` is never dropped.
    Activation {
        /// The spreading colour.
        active: Color,
        /// How many `active` neighbours trigger adoption.
        threshold: u32,
    },
}

/// Declarative description of a rule as a pure function of **per-colour
/// neighbour counts**, valid on any palette.
///
/// Where [`TwoStateThreshold`] is the two-colour degenerate form a rule
/// exposes for the bit-packed lane, `ColorCountRule` is the full
/// multi-colour form the engine's **bit-plane lane** evaluates with
/// per-plane popcounts: a rule returning one of these from
/// [`crate::LocalRule::as_color_count_rule`] promises that its
/// [`next_color`](crate::LocalRule::next_color) depends on the
/// neighbourhood only through the multiset of neighbour colours, exactly
/// as [`ColorCountRule::next_color`] computes it — for every palette and
/// every degree.  The engine verifies nothing; the property tests in
/// `tests/stepper_equivalence.rs` pin the equivalence for every rule in
/// the workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColorCountRule {
    form: ColorCountForm,
    /// A colour whose holders never change again (the irreversible
    /// wrapper's target).
    locked: Option<Color>,
}

impl ColorCountRule {
    /// A unique-plurality rule requiring at least `min_pair`
    /// equal-coloured neighbours (the SMP-Protocol with `min_pair = 2`).
    pub fn plurality(min_pair: u32) -> Self {
        ColorCountRule {
            form: ColorCountForm::Plurality { min_pair },
            locked: None,
        }
    }

    /// Monotone activation at `threshold` active neighbours (the linear
    /// threshold rule on any palette: every non-`active` colour is
    /// inactive).
    pub fn activation(active: Color, threshold: u32) -> Self {
        ColorCountRule {
            form: ColorCountForm::Activation { active, threshold },
            locked: None,
        }
    }

    /// Locks `color`: a vertex holding it never changes again (the
    /// irreversible wrapper).
    pub fn with_locked(mut self, color: Color) -> Self {
        self.locked = Some(color);
        self
    }

    /// The counting form the engine compiles into plane operations.
    pub fn form(&self) -> ColorCountForm {
        self.form
    }

    /// The locked colour, if any.
    pub fn locked(&self) -> Option<Color> {
        self.locked
    }

    /// Reference evaluation against per-colour neighbour counts.
    ///
    /// `counts` holds one `(colour, multiplicity)` entry per distinct
    /// neighbour colour (order irrelevant; zero entries allowed).  This is
    /// the semantics the bit-plane kernel must reproduce; the engine's
    /// scalar fallback calls it directly.
    pub fn next_color(&self, own: Color, counts: &[(Color, u32)]) -> Color {
        if self.locked == Some(own) {
            return own;
        }
        match self.form {
            ColorCountForm::Plurality { min_pair } => {
                let mut leader: Option<(Color, u32)> = None;
                let mut tied = false;
                for &(c, n) in counts {
                    if n == 0 {
                        continue;
                    }
                    match leader {
                        Some((_, best)) if n > best => {
                            leader = Some((c, n));
                            tied = false;
                        }
                        Some((_, best)) if n == best => tied = true,
                        None => leader = Some((c, n)),
                        _ => {}
                    }
                }
                match leader {
                    Some((c, n)) if !tied && n >= min_pair => c,
                    _ => own,
                }
            }
            ColorCountForm::Activation { active, threshold } => {
                if own == active {
                    return own;
                }
                let active_neighbors = counts
                    .iter()
                    .find(|&&(c, _)| c == active)
                    .map(|&(_, n)| n)
                    .unwrap_or(0);
                if active_neighbors >= threshold {
                    active
                } else {
                    own
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> Color {
        Color::new(i)
    }

    #[test]
    fn smp_on_degree_four_is_three_three() {
        // Unique plurality of >= 2 on two colours and d = 4: a flip needs a
        // strict majority, i.e. 3 of 4 neighbours, in both directions.
        let t = TwoStateThreshold::majority(2);
        assert_eq!(t.flip_thresholds(c(1), c(2), 4), (3, 3));
        assert_eq!(t.flip_thresholds(c(2), c(1), 4), (3, 3));
    }

    #[test]
    fn min_pair_dominates_small_degrees() {
        // On a path (d = 1) the SMP pair requirement can never be met.
        let t = TwoStateThreshold::majority(2);
        let (up, down) = t.flip_thresholds(c(1), c(2), 1);
        assert!(up > 1 && down > 1, "no flip possible at degree 1");
        // d = 3: strict majority 2 already satisfies the pair requirement.
        assert_eq!(t.flip_thresholds(c(1), c(2), 3), (2, 2));
    }

    #[test]
    fn prefer_black_tie_break_is_asymmetric() {
        let t = TwoStateThreshold::majority(2).with_tie_to(Color::BLACK);
        // (white, black): white flips on a 2-2 tie, black needs 3 whites.
        assert_eq!(t.flip_thresholds(Color::WHITE, Color::BLACK, 4), (2, 3));
        // Pair order reversed: the tie now helps the `zero` colour.
        assert_eq!(t.flip_thresholds(Color::BLACK, Color::WHITE, 4), (3, 2));
        // A pair not containing black behaves like prefer-current.
        assert_eq!(t.flip_thresholds(c(3), c(4), 4), (3, 3));
    }

    #[test]
    fn activation_orientations() {
        let t = TwoStateThreshold::activation(c(2), 2);
        assert_eq!(t.flip_thresholds(c(1), c(2), 4), (2, NEVER));
        assert_eq!(t.flip_thresholds(c(2), c(1), 4), (NEVER, 2));
        assert_eq!(t.flip_thresholds(c(3), c(4), 4), (NEVER, NEVER));
    }

    #[test]
    fn locking_disables_one_direction() {
        let t = TwoStateThreshold::majority(2).with_locked(c(2));
        assert_eq!(t.flip_thresholds(c(1), c(2), 4), (3, NEVER));
        assert_eq!(t.flip_thresholds(c(2), c(1), 4), (NEVER, 3));
        // Locking a colour outside the pair changes nothing.
        let t = TwoStateThreshold::majority(2).with_locked(c(9));
        assert_eq!(t.flip_thresholds(c(1), c(2), 4), (3, 3));
    }

    #[test]
    fn color_count_plurality_matches_the_smp_patterns() {
        let rule = ColorCountRule::plurality(2);
        // 4-0, 3-1, 2-1-1: unique plurality of >= 2 adopts.
        assert_eq!(rule.next_color(c(1), &[(c(5), 4)]), c(5));
        assert_eq!(rule.next_color(c(1), &[(c(3), 3), (c(2), 1)]), c(3));
        assert_eq!(
            rule.next_color(c(1), &[(c(4), 2), (c(2), 1), (c(3), 1)]),
            c(4)
        );
        // 2-2 and 1-1-1-1: ties keep the current colour.
        assert_eq!(rule.next_color(c(1), &[(c(2), 2), (c(3), 2)]), c(1));
        assert_eq!(
            rule.next_color(c(9), &[(c(1), 1), (c(2), 1), (c(3), 1), (c(4), 1)]),
            c(9)
        );
        // Zero-count entries are ignored, empty neighbourhoods keep.
        assert_eq!(rule.next_color(c(1), &[(c(2), 0)]), c(1));
        assert_eq!(rule.next_color(c(1), &[]), c(1));
        assert_eq!(rule.form(), ColorCountForm::Plurality { min_pair: 2 });
        assert_eq!(rule.locked(), None);
    }

    #[test]
    fn color_count_activation_counts_only_the_active_color() {
        let rule = ColorCountRule::activation(c(2), 2);
        assert_eq!(rule.next_color(c(1), &[(c(2), 2), (c(3), 2)]), c(2));
        assert_eq!(rule.next_color(c(1), &[(c(2), 1), (c(3), 3)]), c(1));
        // Active vertices never change, regardless of the neighbourhood.
        assert_eq!(rule.next_color(c(2), &[(c(3), 4)]), c(2));
        // No active colour in sight: nothing moves.
        assert_eq!(rule.next_color(c(1), &[(c(3), 4)]), c(1));
    }

    #[test]
    fn color_count_locking_freezes_holders() {
        let rule = ColorCountRule::plurality(2).with_locked(c(7));
        assert_eq!(rule.locked(), Some(c(7)));
        // A locked holder keeps its colour against a unanimous vote.
        assert_eq!(rule.next_color(c(7), &[(c(3), 4)]), c(7));
        // Other vertices follow the plurality as usual (including into
        // the locked colour).
        assert_eq!(rule.next_color(c(1), &[(c(7), 3), (c(2), 1)]), c(7));
    }

    #[test]
    fn strong_majority_min_pair_raises_even_degrees() {
        let t = TwoStateThreshold::majority(3);
        assert_eq!(t.flip_thresholds(c(1), c(2), 4), (3, 3));
        // d = 6: strict majority 4 dominates the pair requirement.
        assert_eq!(t.flip_thresholds(c(1), c(2), 6), (4, 4));
        // d = 5: strict majority 3 equals the pair requirement.
        assert_eq!(t.flip_thresholds(c(1), c(2), 5), (3, 3));
    }
}
