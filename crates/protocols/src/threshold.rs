//! The linear threshold rule.
//!
//! The paper's introduction frames dynamos as a generalisation of *target
//! set selection* in the linear threshold model (Granovetter \[17\],
//! Kempe-Kleinberg-Tardos \[20\]): a vertex becomes *active* once the number
//! of its active neighbours reaches its threshold, and never deactivates.
//! The TSS substrate (`ctori-tss`) runs this rule on general graphs; it is
//! defined here so that it shares the [`LocalRule`] interface and can also
//! be run on tori for comparison with the SMP-Protocol.
//!
//! In colour terms: "active" is a distinguished colour `k`; every other
//! colour counts as inactive.  The rule is monotone by definition.

use crate::capability::{ColorCountRule, TwoStateThreshold};
use crate::rule::LocalRule;
use ctori_coloring::Color;

/// Linear threshold activation: a vertex adopts `active` once at least
/// `threshold` of its neighbours hold `active`, and then never changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThresholdRule {
    active: Color,
    threshold: usize,
}

impl ThresholdRule {
    /// Creates the rule with an activation colour and a uniform threshold.
    pub fn new(active: Color, threshold: usize) -> Self {
        assert!(
            threshold >= 1,
            "a zero threshold would activate everything at once"
        );
        ThresholdRule { active, threshold }
    }

    /// The simple-majority threshold for degree-4 tori: ⌈4/2⌉ = 2.
    pub fn simple_majority_on_torus(active: Color) -> Self {
        Self::new(active, 2)
    }

    /// The strong-majority threshold for degree-4 tori: ⌈(4+1)/2⌉ = 3.
    pub fn strong_majority_on_torus(active: Color) -> Self {
        Self::new(active, 3)
    }

    /// The activation colour.
    pub fn active_color(&self) -> Color {
        self.active
    }

    /// The activation threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }
}

impl LocalRule for ThresholdRule {
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color {
        if own == self.active {
            return own;
        }
        let active_neighbors = neighbors.iter().filter(|&&c| c == self.active).count();
        if active_neighbors >= self.threshold {
            self.active
        } else {
            own
        }
    }

    fn name(&self) -> &'static str {
        "linear threshold"
    }

    fn is_monotone_for(&self, k: Color) -> bool {
        k == self.active
    }

    fn as_two_state_threshold(&self) -> Option<TwoStateThreshold> {
        let threshold = u32::try_from(self.threshold).unwrap_or(u32::MAX);
        Some(TwoStateThreshold::activation(self.active, threshold))
    }

    fn as_color_count_rule(&self) -> Option<ColorCountRule> {
        // The rule only ever counts the activation colour, on any palette.
        let threshold = u32::try_from(self.threshold).unwrap_or(u32::MAX);
        Some(ColorCountRule::activation(self.active, threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> Color {
        Color::new(i)
    }

    #[test]
    fn activates_at_threshold() {
        let rule = ThresholdRule::new(c(2), 2);
        assert_eq!(rule.next_color(c(1), &[c(2), c(2), c(1), c(1)]), c(2));
        assert_eq!(rule.next_color(c(1), &[c(2), c(1), c(1), c(1)]), c(1));
        assert_eq!(rule.next_color(c(1), &[c(2); 4]), c(2));
    }

    #[test]
    fn active_vertices_stay_active() {
        let rule = ThresholdRule::new(c(2), 2);
        assert_eq!(rule.next_color(c(2), &[c(1); 4]), c(2));
        assert!(rule.is_monotone_for(c(2)));
        assert!(!rule.is_monotone_for(c(1)));
    }

    #[test]
    fn other_colors_are_all_inactive() {
        let rule = ThresholdRule::new(c(2), 2);
        // Colours 3 and 4 do not help activation.
        assert_eq!(rule.next_color(c(1), &[c(3), c(3), c(4), c(4)]), c(1));
    }

    #[test]
    fn works_with_arbitrary_degree() {
        let rule = ThresholdRule::new(c(2), 3);
        let nbrs = vec![c(2), c(2), c(2), c(1), c(1), c(1), c(1)];
        assert_eq!(rule.next_color(c(1), &nbrs), c(2));
        let nbrs_short = vec![c(2), c(2)];
        assert_eq!(rule.next_color(c(1), &nbrs_short), c(1));
    }

    #[test]
    fn preset_thresholds() {
        assert_eq!(ThresholdRule::simple_majority_on_torus(c(5)).threshold(), 2);
        assert_eq!(ThresholdRule::strong_majority_on_torus(c(5)).threshold(), 3);
        assert_eq!(
            ThresholdRule::simple_majority_on_torus(c(5)).active_color(),
            c(5)
        );
        assert_eq!(ThresholdRule::new(c(1), 1).name(), "linear threshold");
    }

    #[test]
    #[should_panic(expected = "zero threshold")]
    fn zero_threshold_rejected() {
        let _ = ThresholdRule::new(c(1), 0);
    }
}
