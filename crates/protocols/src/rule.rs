//! The [`LocalRule`] trait and a dynamic-dispatch wrapper.

use crate::capability::{ColorCountRule, TwoStateThreshold};
use crate::irreversible::Irreversible;
use crate::majority::{ReverseSimpleMajority, ReverseStrongMajority, TieBreak};
use crate::smp::SmpProtocol;
use crate::threshold::ThresholdRule;
use ctori_coloring::Color;

/// A synchronous local recolouring rule.
///
/// The rule sees only the vertex's own colour and its neighbours' colours
/// (in an arbitrary but fixed order) and returns the colour the vertex will
/// hold in the next round.  Rules must be pure: the engine may evaluate
/// them in any order and in parallel.
pub trait LocalRule: Send + Sync {
    /// Computes the next colour of a vertex.
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color;

    /// A short human-readable rule name (used in reports and benchmarks).
    fn name(&self) -> &'static str;

    /// Whether the rule is *monotone with respect to `k`*: a vertex that
    /// holds colour `k` can never lose it.  The engine uses this to skip
    /// the explicit monotonicity check when it is guaranteed by
    /// construction.
    fn is_monotone_for(&self, _k: Color) -> bool {
        false
    }

    /// Whether the rule is *local*: [`next_color`](LocalRule::next_color)
    /// is a pure function of the vertex's own colour and its neighbours'
    /// colours (no round counters, no randomness, no global state).
    ///
    /// Locality is what makes incremental *frontier stepping* sound: if
    /// neither a vertex nor any of its neighbours changed in round `t`,
    /// the vertex re-evaluates to the same colour in round `t + 1`, so the
    /// engine only needs to visit last round's changed vertices and their
    /// out-neighbours.  Every rule in this workspace is local; the default
    /// is `true` and a future non-local rule must override it to keep the
    /// engine on the exhaustive full-sweep path.
    fn is_local(&self) -> bool {
        true
    }

    /// The rule's two-colour degenerate form, if it has one.
    ///
    /// Returning `Some` promises that on any state space of exactly two
    /// colours the rule is equivalent to the returned
    /// [`TwoStateThreshold`] (see its docs for the exact contract).  The
    /// engine uses this to route two-colour runs onto its bit-packed
    /// simulation lane, where neighbourhoods are evaluated by popcount
    /// instead of colour multiset scans.  The default is `None`, which
    /// keeps the rule on the generic lane.
    fn as_two_state_threshold(&self) -> Option<TwoStateThreshold> {
        None
    }

    /// The rule's per-colour counting form, if it has one.
    ///
    /// Returning `Some` promises that on **any** palette the rule is
    /// equivalent to the returned [`ColorCountRule`] (see its docs for the
    /// exact contract).  The engine uses this to route multi-colour runs
    /// onto its bit-plane lane, where neighbourhoods are evaluated by
    /// per-plane popcounts over 64-vertex words instead of per-vertex
    /// colour multiset scans.  The default is `None`, which keeps
    /// multi-colour runs on the generic lane.
    fn as_color_count_rule(&self) -> Option<ColorCountRule> {
        None
    }
}

impl<R: LocalRule + ?Sized> LocalRule for &R {
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color {
        (**self).next_color(own, neighbors)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_monotone_for(&self, k: Color) -> bool {
        (**self).is_monotone_for(k)
    }
    fn is_local(&self) -> bool {
        (**self).is_local()
    }
    fn as_two_state_threshold(&self) -> Option<TwoStateThreshold> {
        (**self).as_two_state_threshold()
    }
    fn as_color_count_rule(&self) -> Option<ColorCountRule> {
        (**self).as_color_count_rule()
    }
}

impl<R: LocalRule + ?Sized> LocalRule for Box<R> {
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color {
        (**self).next_color(own, neighbors)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_monotone_for(&self, k: Color) -> bool {
        (**self).is_monotone_for(k)
    }
    fn is_local(&self) -> bool {
        (**self).is_local()
    }
    fn as_two_state_threshold(&self) -> Option<TwoStateThreshold> {
        (**self).as_two_state_threshold()
    }
    fn as_color_count_rule(&self) -> Option<ColorCountRule> {
        (**self).as_color_count_rule()
    }
}

/// An enumeration of the rules shipped with this workspace, for callers
/// that need to store heterogeneous rules without boxing.  This is the
/// value a [`crate::registry`] rule string resolves to, and therefore the
/// rule representation of declarative scenario descriptions.
///
/// Marked `#[non_exhaustive]`: new protocols will be added as scenarios
/// grow, so downstream `match`es must keep a wildcard arm.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AnyRule {
    /// The paper's SMP-Protocol.
    Smp(SmpProtocol),
    /// The bi-coloured reverse simple majority baseline.
    ReverseSimple(ReverseSimpleMajority),
    /// The bi-coloured reverse strong majority baseline.
    ReverseStrong(ReverseStrongMajority),
    /// The SMP-Protocol made irreversible for a target colour.
    IrreversibleSmp(Irreversible<SmpProtocol>),
    /// The linear threshold rule.
    Threshold(ThresholdRule),
}

impl AnyRule {
    /// Convenience constructor for the SMP protocol.
    pub fn smp() -> Self {
        AnyRule::Smp(SmpProtocol)
    }

    /// Convenience constructor for reverse simple majority with the given
    /// tie-break.
    pub fn reverse_simple(tie_break: TieBreak) -> Self {
        AnyRule::ReverseSimple(ReverseSimpleMajority::new(tie_break))
    }

    /// Convenience constructor for reverse strong majority.
    pub fn reverse_strong() -> Self {
        AnyRule::ReverseStrong(ReverseStrongMajority)
    }
}

impl From<SmpProtocol> for AnyRule {
    fn from(rule: SmpProtocol) -> Self {
        AnyRule::Smp(rule)
    }
}

impl From<ReverseSimpleMajority> for AnyRule {
    fn from(rule: ReverseSimpleMajority) -> Self {
        AnyRule::ReverseSimple(rule)
    }
}

impl From<ReverseStrongMajority> for AnyRule {
    fn from(rule: ReverseStrongMajority) -> Self {
        AnyRule::ReverseStrong(rule)
    }
}

impl From<Irreversible<SmpProtocol>> for AnyRule {
    fn from(rule: Irreversible<SmpProtocol>) -> Self {
        AnyRule::IrreversibleSmp(rule)
    }
}

impl From<ThresholdRule> for AnyRule {
    fn from(rule: ThresholdRule) -> Self {
        AnyRule::Threshold(rule)
    }
}

impl LocalRule for AnyRule {
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color {
        match self {
            AnyRule::Smp(r) => r.next_color(own, neighbors),
            AnyRule::ReverseSimple(r) => r.next_color(own, neighbors),
            AnyRule::ReverseStrong(r) => r.next_color(own, neighbors),
            AnyRule::IrreversibleSmp(r) => r.next_color(own, neighbors),
            AnyRule::Threshold(r) => r.next_color(own, neighbors),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyRule::Smp(r) => r.name(),
            AnyRule::ReverseSimple(r) => r.name(),
            AnyRule::ReverseStrong(r) => r.name(),
            AnyRule::IrreversibleSmp(r) => r.name(),
            AnyRule::Threshold(r) => r.name(),
        }
    }

    fn is_monotone_for(&self, k: Color) -> bool {
        match self {
            AnyRule::Smp(r) => r.is_monotone_for(k),
            AnyRule::ReverseSimple(r) => r.is_monotone_for(k),
            AnyRule::ReverseStrong(r) => r.is_monotone_for(k),
            AnyRule::IrreversibleSmp(r) => r.is_monotone_for(k),
            AnyRule::Threshold(r) => r.is_monotone_for(k),
        }
    }

    fn is_local(&self) -> bool {
        match self {
            AnyRule::Smp(r) => r.is_local(),
            AnyRule::ReverseSimple(r) => r.is_local(),
            AnyRule::ReverseStrong(r) => r.is_local(),
            AnyRule::IrreversibleSmp(r) => r.is_local(),
            AnyRule::Threshold(r) => r.is_local(),
        }
    }

    fn as_two_state_threshold(&self) -> Option<TwoStateThreshold> {
        match self {
            AnyRule::Smp(r) => r.as_two_state_threshold(),
            AnyRule::ReverseSimple(r) => r.as_two_state_threshold(),
            AnyRule::ReverseStrong(r) => r.as_two_state_threshold(),
            AnyRule::IrreversibleSmp(r) => r.as_two_state_threshold(),
            AnyRule::Threshold(r) => r.as_two_state_threshold(),
        }
    }

    fn as_color_count_rule(&self) -> Option<ColorCountRule> {
        match self {
            AnyRule::Smp(r) => r.as_color_count_rule(),
            AnyRule::ReverseSimple(r) => r.as_color_count_rule(),
            AnyRule::ReverseStrong(r) => r.as_color_count_rule(),
            AnyRule::IrreversibleSmp(r) => r.as_color_count_rule(),
            AnyRule::Threshold(r) => r.as_color_count_rule(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_rule_dispatches() {
        let c = |i| Color::new(i);
        let smp = AnyRule::smp();
        assert_eq!(smp.name(), "SMP-Protocol");
        assert_eq!(smp.next_color(c(1), &[c(2), c(2), c(3), c(4)]), c(2));

        let pb = AnyRule::reverse_simple(TieBreak::PreferBlack);
        assert_eq!(pb.name(), "reverse simple majority (prefer-black)");

        let strong = AnyRule::reverse_strong();
        assert_eq!(strong.name(), "reverse strong majority");
    }

    #[test]
    fn references_and_boxes_are_rules() {
        let c = |i| Color::new(i);
        let rule = SmpProtocol;
        let by_ref: &dyn LocalRule = &rule;
        assert_eq!(by_ref.next_color(c(1), &[c(2), c(2), c(3), c(4)]), c(2));
        let boxed: Box<dyn LocalRule> = Box::new(SmpProtocol);
        assert_eq!(boxed.next_color(c(1), &[c(2), c(2), c(3), c(4)]), c(2));
        assert_eq!(boxed.name(), "SMP-Protocol");
        assert!(!boxed.is_monotone_for(c(1)));
    }
}
