//! The [`LocalRule`] trait and a dynamic-dispatch wrapper.

use crate::irreversible::Irreversible;
use crate::majority::{ReverseSimpleMajority, ReverseStrongMajority, TieBreak};
use crate::smp::SmpProtocol;
use crate::threshold::ThresholdRule;
use ctori_coloring::Color;

/// A synchronous local recolouring rule.
///
/// The rule sees only the vertex's own colour and its neighbours' colours
/// (in an arbitrary but fixed order) and returns the colour the vertex will
/// hold in the next round.  Rules must be pure: the engine may evaluate
/// them in any order and in parallel.
pub trait LocalRule: Send + Sync {
    /// Computes the next colour of a vertex.
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color;

    /// A short human-readable rule name (used in reports and benchmarks).
    fn name(&self) -> &'static str;

    /// Whether the rule is *monotone with respect to `k`*: a vertex that
    /// holds colour `k` can never lose it.  The engine uses this to skip
    /// the explicit monotonicity check when it is guaranteed by
    /// construction.
    fn is_monotone_for(&self, _k: Color) -> bool {
        false
    }
}

impl<R: LocalRule + ?Sized> LocalRule for &R {
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color {
        (**self).next_color(own, neighbors)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_monotone_for(&self, k: Color) -> bool {
        (**self).is_monotone_for(k)
    }
}

impl<R: LocalRule + ?Sized> LocalRule for Box<R> {
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color {
        (**self).next_color(own, neighbors)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn is_monotone_for(&self, k: Color) -> bool {
        (**self).is_monotone_for(k)
    }
}

/// A closed enumeration of the rules shipped with this workspace, for
/// callers that need to store heterogeneous rules without boxing.
#[derive(Clone, Debug, PartialEq)]
pub enum AnyRule {
    /// The paper's SMP-Protocol.
    Smp(SmpProtocol),
    /// The bi-coloured reverse simple majority baseline.
    ReverseSimple(ReverseSimpleMajority),
    /// The bi-coloured reverse strong majority baseline.
    ReverseStrong(ReverseStrongMajority),
    /// The SMP-Protocol made irreversible for a target colour.
    IrreversibleSmp(Irreversible<SmpProtocol>),
    /// The linear threshold rule.
    Threshold(ThresholdRule),
}

impl AnyRule {
    /// Convenience constructor for the SMP protocol.
    pub fn smp() -> Self {
        AnyRule::Smp(SmpProtocol)
    }

    /// Convenience constructor for reverse simple majority with the given
    /// tie-break.
    pub fn reverse_simple(tie_break: TieBreak) -> Self {
        AnyRule::ReverseSimple(ReverseSimpleMajority::new(tie_break))
    }

    /// Convenience constructor for reverse strong majority.
    pub fn reverse_strong() -> Self {
        AnyRule::ReverseStrong(ReverseStrongMajority)
    }
}

impl LocalRule for AnyRule {
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color {
        match self {
            AnyRule::Smp(r) => r.next_color(own, neighbors),
            AnyRule::ReverseSimple(r) => r.next_color(own, neighbors),
            AnyRule::ReverseStrong(r) => r.next_color(own, neighbors),
            AnyRule::IrreversibleSmp(r) => r.next_color(own, neighbors),
            AnyRule::Threshold(r) => r.next_color(own, neighbors),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyRule::Smp(r) => r.name(),
            AnyRule::ReverseSimple(r) => r.name(),
            AnyRule::ReverseStrong(r) => r.name(),
            AnyRule::IrreversibleSmp(r) => r.name(),
            AnyRule::Threshold(r) => r.name(),
        }
    }

    fn is_monotone_for(&self, k: Color) -> bool {
        match self {
            AnyRule::Smp(r) => r.is_monotone_for(k),
            AnyRule::ReverseSimple(r) => r.is_monotone_for(k),
            AnyRule::ReverseStrong(r) => r.is_monotone_for(k),
            AnyRule::IrreversibleSmp(r) => r.is_monotone_for(k),
            AnyRule::Threshold(r) => r.is_monotone_for(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_rule_dispatches() {
        let c = |i| Color::new(i);
        let smp = AnyRule::smp();
        assert_eq!(smp.name(), "SMP-Protocol");
        assert_eq!(smp.next_color(c(1), &[c(2), c(2), c(3), c(4)]), c(2));

        let pb = AnyRule::reverse_simple(TieBreak::PreferBlack);
        assert_eq!(pb.name(), "reverse simple majority (prefer-black)");

        let strong = AnyRule::reverse_strong();
        assert_eq!(strong.name(), "reverse strong majority");
    }

    #[test]
    fn references_and_boxes_are_rules() {
        let c = |i| Color::new(i);
        let rule = SmpProtocol;
        let by_ref: &dyn LocalRule = &rule;
        assert_eq!(by_ref.next_color(c(1), &[c(2), c(2), c(3), c(4)]), c(2));
        let boxed: Box<dyn LocalRule> = Box::new(SmpProtocol);
        assert_eq!(boxed.next_color(c(1), &[c(2), c(2), c(3), c(4)]), c(2));
        assert_eq!(boxed.name(), "SMP-Protocol");
        assert!(!boxed.is_monotone_for(c(1)));
    }
}
