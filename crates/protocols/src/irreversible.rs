//! Irreversible (monotone) rule wrapper.
//!
//! The dynamo literature distinguishes *reversible* processes (vertices may
//! flip back, the paper's setting) from *irreversible* ones (once a vertex
//! adopts the spreading colour it keeps it forever — the model of
//! Chang & Lyuu \[9\] cited in the related work, and the standard model of
//! target set selection).  [`Irreversible`] turns any rule into its
//! irreversible counterpart with respect to a target colour `k`, which the
//! experiments use to compare the two regimes.

use crate::capability::{ColorCountRule, TwoStateThreshold};
use crate::rule::LocalRule;
use ctori_coloring::Color;

/// Makes an inner rule monotone with respect to a target colour: a vertex
/// that holds `target` never changes again, and a vertex that would lose
/// `target`... cannot, because it never holds it until it adopts it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Irreversible<R> {
    inner: R,
    target: Color,
}

impl<R: LocalRule> Irreversible<R> {
    /// Wraps `inner`, locking vertices once they adopt `target`.
    pub fn new(inner: R, target: Color) -> Self {
        Irreversible { inner, target }
    }

    /// The locked-in colour.
    pub fn target(&self) -> Color {
        self.target
    }

    /// The wrapped rule.
    pub fn inner(&self) -> &R {
        &self.inner
    }
}

impl<R: LocalRule> LocalRule for Irreversible<R> {
    fn next_color(&self, own: Color, neighbors: &[Color]) -> Color {
        if own == self.target {
            return own;
        }
        self.inner.next_color(own, neighbors)
    }

    fn name(&self) -> &'static str {
        "irreversible wrapper"
    }

    fn is_monotone_for(&self, k: Color) -> bool {
        k == self.target
    }

    fn is_local(&self) -> bool {
        self.inner.is_local()
    }

    fn as_two_state_threshold(&self) -> Option<TwoStateThreshold> {
        Some(
            self.inner
                .as_two_state_threshold()?
                .with_locked(self.target),
        )
    }

    fn as_color_count_rule(&self) -> Option<ColorCountRule> {
        Some(self.inner.as_color_count_rule()?.with_locked(self.target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::SmpProtocol;

    fn c(i: u16) -> Color {
        Color::new(i)
    }

    #[test]
    fn locked_vertices_never_change() {
        let rule = Irreversible::new(SmpProtocol, c(2));
        // A vertex already coloured 2 keeps 2 even if its neighbourhood
        // says otherwise.
        assert_eq!(rule.next_color(c(2), &[c(3), c(3), c(3), c(3)]), c(2));
        // A vertex of another colour follows the inner rule.
        assert_eq!(rule.next_color(c(1), &[c(3), c(3), c(4), c(5)]), c(3));
        assert_eq!(rule.next_color(c(1), &[c(2), c(2), c(4), c(5)]), c(2));
    }

    #[test]
    fn monotone_flag_matches_target() {
        let rule = Irreversible::new(SmpProtocol, c(7));
        assert!(rule.is_monotone_for(c(7)));
        assert!(!rule.is_monotone_for(c(1)));
        assert_eq!(rule.target(), c(7));
        assert_eq!(rule.inner().name(), "SMP-Protocol");
    }

    #[test]
    fn other_colors_may_still_flip_among_themselves() {
        let rule = Irreversible::new(SmpProtocol, c(2));
        // Non-target colours keep obeying the inner rule, including
        // adopting each other.
        assert_eq!(rule.next_color(c(4), &[c(5), c(5), c(1), c(3)]), c(5));
    }
}
