//! Band-parallel stepping: the intra-run work partitioner.
//!
//! [`crate::sweep`] parallelises *across* simulations; this module
//! parallelises *inside one synchronous round*.  The vertex (or word)
//! range of a lane is partitioned into contiguous horizontal **row
//! bands** — one per worker, aligned so a band owns whole cache tiles —
//! and each worker evaluates its band against the frozen pre-round state
//! into a band-local result buffer under `std::thread::scope` (the same
//! lock-free idiom as [`crate::sweep::parallel_map`]: no locks, no
//! channels, results joined in band order).
//!
//! # Why this is exact
//!
//! Every lane in the engine is strictly two-phase: the whole round is
//! *evaluated* against the immutable pre-round state, and the changes are
//! *applied* afterwards.  Band workers therefore only ever **read** shared
//! state and **write** band-local buffers, so the partitioning (and the
//! number of bands) can never affect the result — parallel stepping is
//! bit-identical to single-threaded stepping, which is what keeps
//! `threads` excluded from [`crate::spec::RunSpec::canonical_key`].
//!
//! # The halo-exchange invariant
//!
//! A band evaluating torus rows `[r0, r1)` reads at most one row beyond
//! each boundary (the north gather of row `r0` and the south gather of
//! row `r1 - 1`) — a one-word-row halo per neighbouring band.  Today the
//! halo needs no explicit exchange because all bands share one coherent
//! pre-round state in the same address space; a future NUMA split (bands
//! pinned to nodes with replicated planes) only has to ship those halo
//! rows between neighbours after each apply phase, nothing else.

/// Partitions `total` items into at most `bands` contiguous ranges.
///
/// Every range start (except the first) is a multiple of `align`, so a
/// band owns whole alignment units — the plane lane aligns to full tile
/// rows, keeping its cache-tiled traversal intact per band.  Returns at
/// least one range; ranges are non-empty (beyond the first when
/// `total == 0`), ordered, and cover `0..total` exactly.
pub fn band_ranges(total: usize, bands: usize, align: usize) -> Vec<(usize, usize)> {
    let align = align.max(1);
    let bands = bands.max(1);
    if total == 0 {
        return vec![(0, 0)];
    }
    // Ideal share, rounded *up* to the alignment: the last band absorbs
    // the remainder, so no band except the last is ever undersized.
    let chunk = total.div_ceil(bands).div_ceil(align) * align;
    let mut ranges = Vec::with_capacity(bands);
    let mut start = 0;
    while start < total {
        let end = (start + chunk).min(total);
        ranges.push((start, end));
        start = end;
    }
    ranges
}

/// Runs `f(band, start, end, &mut buffer)` for every band, in parallel
/// when there is more than one, and returns the per-band outputs in band
/// order.
///
/// `buffers` carries one reusable band-local accumulator per band (the
/// lanes pass their double-buffered patch/flip vectors), so the hot loop
/// allocates nothing; the closure's return value carries small per-band
/// summaries (flip counts, census deltas) merged by the caller after the
/// implicit barrier.  With a single band everything runs inline on the
/// calling thread — the sequential path stays allocation- and
/// spawn-free.
///
/// # Panics
///
/// Panics if `buffers.len() != ranges.len()`, or if a band worker
/// panics.
pub fn run_bands<B, T, F>(ranges: &[(usize, usize)], buffers: &mut [B], f: F) -> Vec<T>
where
    B: Send,
    T: Send,
    F: Fn(usize, usize, usize, &mut B) -> T + Sync,
{
    assert_eq!(ranges.len(), buffers.len(), "one buffer per band");
    if ranges.len() <= 1 {
        return ranges
            .iter()
            .zip(buffers)
            .enumerate()
            .map(|(band, (&(start, end), buffer))| f(band, start, end, buffer))
            .collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(ranges.len());
    out.resize_with(ranges.len(), || None);
    let f = &f;
    std::thread::scope(|scope| {
        let workers: Vec<_> = ranges
            .iter()
            .zip(buffers)
            .enumerate()
            .map(|(band, (&(start, end), buffer))| scope.spawn(move || f(band, start, end, buffer)))
            .collect();
        for (slot, worker) in out.iter_mut().zip(workers) {
            *slot = Some(worker.join().expect("band worker panicked"));
        }
    });
    out.into_iter()
        .map(|o| o.expect("every band joined"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_ranges_cover_exactly_and_stay_aligned() {
        for total in [0usize, 1, 63, 64, 65, 1000, 4096] {
            for bands in [1usize, 2, 3, 8, 16] {
                for align in [1usize, 16, 512] {
                    let ranges = band_ranges(total, bands, align);
                    assert!(!ranges.is_empty());
                    assert_eq!(ranges[0].0, 0);
                    assert_eq!(ranges.last().unwrap().1, total);
                    for pair in ranges.windows(2) {
                        assert_eq!(pair[0].1, pair[1].0, "contiguous");
                        assert!(pair[1].0.is_multiple_of(align), "aligned starts");
                    }
                    assert!(ranges.len() <= bands.max(1));
                    if total > 0 {
                        assert!(ranges.iter().all(|&(s, e)| e > s), "non-empty bands");
                    }
                }
            }
        }
    }

    #[test]
    fn one_band_when_alignment_swallows_the_total() {
        let ranges = band_ranges(100, 8, 512);
        assert_eq!(ranges, vec![(0, 100)]);
    }

    #[test]
    fn run_bands_joins_in_band_order() {
        let ranges = band_ranges(100, 4, 1);
        let mut buffers: Vec<Vec<usize>> = vec![Vec::new(); ranges.len()];
        let sums = run_bands(&ranges, &mut buffers, |band, start, end, buffer| {
            buffer.extend(start..end);
            band * 1000 + (end - start)
        });
        assert_eq!(sums.len(), ranges.len());
        for (band, ((start, end), buffer)) in ranges.iter().zip(&buffers).enumerate() {
            assert_eq!(buffer.len(), end - start);
            assert_eq!(buffer.first(), Some(start));
            assert_eq!(sums[band], band * 1000 + (end - start));
        }
        // The concatenation of band buffers is the sequential order.
        let merged: Vec<usize> = buffers.concat();
        assert_eq!(merged, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn single_band_runs_inline() {
        let mut buffers = vec![0u64];
        let out = run_bands(&[(0, 10)], &mut buffers, |band, start, end, buffer| {
            *buffer = (start..end).map(|v| v as u64).sum();
            band
        });
        assert_eq!(out, vec![0]);
        assert_eq!(buffers[0], 45);
    }
}
