//! Full configuration traces and recolouring-time matrices.
//!
//! Figures 5 and 6 of the paper display, for every vertex, the number of
//! rounds after which it assumes the target colour `k`.  [`run_with_trace`]
//! records every intermediate configuration (the grids are small), and
//! [`RecoloringTimes`] extracts the per-vertex adoption times in the same
//! matrix form the paper prints.

use crate::simulator::{RunConfig, RunReport, Simulator};
use ctori_coloring::{render_time_matrix, Color, Coloring};
use ctori_protocols::LocalRule;
use ctori_topology::Torus;

/// A recorded run: the initial configuration and every configuration after
/// each round, in order.
#[derive(Clone, Debug)]
pub struct Trace {
    configurations: Vec<Coloring>,
}

impl Trace {
    /// Builds a trace from recorded configurations (the first entry is the
    /// initial configuration).  This is how
    /// [`crate::observe::TraceObserver`] yields its recording.
    ///
    /// # Panics
    ///
    /// Panics if `configurations` is empty.
    pub fn from_configurations(configurations: Vec<Coloring>) -> Self {
        assert!(
            !configurations.is_empty(),
            "a trace needs at least the initial configuration"
        );
        Trace { configurations }
    }

    /// The configuration before any round was executed.
    pub fn initial(&self) -> &Coloring {
        &self.configurations[0]
    }

    /// The configuration after the last executed round.
    pub fn last(&self) -> &Coloring {
        self.configurations.last().expect("trace is never empty")
    }

    /// The configuration after `round` rounds (`0` = initial).
    pub fn after_round(&self, round: usize) -> Option<&Coloring> {
        self.configurations.get(round)
    }

    /// Number of recorded rounds (excluding the initial configuration).
    pub fn rounds(&self) -> usize {
        self.configurations.len() - 1
    }

    /// Iterates over all recorded configurations, starting with the
    /// initial one.
    pub fn iter(&self) -> impl Iterator<Item = &Coloring> {
        self.configurations.iter()
    }
}

/// Per-vertex adoption times of a target colour.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoloringTimes {
    rows: usize,
    cols: usize,
    times: Vec<Option<usize>>,
}

impl RecoloringTimes {
    /// Builds the adoption-time matrix from a run report that tracked
    /// times (`RunConfig::track_times_for`).
    pub fn from_report(rows: usize, cols: usize, report: &RunReport) -> Option<Self> {
        report
            .recoloring_times
            .as_ref()
            .map(|times| RecoloringTimes {
                rows,
                cols,
                times: times.clone(),
            })
    }

    /// Builds the matrix directly from a trace: the adoption time of a
    /// vertex is the first round after which its colour is `k` and stays
    /// `k` until the end of the trace.
    pub fn from_trace(trace: &Trace, k: Color) -> Self {
        let last = trace.last();
        let (rows, cols) = (last.rows(), last.cols());
        let total_rounds = trace.rounds();
        let mut times: Vec<Option<usize>> = vec![None; rows * cols];
        for (idx, slot) in times.iter_mut().enumerate() {
            let (r, c) = (idx / cols, idx % cols);
            // Walk backwards: find the latest round at which the vertex was
            // NOT k; its adoption time is the next round, provided it is k
            // from there to the end.
            if last.at(r, c) != k {
                continue;
            }
            let mut adoption = 0;
            for round in (0..=total_rounds).rev() {
                let conf = trace.after_round(round).expect("round within trace");
                if conf.at(r, c) != k {
                    adoption = round + 1;
                    break;
                }
            }
            *slot = Some(adoption);
        }
        RecoloringTimes { rows, cols, times }
    }

    /// The adoption time of the vertex at `(row, col)`.
    pub fn at(&self, row: usize, col: usize) -> Option<usize> {
        self.times[row * self.cols + col]
    }

    /// The largest adoption time — i.e. the round at which the
    /// configuration became monochromatic, if every vertex adopted.
    pub fn max_time(&self) -> Option<usize> {
        if self.times.iter().any(|t| t.is_none()) {
            return None;
        }
        self.times.iter().filter_map(|t| *t).max()
    }

    /// Number of rows of the matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The raw time vector (row-major).
    pub fn as_slice(&self) -> &[Option<usize>] {
        &self.times
    }

    /// Renders the matrix in the style of Figures 5 and 6.
    pub fn render(&self) -> String {
        render_time_matrix(self.rows, self.cols, &self.times)
    }
}

/// Runs a simulation recording every configuration, and returns the trace
/// together with the run report.
///
/// This is a thin composition of the engine's single run loop
/// ([`Simulator::run_with`]) with a [`crate::observe::TraceObserver`]:
/// the observer records every intermediate configuration while the
/// simulator owns termination, verified cycle detection and the tracking
/// switches of the [`RunConfig`].
pub fn run_with_trace<R: LocalRule>(
    torus: &Torus,
    rule: R,
    initial: Coloring,
    config: &RunConfig,
) -> (Trace, RunReport) {
    use crate::observe::{Observer, TraceObserver};

    let mut sim = Simulator::new(torus, rule, initial);
    let mut observer = TraceObserver::new();
    observer.on_start(&sim.view());
    let report = sim.run_with(config, |view| observer.on_round(view));
    (observer.into_trace(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Termination;
    use ctori_coloring::ColoringBuilder;
    use ctori_protocols::SmpProtocol;
    use ctori_topology::toroidal_mesh;

    fn k() -> Color {
        Color::new(2)
    }

    fn absorbing_config(t: &Torus) -> Coloring {
        ColoringBuilder::filled(t, k())
            .cell(1, 1, Color::new(1))
            .cell(1, 2, Color::new(3))
            .cell(2, 1, Color::new(4))
            .cell(2, 2, Color::new(5))
            .build()
    }

    #[test]
    fn trace_records_every_round() {
        let t = toroidal_mesh(5, 5);
        let (trace, report) = run_with_trace(
            &t,
            SmpProtocol,
            absorbing_config(&t),
            &RunConfig::for_dynamo(k()),
        );
        assert_eq!(report.termination, Termination::Monochromatic(k()));
        assert_eq!(trace.rounds(), report.rounds);
        assert!(trace.rounds() >= 1);
        assert_eq!(trace.initial().count(k()), 21);
        assert!(trace.last().is_monochromatic_in(k()));
        assert_eq!(trace.iter().count(), trace.rounds() + 1);
        assert!(trace.after_round(trace.rounds() + 5).is_none());
    }

    #[test]
    fn recoloring_times_from_trace_match_report() {
        let t = toroidal_mesh(5, 5);
        let cfg = RunConfig::for_dynamo(k());
        let (trace, report) = run_with_trace(&t, SmpProtocol, absorbing_config(&t), &cfg);
        let from_trace = RecoloringTimes::from_trace(&trace, k());
        let from_report = RecoloringTimes::from_report(5, 5, &report).unwrap();
        assert_eq!(from_trace, from_report);
        // Seeds have time 0; the patch has positive times.
        assert_eq!(from_trace.at(0, 0), Some(0));
        assert!(from_trace.at(1, 1).unwrap() >= 1);
        assert_eq!(from_trace.max_time(), Some(report.rounds));
        assert_eq!(from_trace.rows(), 5);
        assert_eq!(from_trace.cols(), 5);
    }

    #[test]
    fn render_produces_matrix_text() {
        let t = toroidal_mesh(5, 5);
        let cfg = RunConfig::for_dynamo(k());
        let (trace, _) = run_with_trace(&t, SmpProtocol, absorbing_config(&t), &cfg);
        let times = RecoloringTimes::from_trace(&trace, k());
        let text = times.render();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains('0'));
    }

    #[test]
    fn frozen_configuration_gives_zero_round_trace() {
        let t = toroidal_mesh(4, 4);
        let coloring =
            ctori_coloring::patterns::column_stripes(&t, &[Color::new(1), Color::new(2)]);
        let (trace, report) = run_with_trace(&t, SmpProtocol, coloring, &RunConfig::default());
        assert_eq!(report.termination, Termination::FixedPoint);
        assert_eq!(trace.rounds(), 1, "the single idle round is recorded");
        assert_eq!(trace.initial(), trace.last());
    }

    #[test]
    fn unconverged_vertices_have_no_time() {
        let t = toroidal_mesh(4, 4);
        let coloring =
            ctori_coloring::patterns::column_stripes(&t, &[Color::new(1), Color::new(2)]);
        let (trace, _) = run_with_trace(
            &t,
            SmpProtocol,
            coloring,
            &RunConfig::for_dynamo(Color::new(2)),
        );
        let times = RecoloringTimes::from_trace(&trace, Color::new(2));
        assert_eq!(times.max_time(), None);
        assert_eq!(times.at(0, 0), None); // colour-1 column never adopts
        assert_eq!(times.at(0, 1), Some(0)); // colour-2 column held it from the start
    }
}
