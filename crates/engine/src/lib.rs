//! # ctori-engine
//!
//! Synchronous simulation engine for the *Dynamic Monopolies in Colored
//! Tori* reproduction.
//!
//! The paper's model (Section III.D) is fully synchronous: every vertex
//! reads its neighbours' colours and all vertices update simultaneously,
//! one round per unit of time.  The engine provides:
//!
//! * [`Simulator`] — an incremental synchronous stepper over any
//!   [`ctori_topology::Topology`] and any [`ctori_protocols::LocalRule`],
//!   flattened onto the shared [`ctori_topology::Adjacency`] CSR kernel.
//!   After the first round only the *frontier* (last round's changed
//!   vertices and their out-neighbours) is re-evaluated, and two-colour
//!   runs of rules with a [`ctori_protocols::TwoStateThreshold`] form are
//!   routed onto a bit-packed lane ([`frontier::PackedFrontier`]) that
//!   counts neighbours by popcount; the per-round loop allocates nothing
//!   in either lane;
//! * [`state`] — the [`state::StateVec`] backends behind the simulator
//!   (generic colour vector vs. packed bitset);
//! * [`RunConfig`] / [`RunReport`] / [`Termination`] — run-to-convergence
//!   with fixed-point detection, optional cycle detection, optional
//!   monotonicity tracking and optional per-vertex recolouring times (the
//!   data behind Figures 5 and 6 and Theorems 7 and 8);
//! * [`trace`] — full configuration traces for figure rendering;
//! * [`metrics`] — per-round colour histograms;
//! * [`sweep`] — parallel parameter sweeps over many simulations using
//!   `std::thread::scope` workers with lock-free result collection.
//!
//! # Example
//!
//! ```
//! use ctori_topology::toroidal_mesh;
//! use ctori_coloring::{Color, ColoringBuilder};
//! use ctori_protocols::SmpProtocol;
//! use ctori_engine::{RunConfig, Simulator, Termination};
//!
//! // A 4x4 toroidal mesh, all colour 2 except a small patch of pairwise
//! // different colours: the patch is absorbed and the system converges to
//! // the 2-monochromatic configuration under the SMP protocol.
//! let torus = toroidal_mesh(4, 4);
//! let coloring = ColoringBuilder::filled(&torus, Color::new(2))
//!     .cell(1, 1, Color::new(1))
//!     .cell(1, 2, Color::new(3))
//!     .cell(2, 1, Color::new(4))
//!     .cell(2, 2, Color::new(5))
//!     .build();
//! let mut sim = Simulator::new(&torus, SmpProtocol, coloring);
//! let report = sim.run(&RunConfig::default());
//! assert_eq!(report.termination, Termination::Monochromatic(Color::new(2)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod adjacency;
pub mod frontier;
pub mod metrics;
#[cfg(feature = "naive-baseline")]
pub mod naive;
pub mod simulator;
pub mod state;
pub mod sweep;
pub mod trace;

pub use adjacency::Adjacency;
pub use frontier::PackedFrontier;
pub use metrics::{round_histogram, ColorHistogram};
pub use simulator::{RunConfig, RunReport, Simulator, StepReport, Termination};
pub use state::StateVec;
pub use sweep::{parallel_map, parallel_runs};
pub use trace::{run_with_trace, RecoloringTimes, Trace};
