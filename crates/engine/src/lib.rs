//! # ctori-engine
//!
//! Synchronous simulation engine for the *Dynamic Monopolies in Colored
//! Tori* reproduction.
//!
//! The paper's model (Section III.D) is fully synchronous: every vertex
//! reads its neighbours' colours and all vertices update simultaneously,
//! one round per unit of time.  The engine provides:
//!
//! * [`Simulator`] — an incremental synchronous stepper over any
//!   [`ctori_topology::Topology`] and any [`ctori_protocols::LocalRule`],
//!   flattened onto the shared [`ctori_topology::Adjacency`] CSR kernel.
//!   After the first round only the *frontier* (last round's changed
//!   vertices and their out-neighbours) is re-evaluated, and qualifying
//!   runs are routed onto bit kernels: two-colour runs of rules with a
//!   [`ctori_protocols::TwoStateThreshold`] form onto a bit-packed lane
//!   ([`frontier::PackedFrontier`]) that counts neighbours by popcount,
//!   and 3–16-colour runs of rules with a
//!   [`ctori_protocols::ColorCountRule`] form onto the multi-colour
//!   bit-plane lane ([`planes::PlaneLane`]) that evaluates 64 vertices
//!   per word; the per-round loop allocates nothing in any lane;
//! * [`state`] — the [`state::StateVec`] backends behind the simulator
//!   (generic colour vector vs. packed bitset vs. bit planes);
//! * [`RunConfig`] / [`RunReport`] / [`Termination`] — run-to-convergence
//!   with fixed-point detection, optional cycle detection, optional
//!   monotonicity tracking and optional per-vertex recolouring times (the
//!   data behind Figures 5 and 6 and Theorems 7 and 8);
//! * [`trace`] — full configuration traces for figure rendering;
//! * [`metrics`] — per-round colour histograms and the step-timing /
//!   lane-choice counters behind `round-stats:` reporting;
//! * [`sweep`] — parallel parameter sweeps over many simulations using
//!   `std::thread::scope` workers with lock-free result collection;
//! * [`parallel`] — band-parallel stepping *inside* one round: the word
//!   grid is split into tile-aligned row bands evaluated by scoped
//!   workers, with a per-band dense/sparse hybrid crossover; results are
//!   bit-identical to single-threaded stepping at every thread count.
//!
//! # The declarative execution API
//!
//! Interactive callers drive a [`Simulator`] directly; everything else —
//! experiments, batch sweeps, and the `ctori-service` server — describes a
//! scenario as data and hands it to the runner:
//!
//! * [`spec`] — [`RunSpec`]: a plain-data scenario (topology + rule by
//!   registry name + seed + engine policy) with a human-readable text
//!   round-trip ([`RunSpec::to_text`] / [`RunSpec::from_text`]);
//! * [`runner`] — [`Runner::execute`] turns one spec into a
//!   [`RunOutcome`]; [`Runner::sweep`] fans a parameter grid out over the
//!   sweep thread pool;
//! * [`observe`] — [`Observer`] hooks ([`TraceObserver`],
//!   [`HistogramObserver`], or custom) receive a [`StepView`] after every
//!   round, replacing bespoke recording loops;
//! * [`exec`] — the backend-agnostic async-style surface above all of it:
//!   [`Executor::submit`] returns a [`JobHandle`] with `status`/`wait`/
//!   `cancel` and a polled stream of typed [`RunEvent`]s.  The
//!   [`LocalExecutor`] worker pool serves it in-process; `ctori-service`
//!   serves the same trait over TCP, so the same caller code moves from
//!   laptop to server unchanged.
//!
//! ```
//! use ctori_engine::{Runner, RunSpec, RuleSpec, SeedSpec, TopologySpec};
//! use ctori_coloring::Color;
//!
//! let spec = RunSpec::new(
//!     TopologySpec::toroidal_mesh(6, 6),
//!     RuleSpec::parse("smp").unwrap(),
//!     SeedSpec::checkerboard(Color::new(1), Color::new(2)),
//! );
//! let outcome = Runner::new().execute(&spec);
//! // A checkerboard flips entirely every round: a verified period-2 cycle.
//! assert_eq!(outcome.termination, ctori_engine::Termination::Cycle { period: 2 });
//! ```
//!
//! # Example
//!
//! ```
//! use ctori_topology::toroidal_mesh;
//! use ctori_coloring::{Color, ColoringBuilder};
//! use ctori_protocols::SmpProtocol;
//! use ctori_engine::{RunConfig, Simulator, Termination};
//!
//! // A 4x4 toroidal mesh, all colour 2 except a small patch of pairwise
//! // different colours: the patch is absorbed and the system converges to
//! // the 2-monochromatic configuration under the SMP protocol.
//! let torus = toroidal_mesh(4, 4);
//! let coloring = ColoringBuilder::filled(&torus, Color::new(2))
//!     .cell(1, 1, Color::new(1))
//!     .cell(1, 2, Color::new(3))
//!     .cell(2, 1, Color::new(4))
//!     .cell(2, 2, Color::new(5))
//!     .build();
//! let mut sim = Simulator::new(&torus, SmpProtocol, coloring);
//! let report = sim.run(&RunConfig::default());
//! assert_eq!(report.termination, Termination::Monochromatic(Color::new(2)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod adjacency;
pub mod exec;
pub mod frontier;
pub mod metrics;
#[cfg(feature = "naive-baseline")]
pub mod naive;
pub mod observe;
pub mod parallel;
pub mod planes;
pub mod runner;
pub mod simulator;
pub mod spec;
pub mod state;
pub mod sweep;
pub mod telemetry;
pub mod trace;

pub use adjacency::Adjacency;
pub use exec::{
    ExecError, Executor, JobControl, JobHandle, JobState, JobStatus, LocalExecutor,
    LocalExecutorConfig, OutcomeCache, PoolStats, Priority, RunEvent, SubmitOptions,
};
pub use frontier::PackedFrontier;
pub use metrics::{round_histogram, ColorHistogram, RoundStats, StepStats};
pub use observe::{HistogramObserver, NullObserver, Observer, StepView, TraceObserver};
pub use parallel::{band_ranges, run_bands};
pub use planes::PlaneLane;
pub use runner::{OutcomeParseError, RunOutcome, Runner};
pub use simulator::{RunConfig, RunReport, Simulator, StepReport, Termination};
pub use spec::{
    BuiltTopology, EngineOptions, LaneSpec, PatternSpec, RuleSpec, RunSpec, SeedSpec, SpecKey,
    SpecParseError, TopologySpec,
};
pub use state::StateVec;
pub use sweep::{default_threads, parallel_map, parallel_runs};
pub use telemetry::{HistogramSnapshot, JobTrace, MetricsSnapshot, Registry, SpanEvent, SpanKind};
pub use trace::{run_with_trace, RecoloringTimes, Trace};
