//! Scenario execution: one entry point for single runs and batch sweeps.
//!
//! [`Runner`] is the execution half of the declarative API: it owns the
//! whole pipeline from a [`RunSpec`] to a [`RunOutcome`] — materialising
//! the topology, colouring the seed, resolving the rule, selecting the
//! simulation lane, and driving the run to termination — so callers never
//! touch a `Simulator` to run a scenario.  [`Runner::sweep`] fans a batch
//! of specs out over the [`crate::sweep::parallel_map`] thread pool,
//! which is the workspace's first end-to-end multi-scenario throughput
//! path (parameter grids: density × size × rule).
//!
//! ```
//! use ctori_engine::{Runner, RunSpec, RuleSpec, SeedSpec, TopologySpec, Termination};
//! use ctori_engine::spec::PatternSpec;
//! use ctori_coloring::Color;
//!
//! // Alternating white/black columns: every vertex sees a 2-2 tie, which
//! // the prefer-black tie-break resolves to black in a single round.
//! let spec = RunSpec::new(
//!     TopologySpec::toroidal_mesh(4, 4),
//!     RuleSpec::parse("prefer-black").unwrap(),
//!     SeedSpec::Pattern(PatternSpec::ColumnStripes(vec![Color::WHITE, Color::BLACK])),
//! );
//! let outcome = Runner::new().execute(&spec);
//! assert_eq!(outcome.termination, Termination::Monochromatic(Color::BLACK));
//! assert_eq!(outcome.rounds, 1);
//! ```

use crate::metrics::RoundStats;
use crate::observe::{NullObserver, Observer};
use crate::simulator::{RunReport, Simulator, Termination};
use crate::spec::{BuiltTopology, EngineOptions, LaneSpec, RunSpec};
use crate::sweep::parallel_map;
use ctori_coloring::{textio, Color, Coloring};
use ctori_protocols::AnyRule;
use std::time::Instant;

/// Errors produced when parsing a [`RunOutcome`] from its text form.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum OutcomeParseError {
    /// A required `key: value` line was missing.
    MissingField(&'static str),
    /// A line was not of the `key: value` form, or used an unknown key.
    UnexpectedLine {
        /// 1-based line number in the input.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A field's value was malformed.
    BadValue {
        /// Which field.
        field: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// The final-configuration glyph grid failed to parse.
    BadColoring(textio::ParseError),
}

impl std::fmt::Display for OutcomeParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutcomeParseError::MissingField(key) => write!(f, "missing `{key}:` line"),
            OutcomeParseError::UnexpectedLine { line, text } => {
                write!(f, "line {line}: expected `key: value`, got {text:?}")
            }
            OutcomeParseError::BadValue { field, detail } => {
                write!(f, "bad `{field}`: {detail}")
            }
            OutcomeParseError::BadColoring(e) => write!(f, "bad final configuration: {e}"),
        }
    }
}

impl std::error::Error for OutcomeParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OutcomeParseError::BadColoring(e) => Some(e),
            _ => None,
        }
    }
}

impl From<textio::ParseError> for OutcomeParseError {
    fn from(e: textio::ParseError) -> Self {
        OutcomeParseError::BadColoring(e)
    }
}

fn bad_value(field: &'static str, detail: impl Into<String>) -> OutcomeParseError {
    OutcomeParseError::BadValue {
        field,
        detail: detail.into(),
    }
}

/// The result of executing one [`RunSpec`].
///
/// Plain data: everything a caller (or a service response) needs without
/// keeping the simulator alive.  Like the spec itself, an outcome has a
/// line-oriented text round-trip ([`RunOutcome::to_text`] /
/// [`RunOutcome::from_text`]) so it can travel over the service wire
/// protocol and be stored as an artefact.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct RunOutcome {
    /// Canonical name of the rule that ran (registry form).
    pub rule: String,
    /// Why the run stopped.
    pub termination: Termination,
    /// Number of rounds executed.
    pub rounds: usize,
    /// The final configuration (grid-shaped; `1 × n` on general graphs).
    pub final_coloring: Coloring,
    /// Per-vertex adoption times of the tracked colour, when
    /// [`crate::spec::EngineOptions::track_times_for`] was set.
    pub recoloring_times: Option<Vec<Option<usize>>>,
    /// Whether the run was monotone in the checked colour, when
    /// [`crate::spec::EngineOptions::check_monotone_for`] was set.
    pub monotone: Option<bool>,
    /// Final count of the tracked/checked colour.
    pub final_target_count: Option<usize>,
    /// Whether the bit-packed two-colour lane drove the run.
    pub used_packed_lane: bool,
    /// Whether the multi-colour bit-plane lane drove the run.
    pub used_plane_lane: bool,
    /// Timed step profile of the run (thread count, dense/sparse band
    /// decisions, Gcell/s).  Pure observability: excluded from equality
    /// and absent from outcomes produced by engines predating it.
    pub round_stats: Option<RoundStats>,
}

impl PartialEq for RunOutcome {
    /// Equality ignores [`RunOutcome::round_stats`]: the stats record
    /// *how* a run executed (threads, wall-clock, band decisions), not
    /// what it computed, so outcomes of the same spec compare equal
    /// across thread counts, machines and cache hits.
    fn eq(&self, other: &Self) -> bool {
        self.rule == other.rule
            && self.termination == other.termination
            && self.rounds == other.rounds
            && self.final_coloring == other.final_coloring
            && self.recoloring_times == other.recoloring_times
            && self.monotone == other.monotone
            && self.final_target_count == other.final_target_count
            && self.used_packed_lane == other.used_packed_lane
            && self.used_plane_lane == other.used_plane_lane
    }
}

impl RunOutcome {
    /// Whether the run converged to the `k`-monochromatic configuration.
    pub fn reached_monochromatic(&self, k: Color) -> bool {
        self.termination.is_monochromatic_in(k)
    }

    /// Number of vertices holding `k` in the final configuration.
    pub fn final_count(&self, k: Color) -> usize {
        self.final_coloring.count(k)
    }

    /// The outcome in the engine's [`RunReport`] shape (for helpers such
    /// as [`crate::trace::RecoloringTimes::from_report`]).
    pub fn report(&self) -> RunReport {
        RunReport {
            termination: self.termination,
            rounds: self.rounds,
            recoloring_times: self.recoloring_times.clone(),
            monotone: self.monotone,
            final_target_count: self.final_target_count,
        }
    }

    /// Renders the outcome as text.  The output parses back with
    /// [`RunOutcome::from_text`] to an identical outcome.
    ///
    /// The format mirrors [`RunSpec::to_text`]: `key: value` lines, with
    /// the final configuration as a [`ctori_coloring::textio`] glyph grid
    /// after a trailing `final:` header (so the grid is always the last
    /// field, like an explicit seed).
    pub fn to_text(&self) -> String {
        let yes_no = |b: bool| if b { "yes" } else { "no" };
        let mut out = String::new();
        out.push_str(&format!("rule: {}\n", self.rule));
        out.push_str(&format!(
            "termination: {}\n",
            termination_to_text(self.termination)
        ));
        out.push_str(&format!("rounds: {}\n", self.rounds));
        out.push_str(&format!("packed-lane: {}\n", yes_no(self.used_packed_lane)));
        out.push_str(&format!("plane-lane: {}\n", yes_no(self.used_plane_lane)));
        out.push_str(&format!(
            "monotone: {}\n",
            match self.monotone {
                Some(b) => yes_no(b),
                None => "-",
            }
        ));
        out.push_str(&format!(
            "target-count: {}\n",
            match self.final_target_count {
                Some(n) => n.to_string(),
                None => "-".into(),
            }
        ));
        if let Some(stats) = &self.round_stats {
            out.push_str(&format!("round-stats: {}\n", stats.render()));
        }
        match &self.recoloring_times {
            None => out.push_str("times: none\n"),
            Some(times) => {
                out.push_str("times:");
                for t in times {
                    match t {
                        Some(round) => out.push_str(&format!(" {round}")),
                        None => out.push_str(" -"),
                    }
                }
                out.push('\n');
            }
        }
        out.push_str("final:\n");
        out.push_str(&textio::to_text(&self.final_coloring));
        out
    }

    /// Parses an outcome from the text form produced by
    /// [`RunOutcome::to_text`].
    pub fn from_text(text: &str) -> Result<RunOutcome, OutcomeParseError> {
        let mut rule = None;
        let mut termination = None;
        let mut rounds = None;
        let mut packed = None;
        let mut planes = None;
        let mut monotone = None;
        let mut target_count = None;
        let mut times = None;
        let mut round_stats = None;
        let mut final_coloring = None;

        let parse_yes_no = |field: &'static str, v: &str| match v {
            "yes" => Ok(true),
            "no" => Ok(false),
            other => Err(bad_value(field, format!("expected yes/no, got {other:?}"))),
        };

        let mut lines = text.lines().enumerate();
        while let Some((idx, line)) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            let (key, value) =
                line.split_once(':')
                    .ok_or_else(|| OutcomeParseError::UnexpectedLine {
                        line: idx + 1,
                        text: line.to_string(),
                    })?;
            let value = value.trim();
            match key.trim() {
                "rule" => rule = Some(value.to_string()),
                "termination" => termination = Some(termination_from_text(value)?),
                "rounds" => {
                    rounds = Some(value.parse().map_err(|_| {
                        bad_value("rounds", format!("{value:?} is not a round count"))
                    })?)
                }
                "packed-lane" => packed = Some(parse_yes_no("packed-lane", value)?),
                "plane-lane" => planes = Some(parse_yes_no("plane-lane", value)?),
                "monotone" => {
                    monotone = Some(match value {
                        "-" => None,
                        v => Some(parse_yes_no("monotone", v)?),
                    })
                }
                "target-count" => {
                    target_count = Some(match value {
                        "-" => None,
                        v => Some(v.parse().map_err(|_| {
                            bad_value("target-count", format!("{v:?} is not a count"))
                        })?),
                    })
                }
                "times" => {
                    times = Some(if value == "none" {
                        None
                    } else {
                        let mut parsed = Vec::new();
                        for token in value.split_whitespace() {
                            parsed.push(match token {
                                "-" => None,
                                t => Some(t.parse().map_err(|_| {
                                    bad_value("times", format!("{t:?} is not a round"))
                                })?),
                            });
                        }
                        Some(parsed)
                    })
                }
                "round-stats" => {
                    // Optional: older outcomes never carried the line,
                    // so absence parses to `None` — but a present,
                    // malformed line is still an error.
                    round_stats = Some(RoundStats::parse(value).ok_or_else(|| {
                        bad_value("round-stats", format!("{value:?} is not a stats record"))
                    })?);
                }
                "final" => {
                    // The glyph grid owns every remaining line.
                    let grid: String = lines
                        .by_ref()
                        .map(|(_, l)| l)
                        .collect::<Vec<_>>()
                        .join("\n");
                    final_coloring = Some(textio::from_text(&grid)?);
                }
                _ => {
                    return Err(OutcomeParseError::UnexpectedLine {
                        line: idx + 1,
                        text: line.to_string(),
                    })
                }
            }
        }

        Ok(RunOutcome {
            rule: rule.ok_or(OutcomeParseError::MissingField("rule"))?,
            termination: termination.ok_or(OutcomeParseError::MissingField("termination"))?,
            rounds: rounds.ok_or(OutcomeParseError::MissingField("rounds"))?,
            final_coloring: final_coloring.ok_or(OutcomeParseError::MissingField("final"))?,
            recoloring_times: times.ok_or(OutcomeParseError::MissingField("times"))?,
            monotone: monotone.ok_or(OutcomeParseError::MissingField("monotone"))?,
            final_target_count: target_count
                .ok_or(OutcomeParseError::MissingField("target-count"))?,
            used_packed_lane: packed.ok_or(OutcomeParseError::MissingField("packed-lane"))?,
            used_plane_lane: planes.ok_or(OutcomeParseError::MissingField("plane-lane"))?,
            round_stats,
        })
    }
}

/// Renders a [`Termination`] for the outcome text form.
fn termination_to_text(termination: Termination) -> String {
    match termination {
        Termination::Monochromatic(c) => format!("monochromatic {}", c.index()),
        Termination::FixedPoint => "fixed-point".into(),
        Termination::Cycle { period } => format!("cycle {period}"),
        Termination::RoundLimit => "round-limit".into(),
    }
}

/// Parses a [`Termination`] from the outcome text form.
fn termination_from_text(value: &str) -> Result<Termination, OutcomeParseError> {
    let mut tokens = value.split_whitespace();
    let head = tokens.next();
    let parsed = match head {
        Some("monochromatic") => {
            let raw = tokens
                .next()
                .ok_or_else(|| bad_value("termination", "monochromatic needs a colour"))?;
            let index: u16 = raw
                .parse()
                .map_err(|_| bad_value("termination", format!("{raw:?} is not a colour index")))?;
            if index == 0 {
                return Err(bad_value("termination", "colour indices are 1-based"));
            }
            Termination::Monochromatic(Color::new(index))
        }
        Some("fixed-point") => Termination::FixedPoint,
        Some("cycle") => {
            let raw = tokens
                .next()
                .ok_or_else(|| bad_value("termination", "cycle needs a period"))?;
            Termination::Cycle {
                period: raw.parse().map_err(|_| {
                    bad_value("termination", format!("{raw:?} is not a cycle period"))
                })?,
            }
        }
        Some("round-limit") => Termination::RoundLimit,
        other => {
            return Err(bad_value(
                "termination",
                format!("unknown termination {other:?}"),
            ))
        }
    };
    if tokens.next().is_some() {
        return Err(bad_value("termination", "trailing tokens"));
    }
    Ok(parsed)
}

/// Executes [`RunSpec`]s, alone or in parallel batches.
///
/// A `Runner` is cheap to create and holds no scenario state — only the
/// thread budget used by [`Runner::sweep`].
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    threads: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

impl Runner {
    /// A runner with the default thread budget
    /// ([`crate::sweep::default_threads`]: available parallelism, capped
    /// at 16 — the same policy as [`crate::sweep::parallel_runs`]).
    pub fn new() -> Self {
        Runner {
            threads: crate::sweep::default_threads(),
        }
    }

    /// A runner with an explicit thread budget (`1` = fully sequential).
    pub fn with_threads(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
        }
    }

    /// A runner honouring the thread budget of a scenario's
    /// [`EngineOptions::threads`] knob (`0` = the default budget).
    ///
    /// This is how a declarative batch chooses its own parallelism: render
    /// `threads=N` into the spec text, and execute the grid with
    /// `Runner::for_options(&spec.options).sweep(grid)`.
    pub fn for_options(options: &EngineOptions) -> Self {
        Runner::with_threads(options.effective_threads())
    }

    /// The thread budget used by [`Runner::sweep`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes one scenario to termination.
    ///
    /// # Panics
    ///
    /// Panics when the spec is structurally invalid (seed does not fit the
    /// topology, torus smaller than 2×2, …) — the same contracts as the
    /// underlying constructors, surfaced with their messages.
    pub fn execute(&self, spec: &RunSpec) -> RunOutcome {
        self.execute_observed(spec, &mut NullObserver)
    }

    /// Executes one scenario, reporting every round to `observer`.
    pub fn execute_observed(&self, spec: &RunSpec, observer: &mut dyn Observer) -> RunOutcome {
        let rule = spec.rule.resolve();
        let config = spec.options.run_config();
        let mut sim = build_simulator(spec, rule);
        let step_threads = self.resolve_step_threads(spec, sim.adjacency().node_count());
        sim.set_step_threads(step_threads);
        observer.on_start(&sim.view());
        // Deliberate timing code: the outcome reports total run time.
        #[allow(clippy::disallowed_methods)]
        let started = Instant::now();
        let report = sim.run_with(&config, |view| observer.on_round(view));
        let nanos = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let stats = sim.step_stats();
        let outcome = RunOutcome {
            rule: spec.rule.name(),
            termination: report.termination,
            rounds: report.rounds,
            final_coloring: sim.coloring(),
            recoloring_times: report.recoloring_times,
            monotone: report.monotone,
            final_target_count: report.final_target_count,
            used_packed_lane: sim.uses_packed_lane(),
            used_plane_lane: sim.uses_plane_lane(),
            round_stats: Some(RoundStats {
                rounds: stats.rounds,
                dense_bands: stats.dense_bands,
                sparse_bands: stats.sparse_bands,
                cells_evaluated: stats.cells_evaluated,
                threads: step_threads as u64,
                nanos,
            }),
        };
        observer.on_finish(&outcome);
        outcome
    }

    /// Resolves one scenario's intra-run step-parallelism.
    ///
    /// The runner's own thread budget is a **hard cap** — an executor
    /// pool grants each job a budget via [`Runner::with_threads`], and a
    /// spec cannot exceed it.  An explicit spec `threads=N` is clamped to
    /// the budget; `threads=auto` (`0`) spends the whole budget only when
    /// the grid is large enough to amortise the per-round band barrier
    /// (below ~2¹⁸ cells a single worker wins).  Step-parallelism never
    /// affects the outcome, only the wall clock.
    fn resolve_step_threads(&self, spec: &RunSpec, cells: usize) -> usize {
        /// Below this many cells, `threads=auto` stays sequential.
        const STEP_PARALLEL_FLOOR_CELLS: usize = 1 << 18;
        match spec.options.threads {
            0 => {
                if cells >= STEP_PARALLEL_FLOOR_CELLS {
                    self.threads
                } else {
                    1
                }
            }
            explicit => explicit.min(self.threads),
        }
    }

    /// Executes a batch of scenarios in parallel, preserving input order.
    ///
    /// The specs fan out over the engine's work-stealing sweep pool
    /// ([`crate::sweep::parallel_map`]); each scenario runs independently
    /// on one worker, so a grid of small runs scales with the thread
    /// budget.  Outer parallelism wins: each worker executes its run
    /// **sequentially** (step-parallelism forced to 1, whatever the spec
    /// says), because the batch already occupies the budget and nested
    /// band workers would only oversubscribe the machine.  Accepts any
    /// owned iterable (`Vec`, a `map` chain, …); callers holding a grid
    /// they want to keep use [`Runner::sweep_refs`] and clone nothing.
    pub fn sweep<I>(&self, specs: I) -> Vec<RunOutcome>
    where
        I: IntoIterator<Item = RunSpec>,
    {
        let sequential = Runner::with_threads(1);
        parallel_map(specs.into_iter().collect(), self.threads, move |spec| {
            sequential.execute(spec)
        })
    }

    /// As [`Runner::sweep`], but borrows the grid — no spec is cloned or
    /// consumed, so a caller can sweep the same grid repeatedly (the
    /// benchmark harness does exactly that).  Like [`Runner::sweep`],
    /// each run executes sequentially: outer parallelism wins.
    pub fn sweep_refs(&self, specs: &[RunSpec]) -> Vec<RunOutcome> {
        let sequential = Runner::with_threads(1);
        parallel_map(
            specs.iter().collect(),
            self.threads,
            move |spec: &&RunSpec| sequential.execute(spec),
        )
    }
}

/// Builds the simulator for a spec with the lane policy applied.
fn build_simulator(spec: &RunSpec, rule: AnyRule) -> Simulator<AnyRule> {
    let initial = spec.initial_coloring();
    let sim = match spec.topology.build() {
        BuiltTopology::Torus(torus) => Simulator::new(&torus, rule, initial),
        BuiltTopology::Graph(graph) => {
            Simulator::from_topology(&graph, rule, initial.cells().to_vec())
        }
    };
    match spec.options.lane {
        LaneSpec::Auto => sim,
        LaneSpec::GenericFrontier => sim.with_generic_lane(),
        LaneSpec::FullSweep => sim.with_generic_lane().with_full_sweep(),
        LaneSpec::Planes => sim.with_plane_lane(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::RunConfig;
    use crate::spec::{EngineOptions, RuleSpec, SeedSpec, TopologySpec};
    use ctori_protocols::SmpProtocol;
    use ctori_topology::{toroidal_mesh, TorusKind};

    fn c(i: u16) -> Color {
        Color::new(i)
    }

    /// An absorbing-patch spec: all colour 2 except a 2×2 patch of
    /// pairwise distinct colours.
    fn absorbing_spec() -> RunSpec {
        let torus = toroidal_mesh(5, 5);
        let coloring = ctori_coloring::ColoringBuilder::filled(&torus, c(2))
            .cell(1, 1, c(1))
            .cell(1, 2, c(3))
            .cell(2, 1, c(4))
            .cell(2, 2, c(5))
            .build();
        RunSpec::new(
            TopologySpec::toroidal_mesh(5, 5),
            RuleSpec::from_rule(SmpProtocol),
            SeedSpec::Explicit(coloring),
        )
        .for_dynamo(c(2))
    }

    #[test]
    fn execute_matches_hand_built_simulator() {
        let spec = absorbing_spec();
        let outcome = Runner::new().execute(&spec);

        let torus = toroidal_mesh(5, 5);
        let mut sim = Simulator::new(&torus, SmpProtocol, spec.initial_coloring());
        let report = sim.run(&RunConfig::for_dynamo(c(2)));

        assert_eq!(outcome.termination, report.termination);
        assert_eq!(outcome.rounds, report.rounds);
        assert_eq!(outcome.recoloring_times, report.recoloring_times);
        assert_eq!(outcome.monotone, report.monotone);
        assert_eq!(outcome.final_target_count, report.final_target_count);
        assert_eq!(outcome.final_coloring, sim.coloring());
        assert_eq!(outcome.rule, "smp");
        assert!(outcome.reached_monochromatic(c(2)));
        assert_eq!(outcome.final_count(c(2)), 25);
        assert_eq!(outcome.report().rounds, outcome.rounds);
    }

    #[test]
    fn spec_parsed_from_text_reproduces_the_builder_outcome() {
        let spec = absorbing_spec();
        let reparsed = RunSpec::from_text(&spec.to_text()).unwrap();
        let runner = Runner::with_threads(1);
        let a = runner.execute(&spec);
        let b = runner.execute(&reparsed);
        assert_eq!(a.termination, b.termination);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.final_coloring, b.final_coloring);
        assert_eq!(a.recoloring_times, b.recoloring_times);
    }

    #[test]
    fn lane_forcing_changes_the_backend_not_the_result() {
        let base = RunSpec::new(
            TopologySpec::torus(TorusKind::TorusCordalis, 6, 6),
            RuleSpec::parse("prefer-black").unwrap(),
            SeedSpec::nodes(Color::BLACK, Color::WHITE, [0usize, 1, 6, 7, 35]),
        );
        let runner = Runner::with_threads(1);
        let auto = runner.execute(&base);
        assert!(auto.used_packed_lane, "two colours select the packed lane");
        for lane in [LaneSpec::GenericFrontier, LaneSpec::FullSweep] {
            let forced = runner.execute(
                &base
                    .clone()
                    .with_options(EngineOptions::default().with_lane(lane)),
            );
            assert!(!forced.used_packed_lane);
            assert_eq!(forced.termination, auto.termination, "{lane:?}");
            assert_eq!(forced.rounds, auto.rounds, "{lane:?}");
            assert_eq!(forced.final_coloring, auto.final_coloring, "{lane:?}");
        }
    }

    #[test]
    fn plane_lane_forcing_changes_the_backend_not_the_result() {
        // Four colours: the packed lane is out, auto selects the bit-plane
        // lane, and forcing each lane must reproduce the same run.
        let base = RunSpec::new(
            TopologySpec::torus(TorusKind::TorusSerpentinus, 8, 8),
            RuleSpec::parse("smp").unwrap(),
            SeedSpec::Density {
                color: c(1),
                palette: 4,
                fraction: 0.3,
                rng_seed: 7,
            },
        );
        let runner = Runner::with_threads(1);
        let auto = runner.execute(&base);
        assert!(
            auto.used_plane_lane,
            "a 4-colour SMP torus run selects the plane lane"
        );
        assert!(!auto.used_packed_lane);
        for lane in [
            LaneSpec::GenericFrontier,
            LaneSpec::FullSweep,
            LaneSpec::Planes,
        ] {
            let forced = runner.execute(
                &base
                    .clone()
                    .with_options(EngineOptions::default().with_lane(lane)),
            );
            assert_eq!(forced.used_plane_lane, lane == LaneSpec::Planes, "{lane:?}");
            assert_eq!(forced.termination, auto.termination, "{lane:?}");
            assert_eq!(forced.rounds, auto.rounds, "{lane:?}");
            assert_eq!(forced.final_coloring, auto.final_coloring, "{lane:?}");
        }
    }

    #[test]
    fn graph_specs_run_on_general_topologies() {
        // Threshold-1 activation sweeping a 5-path, as a pure spec.
        let spec = RunSpec::new(
            TopologySpec::Graph {
                nodes: 5,
                edges: vec![(0, 1), (1, 2), (2, 3), (3, 4)],
            },
            RuleSpec::parse("threshold(2,1)").unwrap(),
            SeedSpec::nodes(c(2), c(1), [0usize]),
        );
        let outcome = Runner::new().execute(&spec);
        assert_eq!(outcome.termination, Termination::Monochromatic(c(2)));
        assert_eq!(outcome.rounds, 4);
        assert!(outcome.used_packed_lane);
        assert_eq!(outcome.final_coloring.rows(), 1, "graphs report flat");
    }

    #[test]
    fn sweep_preserves_order_and_matches_sequential() {
        let grid: Vec<RunSpec> = [4usize, 5, 6, 7]
            .into_iter()
            .flat_map(|size| {
                TorusKind::ALL.into_iter().map(move |kind| {
                    RunSpec::new(
                        TopologySpec::torus(kind, size, size),
                        RuleSpec::parse("smp").unwrap(),
                        SeedSpec::checkerboard(c(1), c(2)),
                    )
                })
            })
            .collect();
        let sequential: Vec<RunOutcome> = grid
            .iter()
            .map(|spec| Runner::with_threads(1).execute(spec))
            .collect();
        // An explicit thread budget so the batch path genuinely fans out
        // even on single-core CI machines.  sweep_refs borrows the grid;
        // sweep can then consume it — both must agree with sequential
        // execution.
        let runner = Runner::with_threads(4);
        let borrowed = runner.sweep_refs(&grid);
        let parallel = runner.sweep(grid);
        assert_eq!(parallel.len(), sequential.len());
        assert_eq!(borrowed.len(), sequential.len());
        for ((a, b), c) in parallel.iter().zip(&sequential).zip(&borrowed) {
            assert_eq!(a.termination, b.termination);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.final_coloring, b.final_coloring);
            assert_eq!(c.termination, b.termination);
            assert_eq!(c.final_coloring, b.final_coloring);
        }
    }

    #[test]
    fn sweep_accepts_any_owned_iterable() {
        // A map chain, no intermediate Vec at the call site.
        let outcomes = Runner::with_threads(2).sweep((4usize..6).map(|size| {
            RunSpec::new(
                TopologySpec::toroidal_mesh(size, size),
                RuleSpec::parse("smp").unwrap(),
                SeedSpec::checkerboard(c(1), c(2)),
            )
        }));
        assert_eq!(outcomes.len(), 2);
    }

    #[test]
    fn outcome_text_round_trips() {
        // A tracked run: every Option field populated.
        let tracked = Runner::with_threads(1).execute(&absorbing_spec());
        let text = tracked.to_text();
        assert_eq!(RunOutcome::from_text(&text).unwrap(), tracked, "\n{text}");
        // An untracked cycle: None fields and a Cycle termination.
        let spec = RunSpec::new(
            TopologySpec::toroidal_mesh(4, 4),
            RuleSpec::parse("smp").unwrap(),
            SeedSpec::checkerboard(c(1), c(2)),
        );
        let cycled = Runner::with_threads(1).execute(&spec);
        assert!(matches!(cycled.termination, Termination::Cycle { .. }));
        assert_eq!(cycled.recoloring_times, None);
        let text = cycled.to_text();
        assert_eq!(RunOutcome::from_text(&text).unwrap(), cycled, "\n{text}");
    }

    #[test]
    fn outcome_parse_errors_are_descriptive() {
        assert!(matches!(
            RunOutcome::from_text(""),
            Err(OutcomeParseError::MissingField("rule"))
        ));
        assert!(matches!(
            RunOutcome::from_text("nonsense"),
            Err(OutcomeParseError::UnexpectedLine { line: 1, .. })
        ));
        let good = Runner::with_threads(1).execute(&absorbing_spec()).to_text();
        let broken = good.replace("termination: monochromatic 2", "termination: vanished");
        match RunOutcome::from_text(&broken) {
            Err(OutcomeParseError::BadValue { field, .. }) => assert_eq!(field, "termination"),
            other => panic!("expected BadValue, got {other:?}"),
        }
        let broken = good.replace("packed-lane: ", "packed-lane: maybe");
        assert!(RunOutcome::from_text(&broken).is_err());
        let broken = good.replace("plane-lane: ", "plane-lane: maybe");
        assert!(RunOutcome::from_text(&broken).is_err());
        // Dropping the plane-lane line entirely is a MissingField, not a
        // silent default — outcomes from older engines must not parse.
        let dropped: String = good
            .lines()
            .filter(|l| !l.starts_with("plane-lane:"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            RunOutcome::from_text(&dropped),
            Err(OutcomeParseError::MissingField("plane-lane"))
        ));
        // Errors compose with Box<dyn Error>.
        let boxed: Box<dyn std::error::Error> = Box::new(RunOutcome::from_text("").unwrap_err());
        assert!(boxed.to_string().contains("rule"));
    }

    #[test]
    fn round_stats_are_reported_and_survive_the_text_form() {
        let outcome = Runner::with_threads(1).execute(&absorbing_spec());
        let stats = outcome.round_stats.expect("every run reports stats");
        assert_eq!(stats.rounds, outcome.rounds as u64);
        assert_eq!(stats.threads, 1);
        assert!(stats.cells_evaluated > 0);
        let text = outcome.to_text();
        let reparsed = RunOutcome::from_text(&text).unwrap();
        assert_eq!(reparsed.round_stats, outcome.round_stats, "\n{text}");
        // Outcomes from engines predating the line still parse…
        let legacy_text: String = text
            .lines()
            .filter(|l| !l.starts_with("round-stats:"))
            .map(|l| format!("{l}\n"))
            .collect();
        let legacy = RunOutcome::from_text(&legacy_text).unwrap();
        assert_eq!(legacy.round_stats, None);
        // …and equality ignores the stats either way.
        assert_eq!(legacy, outcome);
        // A present but malformed line is still an error.
        let broken = text.replace("round-stats: rounds=", "round-stats: bogus=");
        match RunOutcome::from_text(&broken) {
            Err(OutcomeParseError::BadValue { field, .. }) => assert_eq!(field, "round-stats"),
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn step_threads_change_the_profile_not_the_outcome() {
        let spec = absorbing_spec();
        let mut threaded = spec.clone();
        threaded.options = threaded.options.with_threads(8);
        assert_eq!(
            spec.canonical_key(),
            threaded.canonical_key(),
            "threads stay out of the canonical key"
        );
        let seq = Runner::with_threads(1).execute(&spec);
        let par = Runner::with_threads(8).execute(&threaded);
        assert_eq!(par, seq, "outcome equality across thread counts");
        assert_eq!(par.round_stats.unwrap().threads, 8);
        assert_eq!(seq.round_stats.unwrap().threads, 1);
        // A pool-granted budget of 1 caps even an explicit threads=8.
        let capped = Runner::with_threads(1).execute(&threaded);
        assert_eq!(capped.round_stats.unwrap().threads, 1);
        assert_eq!(capped, seq);
    }

    #[test]
    fn runner_for_options_honours_the_thread_knob() {
        let options = EngineOptions::default().with_threads(5);
        assert_eq!(Runner::for_options(&options).threads(), 5);
        let auto = EngineOptions::default();
        assert_eq!(
            Runner::for_options(&auto).threads(),
            crate::sweep::default_threads()
        );
    }

    #[test]
    fn observers_see_every_round() {
        struct CountingObserver {
            starts: usize,
            rounds: usize,
            finished: Option<usize>,
        }
        impl Observer for CountingObserver {
            fn on_start(&mut self, view: &crate::observe::StepView<'_>) {
                assert_eq!(view.round(), 0);
                self.starts += 1;
            }
            fn on_round(&mut self, view: &crate::observe::StepView<'_>) {
                assert_eq!(view.round(), self.rounds + 1);
                self.rounds += 1;
            }
            fn on_finish(&mut self, outcome: &RunOutcome) {
                self.finished = Some(outcome.rounds);
            }
        }
        let mut observer = CountingObserver {
            starts: 0,
            rounds: 0,
            finished: None,
        };
        let outcome = Runner::new().execute_observed(&absorbing_spec(), &mut observer);
        assert_eq!(observer.starts, 1);
        assert_eq!(observer.rounds, outcome.rounds);
        assert_eq!(observer.finished, Some(outcome.rounds));
    }
}
