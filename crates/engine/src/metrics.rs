//! Per-round metrics.
//!
//! The experiments plot how the population of each colour evolves round by
//! round (e.g. to show the monotone growth of `V^k` for a dynamo, or the
//! stagnation of a non-dynamo configuration).

use crate::simulator::Simulator;
use ctori_coloring::{Color, Coloring, Palette};
use ctori_protocols::LocalRule;

/// A colour histogram at a specific round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColorHistogram {
    /// The round the histogram was taken at (0 = initial configuration).
    pub round: usize,
    /// `(colour, number of vertices)` pairs, one per palette colour.
    pub counts: Vec<(Color, usize)>,
}

impl ColorHistogram {
    /// The count for a specific colour (0 if the colour is not listed).
    pub fn count(&self, color: Color) -> usize {
        self.counts
            .iter()
            .find(|(c, _)| *c == color)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Total number of vertices covered by the histogram.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// The colour with the largest population (ties broken by colour
    /// index).
    pub fn dominant(&self) -> Option<Color> {
        self.counts
            .iter()
            .max_by_key(|(c, n)| (*n, std::cmp::Reverse(c.index())))
            .map(|(c, _)| *c)
    }
}

/// Takes a histogram of a colouring over a palette.
pub fn round_histogram(coloring: &Coloring, palette: &Palette, round: usize) -> ColorHistogram {
    ColorHistogram {
        round,
        counts: coloring.histogram(palette),
    }
}

/// Runs a simulation for up to `max_rounds` rounds, collecting a histogram
/// after every round (including the initial configuration), and stopping
/// early on a fixed point or a monochromatic configuration.
pub fn histogram_series<R: LocalRule>(
    sim: &mut Simulator<R>,
    palette: &Palette,
    max_rounds: usize,
) -> Vec<ColorHistogram> {
    let mut series = vec![round_histogram(&sim.coloring(), palette, sim.round())];
    for _ in 0..max_rounds {
        if sim.monochromatic().is_some() {
            break;
        }
        let step = sim.step();
        series.push(round_histogram(&sim.coloring(), palette, sim.round()));
        if step.changed == 0 {
            break;
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_coloring::ColoringBuilder;
    use ctori_protocols::SmpProtocol;
    use ctori_topology::toroidal_mesh;

    #[test]
    fn histogram_counts_and_dominant() {
        let t = toroidal_mesh(3, 3);
        let coloring = ColoringBuilder::filled(&t, Color::new(1))
            .cell(0, 0, Color::new(2))
            .cell(0, 1, Color::new(2))
            .build();
        let p = Palette::new(3);
        let h = round_histogram(&coloring, &p, 0);
        assert_eq!(h.count(Color::new(1)), 7);
        assert_eq!(h.count(Color::new(2)), 2);
        assert_eq!(h.count(Color::new(3)), 0);
        assert_eq!(h.count(Color::new(9)), 0);
        assert_eq!(h.total(), 9);
        assert_eq!(h.dominant(), Some(Color::new(1)));
        assert_eq!(h.round, 0);
    }

    #[test]
    fn series_tracks_monotone_growth() {
        let t = toroidal_mesh(5, 5);
        let k = Color::new(2);
        let coloring = ColoringBuilder::filled(&t, k)
            .cell(1, 1, Color::new(1))
            .cell(1, 2, Color::new(3))
            .cell(2, 1, Color::new(4))
            .cell(2, 2, Color::new(5))
            .build();
        let p = Palette::new(5);
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let series = histogram_series(&mut sim, &p, 100);
        assert!(series.len() >= 2);
        // k-population is non-decreasing and ends at 25.
        let counts: Vec<usize> = series.iter().map(|h| h.count(k)).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.last().unwrap(), 25);
        // every histogram covers all the vertices
        assert!(series.iter().all(|h| h.total() == 25));
    }

    #[test]
    fn series_stops_at_fixed_point() {
        let t = toroidal_mesh(4, 4);
        let coloring =
            ctori_coloring::patterns::column_stripes(&t, &[Color::new(1), Color::new(2)]);
        let p = Palette::new(2);
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let series = histogram_series(&mut sim, &p, 100);
        // initial + one idle round
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].counts, series[1].counts);
    }
}
