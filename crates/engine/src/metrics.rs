//! Per-round metrics.
//!
//! The experiments plot how the population of each colour evolves round by
//! round (e.g. to show the monotone growth of `V^k` for a dynamo, or the
//! stagnation of a non-dynamo configuration).  This module also carries
//! the engine's step-profiling counters: [`StepStats`] accumulates the
//! hybrid dense/sparse lane decisions of every round inside the
//! simulator, and [`RoundStats`] is the timed summary a
//! [`crate::RunOutcome`] reports as its `round-stats:` line.

use crate::simulator::Simulator;
use ctori_coloring::{Color, Coloring, Palette};
use ctori_protocols::LocalRule;

/// Cumulative step-profiling counters, maintained by the simulator.
///
/// Every [`crate::Simulator::step`] adds one round and the band-level
/// decisions its lane made: how many row bands ran the full dense sweep,
/// how many walked the sparse worklist, and how many vertex evaluations
/// those choices cost.  Lanes without band scheduling (the generic
/// frontier without step-parallelism) count one band per round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Rounds executed.
    pub rounds: u64,
    /// Bands that ran the full (dense, tiled) sweep.
    pub dense_bands: u64,
    /// Bands that walked the sparse worklist path.
    pub sparse_bands: u64,
    /// Vertices evaluated across all rounds and bands.
    pub cells_evaluated: u64,
    /// Nanoseconds spent evaluating vertex updates (lane stepping or the
    /// generic frontier sweep).
    pub evaluate_nanos: u64,
    /// Nanoseconds spent merging band results (buffer concatenation and
    /// the configuration-hash fold); zero for lane rounds, which have no
    /// separate merge phase.
    pub merge_nanos: u64,
    /// Nanoseconds spent applying the merged changes (colour writes,
    /// census/hash upkeep, next-round worklist build); zero for lane
    /// rounds.
    pub apply_nanos: u64,
}

impl StepStats {
    /// Folds one round's band profile into the totals.
    pub fn record_round(&mut self, dense_bands: u32, sparse_bands: u32, cells_evaluated: u64) {
        self.rounds += 1;
        self.dense_bands += u64::from(dense_bands);
        self.sparse_bands += u64::from(sparse_bands);
        self.cells_evaluated += cells_evaluated;
    }

    /// Folds one round's phase timings into the totals.  Lane rounds pass
    /// their whole step as `evaluate` with zero merge/apply.
    pub fn record_phases(&mut self, evaluate_nanos: u64, merge_nanos: u64, apply_nanos: u64) {
        self.evaluate_nanos += evaluate_nanos;
        self.merge_nanos += merge_nanos;
        self.apply_nanos += apply_nanos;
    }
}

/// The timed step profile of one finished run.
///
/// This is pure observability: it is excluded from
/// [`crate::RunOutcome`] equality and from the spec's canonical key, and
/// parsing tolerates its absence, because its values (thread count,
/// wall-clock nanoseconds, band decisions) vary run to run while the
/// simulation result does not.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundStats {
    /// Rounds executed.
    pub rounds: u64,
    /// Bands that ran the full (dense, tiled) sweep.
    pub dense_bands: u64,
    /// Bands that walked the sparse worklist path.
    pub sparse_bands: u64,
    /// Vertices evaluated across all rounds and bands.
    pub cells_evaluated: u64,
    /// Step-parallelism the run executed with.
    pub threads: u64,
    /// Wall-clock nanoseconds spent inside the run.
    pub nanos: u64,
}

impl RoundStats {
    /// Throughput in gigacells (vertex evaluations) per second; `None`
    /// when no time was observed.
    pub fn gcells_per_sec(&self) -> Option<f64> {
        (self.nanos > 0).then(|| self.cells_evaluated as f64 / self.nanos as f64)
    }

    /// Renders the stats as the `round-stats:` line's value — a
    /// `key=value` list that [`RoundStats::parse`] round-trips.
    pub fn render(&self) -> String {
        format!(
            "rounds={} dense-bands={} sparse-bands={} cells={} threads={} nanos={}",
            self.rounds,
            self.dense_bands,
            self.sparse_bands,
            self.cells_evaluated,
            self.threads,
            self.nanos
        )
    }

    /// Parses a [`RoundStats::render`] value; `None` on any malformed or
    /// missing field.
    pub fn parse(text: &str) -> Option<RoundStats> {
        let mut stats = RoundStats {
            rounds: 0,
            dense_bands: 0,
            sparse_bands: 0,
            cells_evaluated: 0,
            threads: 0,
            nanos: 0,
        };
        let mut seen = 0u32;
        for token in text.split_whitespace() {
            let (key, value) = token.split_once('=')?;
            let value: u64 = value.parse().ok()?;
            let slot = match key {
                "rounds" => &mut stats.rounds,
                "dense-bands" => &mut stats.dense_bands,
                "sparse-bands" => &mut stats.sparse_bands,
                "cells" => &mut stats.cells_evaluated,
                "threads" => &mut stats.threads,
                "nanos" => &mut stats.nanos,
                _ => return None,
            };
            *slot = value;
            seen += 1;
        }
        (seen == 6).then_some(stats)
    }
}

/// A colour histogram at a specific round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColorHistogram {
    /// The round the histogram was taken at (0 = initial configuration).
    pub round: usize,
    /// `(colour, number of vertices)` pairs, one per palette colour.
    pub counts: Vec<(Color, usize)>,
}

impl ColorHistogram {
    /// The count for a specific colour (0 if the colour is not listed).
    pub fn count(&self, color: Color) -> usize {
        self.counts
            .iter()
            .find(|(c, _)| *c == color)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Total number of vertices covered by the histogram.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// The colour with the largest population (ties broken by colour
    /// index).
    pub fn dominant(&self) -> Option<Color> {
        self.counts
            .iter()
            .max_by_key(|(c, n)| (*n, std::cmp::Reverse(c.index())))
            .map(|(c, _)| *c)
    }
}

/// Takes a histogram of a colouring over a palette.
pub fn round_histogram(coloring: &Coloring, palette: &Palette, round: usize) -> ColorHistogram {
    ColorHistogram {
        round,
        counts: coloring.histogram(palette),
    }
}

/// Runs a simulation for up to `max_rounds` rounds, collecting a histogram
/// after every round (including the initial configuration), and stopping
/// early on a fixed point or a monochromatic configuration.
pub fn histogram_series<R: LocalRule>(
    sim: &mut Simulator<R>,
    palette: &Palette,
    max_rounds: usize,
) -> Vec<ColorHistogram> {
    let mut series = vec![round_histogram(&sim.coloring(), palette, sim.round())];
    for _ in 0..max_rounds {
        if sim.monochromatic().is_some() {
            break;
        }
        let step = sim.step();
        series.push(round_histogram(&sim.coloring(), palette, sim.round()));
        if step.changed == 0 {
            break;
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_coloring::ColoringBuilder;
    use ctori_protocols::SmpProtocol;
    use ctori_topology::toroidal_mesh;

    #[test]
    fn round_stats_render_round_trips() {
        let stats = RoundStats {
            rounds: 41,
            dense_bands: 30,
            sparse_bands: 52,
            cells_evaluated: 1 << 33,
            threads: 8,
            nanos: 2_500_000_000,
        };
        assert_eq!(RoundStats::parse(&stats.render()), Some(stats));
        let gcps = stats.gcells_per_sec().unwrap();
        assert!((gcps - (1u64 << 33) as f64 / 2.5e9).abs() < 1e-9);
        assert!(RoundStats::parse("rounds=1").is_none(), "missing fields");
        assert!(RoundStats::parse("bogus").is_none());
        assert!(RoundStats::parse(&format!("{} extra=1", stats.render())).is_none());
        let zero = RoundStats { nanos: 0, ..stats };
        assert_eq!(zero.gcells_per_sec(), None);
    }

    #[test]
    fn step_stats_accumulate() {
        let mut stats = StepStats::default();
        stats.record_round(4, 0, 1_000_000);
        stats.record_round(1, 3, 250_000);
        stats.record_phases(700, 0, 0);
        stats.record_phases(300, 40, 60);
        assert_eq!(
            stats,
            StepStats {
                rounds: 2,
                dense_bands: 5,
                sparse_bands: 3,
                cells_evaluated: 1_250_000,
                evaluate_nanos: 1_000,
                merge_nanos: 40,
                apply_nanos: 60,
            }
        );
    }

    #[test]
    fn histogram_counts_and_dominant() {
        let t = toroidal_mesh(3, 3);
        let coloring = ColoringBuilder::filled(&t, Color::new(1))
            .cell(0, 0, Color::new(2))
            .cell(0, 1, Color::new(2))
            .build();
        let p = Palette::new(3);
        let h = round_histogram(&coloring, &p, 0);
        assert_eq!(h.count(Color::new(1)), 7);
        assert_eq!(h.count(Color::new(2)), 2);
        assert_eq!(h.count(Color::new(3)), 0);
        assert_eq!(h.count(Color::new(9)), 0);
        assert_eq!(h.total(), 9);
        assert_eq!(h.dominant(), Some(Color::new(1)));
        assert_eq!(h.round, 0);
    }

    #[test]
    fn series_tracks_monotone_growth() {
        let t = toroidal_mesh(5, 5);
        let k = Color::new(2);
        let coloring = ColoringBuilder::filled(&t, k)
            .cell(1, 1, Color::new(1))
            .cell(1, 2, Color::new(3))
            .cell(2, 1, Color::new(4))
            .cell(2, 2, Color::new(5))
            .build();
        let p = Palette::new(5);
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let series = histogram_series(&mut sim, &p, 100);
        assert!(series.len() >= 2);
        // k-population is non-decreasing and ends at 25.
        let counts: Vec<usize> = series.iter().map(|h| h.count(k)).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.last().unwrap(), 25);
        // every histogram covers all the vertices
        assert!(series.iter().all(|h| h.total() == 25));
    }

    #[test]
    fn series_stops_at_fixed_point() {
        let t = toroidal_mesh(4, 4);
        let coloring =
            ctori_coloring::patterns::column_stripes(&t, &[Color::new(1), Color::new(2)]);
        let p = Palette::new(2);
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let series = histogram_series(&mut sim, &p, 100);
        // initial + one idle round
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].counts, series[1].counts);
    }
}
