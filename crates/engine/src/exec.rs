//! One execution API: submit a [`RunSpec`], hold a [`JobHandle`].
//!
//! The workspace used to have two disjoint ways to run the same spec —
//! the blocking [`crate::runner::Runner`] in-process, and the
//! verb-per-method service client over TCP — so moving a workload from a
//! laptop to a server meant rewriting the caller.  This module is the
//! backend-agnostic surface both sides now share:
//!
//! * [`Executor`] — `submit` / `submit_sweep` / `drain` over any backend;
//! * [`JobHandle`] — the caller's grip on one submitted job: `status()`,
//!   `wait()`, `try_outcome()`, `cancel()`, and a **polled stream** of
//!   typed [`RunEvent`]s (`started`, `progress`, `finished`, `failed`,
//!   `cancelled`), each with a `key: value` text round-trip like every
//!   other wire type in the workspace;
//! * [`LocalExecutor`] — the in-engine backend: a persistent worker pool
//!   (the idiom that used to live inside the service scheduler; the
//!   scheduler is now a thin wrapper over this pool) with a bounded
//!   priority queue, queued-only cancellation and graceful drain;
//! * `RemoteExecutor` (in `ctori-service`) — the same trait over a TCP
//!   connection, streaming progress through the `WATCH` protocol verb.
//!
//! The same caller code runs unchanged against either backend:
//!
//! ```
//! use ctori_engine::exec::{Executor, LocalExecutor, LocalExecutorConfig, SubmitOptions};
//! use ctori_engine::{RuleSpec, RunSpec, SeedSpec, TopologySpec};
//! use ctori_coloring::Color;
//!
//! fn converged_rounds(exec: &dyn Executor, spec: &RunSpec) -> usize {
//!     let mut handle = exec.submit(spec, SubmitOptions::default()).unwrap();
//!     handle.wait().unwrap().rounds
//! }
//!
//! let pool = LocalExecutor::start(LocalExecutorConfig::default());
//! let spec = RunSpec::new(
//!     TopologySpec::toroidal_mesh(8, 8),
//!     RuleSpec::parse("smp").unwrap(),
//!     SeedSpec::nodes(Color::new(1), Color::new(2), [0usize]),
//! );
//! assert!(converged_rounds(&pool, &spec) > 0);
//! pool.shutdown();
//! ```
//!
//! Progress events are published by a **sampling observer**: while a job
//! runs, every `progress_every`-th round (an [`crate::EngineOptions`]
//! knob; `auto` = every round) is snapshotted into the job's event log as
//! a [`RunEvent::Progress`] carrying the round number, the number of
//! vertices that changed, and the colour histogram.  Handles poll the log
//! ([`JobHandle::poll_events`]); the service serves it to remote watchers
//! through `WATCH <id> [since-round]`.  The log keeps the most recent
//! [`PROGRESS_RETAIN`] progress events (plus the started/terminal
//! events, always), so a million-round job cannot grow server memory
//! without bound.

use crate::metrics::ColorHistogram;
use crate::observe::{Observer, StepView};
use crate::runner::{RunOutcome, Runner};
use crate::simulator::Termination;
use crate::spec::{RunSpec, SpecKey};
use crate::sweep::default_threads;
use crate::telemetry::clock::monotonic_nanos;
use crate::telemetry::{Counter, Gauge, Histogram, JobTrace, Registry, SpanKind};
use ctori_coloring::Color;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many [`RunEvent::Progress`] entries a job's event log retains
/// while the job is **in flight**.  The started event and the terminal
/// event are kept in addition, so a watcher always sees the stream open
/// and close even after drops.
pub const PROGRESS_RETAIN: usize = 1024;

/// How many [`RunEvent::Progress`] entries a **terminal** job's event
/// log keeps.  Once the terminal event is pushed the log is truncated to
/// this newest tail: live watchers have already drained the stream, and
/// keeping full logs for every record in the retention window would let
/// memory grow to `retain_jobs × PROGRESS_RETAIN` events.
pub const TERMINAL_PROGRESS_RETAIN: usize = 32;

/// How often [`JobHandle::wait_observed`] polls for fresh events.
const EVENT_POLL: Duration = Duration::from_millis(5);

// ---------------------------------------------------------------------------
// Job identity: priority, lifecycle state, status snapshot
// ---------------------------------------------------------------------------

/// Scheduling priority of a submitted job.  Higher priorities are
/// dequeued first; within one priority, jobs run in submission order
/// (FIFO).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Background work: dequeued only when nothing else is waiting.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Jumps ahead of all queued normal/low jobs.
    High,
}

impl Priority {
    /// Parses the wire token produced by the `Display` impl.
    pub fn parse_token(s: &str) -> Option<Priority> {
        match s {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        })
    }
}

/// Lifecycle state of a job, identical across backends:
///
/// ```text
/// queued ──▶ running ──▶ done
///    │           └─────▶ failed
///    └─────▶ cancelled
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Waiting in the submission queue.
    Queued,
    /// Claimed by a worker and executing.
    Running,
    /// Finished; the outcome is available.
    Done,
    /// The execution panicked or was otherwise aborted.
    Failed,
    /// Cancelled while still queued; it will never run.
    Cancelled,
}

impl JobState {
    /// Whether the state is final (`done`, `failed` or `cancelled`).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Parses the wire token produced by the `Display` impl.
    pub fn parse_token(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        })
    }
}

/// A point-in-time snapshot of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobStatus {
    /// Where the job is in its lifecycle.
    pub state: JobState,
    /// Whether a `done` outcome was served from a result cache instead of
    /// a fresh execution.
    pub from_cache: bool,
}

/// Per-submission options (everything scenario-independent; scenario
/// policy lives in [`crate::EngineOptions`] inside the spec).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Queue priority of the submission.
    pub priority: Priority,
}

impl SubmitOptions {
    /// Options at the given priority.
    pub fn at(priority: Priority) -> Self {
        SubmitOptions { priority }
    }
}

// ---------------------------------------------------------------------------
// RunEvent
// ---------------------------------------------------------------------------

/// One typed progress event of a running (or finished) job.
///
/// Events render to a single `event: …` line ([`RunEvent::to_text`]) and
/// parse back ([`RunEvent::from_text`]), so a stream of them travels in a
/// protocol payload block exactly like specs and outcomes do.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RunEvent {
    /// The job was claimed by a worker and its simulator is built.
    Started {
        /// Number of vertices in the materialised topology.
        nodes: usize,
    },
    /// A sampled synchronous round completed.
    Progress {
        /// The round that just completed (1-based, strictly increasing
        /// within one job's stream).
        round: usize,
        /// Number of vertices that changed colour this round.
        changed: usize,
        /// The colour populations after the round.
        histogram: ColorHistogram,
    },
    /// The run terminated normally; the outcome is available.
    Finished {
        /// Total rounds executed.
        rounds: usize,
        /// Why the run stopped.
        termination: Termination,
    },
    /// The execution failed (e.g. panicked).
    Failed {
        /// The failure message.
        message: String,
    },
    /// The job was cancelled while still queued.
    Cancelled,
}

impl RunEvent {
    /// Whether this event closes a job's stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            RunEvent::Finished { .. } | RunEvent::Failed { .. } | RunEvent::Cancelled
        )
    }

    /// The round of a progress event (`None` for lifecycle events).
    pub fn progress_round(&self) -> Option<usize> {
        match self {
            RunEvent::Progress { round, .. } => Some(*round),
            _ => None,
        }
    }

    /// Renders the event as one `event: …` line (no trailing newline).
    pub fn to_text(&self) -> String {
        match self {
            RunEvent::Started { nodes } => format!("event: started nodes={nodes}"),
            RunEvent::Progress {
                round,
                changed,
                histogram,
            } => {
                let counts: Vec<String> = histogram
                    .counts
                    .iter()
                    .map(|(c, n)| format!("{}:{n}", c.index()))
                    .collect();
                format!(
                    "event: progress round={round} changed={changed} histogram={}",
                    if counts.is_empty() {
                        "-".to_string()
                    } else {
                        counts.join(",")
                    }
                )
            }
            RunEvent::Finished {
                rounds,
                termination,
            } => format!(
                "event: finished rounds={rounds} termination={}",
                termination_token(*termination)
            ),
            RunEvent::Failed { message } => {
                format!("event: failed message={}", message.replace('\n', "; "))
            }
            RunEvent::Cancelled => "event: cancelled".to_string(),
        }
    }

    /// Parses one `event: …` line produced by [`RunEvent::to_text`].
    pub fn from_text(line: &str) -> Result<RunEvent, EventParseError> {
        let bad = |detail: String| EventParseError { detail };
        let rest = line
            .trim()
            .strip_prefix("event:")
            .ok_or_else(|| bad(format!("expected `event: …`, got {line:?}")))?
            .trim_start();
        let head = rest.split_whitespace().next().unwrap_or("");
        let field = |key: &str| -> Result<&str, EventParseError> {
            rest.split_whitespace()
                .find_map(|token| token.strip_prefix(key).and_then(|t| t.strip_prefix('=')))
                .ok_or_else(|| bad(format!("{head} event is missing `{key}=`")))
        };
        let number = |key: &str| -> Result<usize, EventParseError> {
            field(key)?
                .parse()
                .map_err(|_| bad(format!("{head} event has a malformed `{key}=`")))
        };
        match head {
            "started" => Ok(RunEvent::Started {
                nodes: number("nodes")?,
            }),
            "progress" => {
                let round = number("round")?;
                let mut counts = Vec::new();
                let histogram = field("histogram")?;
                if histogram != "-" {
                    for pair in histogram.split(',') {
                        let (color, count) = pair
                            .split_once(':')
                            .ok_or_else(|| bad(format!("malformed histogram entry {pair:?}")))?;
                        let index: u16 = color
                            .parse()
                            .ok()
                            .filter(|&i| i > 0)
                            .ok_or_else(|| bad(format!("{color:?} is not a colour index")))?;
                        let count: usize = count
                            .parse()
                            .map_err(|_| bad(format!("{count:?} is not a count")))?;
                        counts.push((Color::new(index), count));
                    }
                }
                Ok(RunEvent::Progress {
                    round,
                    changed: number("changed")?,
                    histogram: ColorHistogram { round, counts },
                })
            }
            "finished" => Ok(RunEvent::Finished {
                rounds: number("rounds")?,
                termination: termination_from_token(field("termination")?)
                    .ok_or_else(|| bad("finished event has a malformed termination".into()))?,
            }),
            "failed" => {
                let message = rest
                    .split_once("message=")
                    .ok_or_else(|| bad("failed event is missing `message=`".into()))?
                    .1;
                Ok(RunEvent::Failed {
                    message: message.to_string(),
                })
            }
            "cancelled" => Ok(RunEvent::Cancelled),
            other => Err(bad(format!("unknown event kind {other:?}"))),
        }
    }
}

/// Renders a stream of events, one `event: …` line each.
pub fn events_to_text(events: &[RunEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_text());
        out.push('\n');
    }
    out
}

/// Parses a stream of `event: …` lines (blank lines are skipped).
pub fn events_from_text(text: &str) -> Result<Vec<RunEvent>, EventParseError> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(RunEvent::from_text)
        .collect()
}

/// A space-free [`Termination`] token for event lines
/// (`monochromatic:2`, `cycle:4`, `fixed-point`, `round-limit`).
fn termination_token(termination: Termination) -> String {
    match termination {
        Termination::Monochromatic(c) => format!("monochromatic:{}", c.index()),
        Termination::FixedPoint => "fixed-point".into(),
        Termination::Cycle { period } => format!("cycle:{period}"),
        Termination::RoundLimit => "round-limit".into(),
    }
}

fn termination_from_token(token: &str) -> Option<Termination> {
    match token {
        "fixed-point" => return Some(Termination::FixedPoint),
        "round-limit" => return Some(Termination::RoundLimit),
        _ => {}
    }
    let (head, value) = token.split_once(':')?;
    match head {
        "monochromatic" => {
            let index: u16 = value.parse().ok().filter(|&i| i > 0)?;
            Some(Termination::Monochromatic(Color::new(index)))
        }
        "cycle" => Some(Termination::Cycle {
            period: value.parse().ok()?,
        }),
        _ => None,
    }
}

/// Error produced when parsing a [`RunEvent`] from its text form.
#[derive(Clone, Debug, PartialEq)]
pub struct EventParseError {
    /// What was wrong with the input.
    pub detail: String,
}

impl std::fmt::Display for EventParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad run event: {}", self.detail)
    }
}

impl std::error::Error for EventParseError {}

// ---------------------------------------------------------------------------
// ExecError
// ---------------------------------------------------------------------------

/// Anything that can go wrong between a submission and its outcome,
/// backend-agnostic.  Backends attach their own context (the local pool
/// knows states exactly; a remote backend rebuilds these from wire error
/// codes, so a service wrapper may re-attach ids and states).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// The submission queue is at capacity; retry later (`capacity` is
    /// `0` when the backend does not report its bound).
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// The executor is draining and accepts no new submissions.
    ShuttingDown,
    /// The job is unknown here (never submitted, or already forgotten by
    /// the terminal-record retention window).
    UnknownJob,
    /// The job has not reached a terminal state yet.
    NotFinished,
    /// The job cannot be cancelled in its current state (only queued jobs
    /// can).
    NotCancellable,
    /// The job's execution failed.
    Failed {
        /// The failure message recorded by the worker.
        message: String,
    },
    /// The job was cancelled before it could run.
    Cancelled,
    /// A wait or a transport operation timed out.
    TimedOut,
    /// A backend-specific failure (transport I/O, protocol, …).
    Backend(String),
    /// The connection to a remote backend dropped mid-conversation.  The
    /// job may still be running (or finished) server-side; routers such as
    /// a fleet coordinator treat this as "evict the backend and resubmit
    /// elsewhere" rather than a job failure.
    BackendLost(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::QueueFull { capacity: 0 } => write!(f, "submission queue full"),
            ExecError::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} jobs)")
            }
            ExecError::ShuttingDown => write!(f, "executor is shutting down"),
            ExecError::UnknownJob => write!(f, "unknown job"),
            ExecError::NotFinished => write!(f, "job is not finished"),
            ExecError::NotCancellable => write!(f, "job is not cancellable"),
            ExecError::Failed { message } => write!(f, "job failed: {message}"),
            ExecError::Cancelled => write!(f, "job was cancelled"),
            ExecError::TimedOut => write!(f, "timed out"),
            ExecError::Backend(detail) => write!(f, "backend error: {detail}"),
            ExecError::BackendLost(detail) => write!(f, "backend connection lost: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

// ---------------------------------------------------------------------------
// Executor / JobHandle
// ---------------------------------------------------------------------------

/// A backend that executes [`RunSpec`]s asynchronously.
///
/// Implementations: [`LocalExecutor`] (in-engine worker pool) and the
/// service crate's `RemoteExecutor` (TCP).  The trait is object-safe so
/// the *same* caller code can be handed either backend as
/// `&dyn Executor`.
pub trait Executor {
    /// Submits one spec; the returned handle tracks the job.
    fn submit(&self, spec: &RunSpec, options: SubmitOptions) -> Result<JobHandle, ExecError>;

    /// Submits a whole sweep atomically (either every spec is queued, in
    /// order, under one priority — or none is).  Handles are in spec
    /// order.
    fn submit_sweep(
        &self,
        specs: &[RunSpec],
        options: SubmitOptions,
    ) -> Result<Vec<JobHandle>, ExecError>;

    /// Releases this executor's hold on its backend once no more
    /// submissions are coming; every already-admitted job still
    /// completes.  For the local pool this blocks until the queue is
    /// empty and the workers are joined; a remote backend merely
    /// detaches (a server is shared infrastructure — admitted jobs
    /// drain server-side, and actually stopping the server is an
    /// explicit, backend-specific operation like
    /// `RemoteExecutor::shutdown_server`).  Safe to call from portable
    /// `&dyn Executor` code against either backend.
    fn drain(&self);
}

/// The backend-specific half of a [`JobHandle`].
///
/// Backends implement this; callers use the handle's inherent methods.
/// All methods take `&mut self` because remote backends drive a
/// connection.
pub trait JobControl: Send {
    /// A short human-readable job label (e.g. the backend's job id).
    fn label(&self) -> String;

    /// The job's lifecycle snapshot.
    fn status(&mut self) -> Result<JobStatus, ExecError>;

    /// Blocks until the job terminates; `None` waits indefinitely.
    /// A timeout expiry surfaces as [`ExecError::NotFinished`].
    fn wait(&mut self, timeout: Option<Duration>) -> Result<Arc<RunOutcome>, ExecError>;

    /// Non-blocking probe: `Ok(None)` while queued or running,
    /// `Ok(Some(outcome))` when done, an error for failed/cancelled.
    fn try_outcome(&mut self) -> Result<Option<Arc<RunOutcome>>, ExecError>;

    /// Cancels the job if it is still queued.
    fn cancel(&mut self) -> Result<(), ExecError>;

    /// Drains the events published since the last poll (possibly empty;
    /// never blocks).
    fn poll_events(&mut self) -> Result<Vec<RunEvent>, ExecError>;
}

/// The caller's grip on one submitted job, backend-agnostic.
///
/// Obtained from [`Executor::submit`]; the same handle code works over
/// the local pool and over TCP.
pub struct JobHandle {
    control: Box<dyn JobControl>,
}

impl JobHandle {
    /// Wraps a backend's control object (used by backend implementations).
    pub fn new(control: Box<dyn JobControl>) -> JobHandle {
        JobHandle { control }
    }

    /// A short human-readable job label (e.g. the backend's job id).
    pub fn label(&self) -> String {
        self.control.label()
    }

    /// The job's lifecycle snapshot.
    pub fn status(&mut self) -> Result<JobStatus, ExecError> {
        self.control.status()
    }

    /// Blocks until the job terminates and returns its outcome.
    pub fn wait(&mut self) -> Result<Arc<RunOutcome>, ExecError> {
        self.control.wait(None)
    }

    /// As [`JobHandle::wait`], giving up after `timeout`
    /// ([`ExecError::NotFinished`] if the job is still pending then).
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<Arc<RunOutcome>, ExecError> {
        self.control.wait(Some(timeout))
    }

    /// Non-blocking probe: `Ok(None)` while queued or running,
    /// `Ok(Some(outcome))` when done, an error for failed/cancelled.
    pub fn try_outcome(&mut self) -> Result<Option<Arc<RunOutcome>>, ExecError> {
        self.control.try_outcome()
    }

    /// Cancels the job if it is still queued.
    pub fn cancel(&mut self) -> Result<(), ExecError> {
        self.control.cancel()
    }

    /// Drains the events published since the last poll (possibly empty;
    /// never blocks).
    pub fn poll_events(&mut self) -> Result<Vec<RunEvent>, ExecError> {
        self.control.poll_events()
    }

    /// Waits for the outcome while feeding every event (including the
    /// terminal one) to `on_event` as it is observed — the convenience
    /// loop behind "print live progress" callers.
    pub fn wait_observed(
        &mut self,
        mut on_event: impl FnMut(&RunEvent),
    ) -> Result<Arc<RunOutcome>, ExecError> {
        loop {
            let events = self.poll_events()?;
            let terminal = events.iter().any(RunEvent::is_terminal);
            for event in &events {
                on_event(event);
            }
            if terminal {
                return self.control.wait(None);
            }
            // The handle's cursor may have consumed the terminal event in
            // an *earlier* poll (a prior poll_events call, or a previous
            // wait_observed) — then every further poll is empty and no
            // terminal will ever arrive, so fall back to a status probe
            // rather than spinning forever.
            if events.is_empty() && self.control.status()?.state.is_terminal() {
                return self.control.wait(None);
            }
            std::thread::sleep(EVENT_POLL);
        }
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("label", &self.label())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Outcome cache hook
// ---------------------------------------------------------------------------

/// A pluggable result store consulted by [`LocalExecutor`] workers.
///
/// Before executing, a worker probes the store under the spec's
/// [`SpecKey`]; a hit completes the job without touching the engine and
/// marks it [`JobStatus::from_cache`].  Fresh outcomes are published on
/// the way out.  The service layer plugs its content-addressed LRU cache
/// in here; the default is no cache at all.
///
/// Both methods are called from worker threads **outside** the pool's
/// state lock, so an implementation may block (e.g. on its own mutex or
/// on I/O) without stalling submissions or status queries — it only
/// delays the one worker doing the probe.  Implementations must not call
/// back into the pool that owns them.
pub trait OutcomeCache: Send + Sync {
    /// Looks up a memoized outcome for `key`.
    fn probe(&self, key: &SpecKey) -> Option<Arc<RunOutcome>>;

    /// Memoizes a freshly computed outcome.
    fn publish(&self, key: SpecKey, outcome: &Arc<RunOutcome>);
}

// ---------------------------------------------------------------------------
// LocalExecutor: the persistent in-engine worker pool
// ---------------------------------------------------------------------------

/// Sizing knobs of a [`LocalExecutor`].
#[derive(Clone, Copy, Debug)]
pub struct LocalExecutorConfig {
    /// Worker-pool size; `0` = automatic ([`default_threads`]).
    pub workers: usize,
    /// Bound on the number of *queued* jobs; submissions beyond it are
    /// rejected with [`ExecError::QueueFull`].
    pub queue_capacity: usize,
    /// How many **terminal** job records (done/failed/cancelled) to keep
    /// for later status/outcome/event queries.  Beyond the bound the
    /// oldest terminal records are forgotten — their handles then report
    /// [`ExecError::UnknownJob`] — which is what keeps a long-running
    /// pool's memory bounded no matter how many jobs it has run.
    pub retain_jobs: usize,
}

impl Default for LocalExecutorConfig {
    fn default() -> Self {
        LocalExecutorConfig {
            workers: 0,
            queue_capacity: 1024,
            retain_jobs: 4096,
        }
    }
}

/// Queue/job counters of a [`LocalExecutor`] pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Size of the persistent worker pool.
    pub workers: usize,
    /// Jobs currently waiting in the submission queue.
    pub queued: usize,
    /// Jobs currently executing on a worker.
    pub running: usize,
    /// Jobs that reached `done` (fresh executions and cache hits alike).
    pub done: u64,
    /// Jobs that reached `failed`.
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Jobs ever admitted to the queue (monotone, unlike `queued`).
    pub submitted: u64,
    /// The deepest the submission queue has ever been.
    pub queued_hwm: usize,
}

/// A queue reference: max-heap on priority, FIFO (smallest sequence
/// number first) within one priority.
#[derive(PartialEq, Eq)]
struct QueueRef {
    priority: Priority,
    seq: std::cmp::Reverse<u64>,
    id: u64,
}

impl Ord for QueueRef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, self.seq).cmp(&(other.priority, other.seq))
    }
}

impl PartialOrd for QueueRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A cursor into one job's event log (each handle owns one, so clones of
/// a stream drain independently).
#[derive(Clone, Copy, Debug, Default)]
struct EventCursor {
    seen_started: bool,
    /// Absolute index (counting dropped entries) of the next unseen
    /// progress event.
    next_progress: usize,
    seen_terminal: bool,
}

/// One job's bounded event log: the started event, the most recent
/// [`PROGRESS_RETAIN`] progress events, and the terminal event.
#[derive(Default)]
struct EventLog {
    started: Option<RunEvent>,
    progress: VecDeque<RunEvent>,
    /// Progress events evicted by the retention bound (absolute index of
    /// `progress[0]` is exactly this).
    dropped: usize,
    terminal: Option<RunEvent>,
}

impl EventLog {
    fn push(&mut self, event: RunEvent) {
        match &event {
            RunEvent::Started { .. } => self.started = Some(event),
            RunEvent::Progress { .. } => {
                if self.progress.len() >= PROGRESS_RETAIN {
                    self.progress.pop_front();
                    self.dropped += 1;
                }
                self.progress.push_back(event);
            }
            _ => {
                self.terminal = Some(event);
                // The stream is closed: shrink to the terminal tail so a
                // full retention window of finished jobs stays small.
                while self.progress.len() > TERMINAL_PROGRESS_RETAIN {
                    self.progress.pop_front();
                    self.dropped += 1;
                }
            }
        }
    }

    /// The events a round-based watcher has not seen yet: everything when
    /// `after` is `None`, otherwise the progress events with `round >
    /// after` — plus the terminal event whenever one exists, so a
    /// stream's last reply always closes it.
    fn since_round(&self, after: Option<usize>) -> Vec<RunEvent> {
        let mut out = Vec::new();
        if after.is_none() {
            out.extend(self.started.clone());
        }
        out.extend(
            self.progress
                .iter()
                .filter(|e| after.is_none_or(|a| e.progress_round().is_some_and(|r| r > a)))
                .cloned(),
        );
        out.extend(self.terminal.clone());
        out
    }

    /// The events a cursor-based poller has not seen yet, advancing the
    /// cursor.
    fn poll(&self, cursor: &mut EventCursor) -> Vec<RunEvent> {
        let mut out = Vec::new();
        if !cursor.seen_started {
            if let Some(started) = &self.started {
                out.push(started.clone());
                cursor.seen_started = true;
            }
        }
        let skip = cursor.next_progress.saturating_sub(self.dropped);
        out.extend(self.progress.iter().skip(skip).cloned());
        cursor.next_progress = self.dropped + self.progress.len();
        if !cursor.seen_terminal {
            if let Some(terminal) = &self.terminal {
                out.push(terminal.clone());
                cursor.seen_terminal = true;
            }
        }
        out
    }
}

struct JobRecord {
    spec: Option<RunSpec>, // taken by the worker that runs the job
    /// The cache address — computed at submission only when the pool
    /// actually has an [`OutcomeCache`], so a cacheless pool never pays
    /// for spec serialization + hashing.
    key: Option<SpecKey>,
    state: JobState,
    from_cache: bool,
    outcome: Option<Arc<RunOutcome>>,
    error: Option<String>,
    /// The event log, behind its **own** lock: the in-flight publisher
    /// appends sampled progress through this `Arc` without ever touching
    /// the pool's state mutex, so per-round publishing never serializes
    /// the other workers or submitters.  Lock order where both are held
    /// is always pool state → event log.
    events: Arc<Mutex<EventLog>>,
    /// The lifecycle span ring, behind its own lock for the same reason
    /// as `events`: the in-flight publisher appends progress spans
    /// through this `Arc` off the pool lock.  Lock order where both are
    /// held is always pool state → trace log.
    trace: Arc<Mutex<JobTrace>>,
    /// When the job entered the queue, for the queue-wait histogram.
    queued_at_nanos: u64,
}

#[derive(Default)]
struct Counters {
    done: u64,
    failed: u64,
    cancelled: u64,
}

struct PoolState {
    queue: BinaryHeap<QueueRef>,
    queued: usize, // queue entries that are still in state Queued
    running: usize,
    /// Extra pool slots lent to running jobs as step-threads: a job
    /// stepping with `T` threads counts as `T` slots (`1` in `running`,
    /// `T - 1` here), so band-parallel runs never oversubscribe the pool.
    borrowed: usize,
    jobs: HashMap<u64, JobRecord>,
    /// Terminal job ids, oldest first — the retention window.
    terminal_order: VecDeque<u64>,
    counters: Counters,
    /// Jobs ever admitted (monotone companion of `queued`).
    submitted: u64,
    /// Deepest the queue has ever been.
    queued_hwm: usize,
    next_id: u64,
    next_seq: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signalled when work is queued or shutdown begins (workers wait).
    work_ready: Condvar,
    /// Signalled when any job reaches a terminal state (waiters wait).
    job_done: Condvar,
    queue_capacity: usize,
    retain_jobs: usize,
    workers: usize,
    cache: Option<Arc<dyn OutcomeCache>>,
    /// The pool's metrics registry; exposed through
    /// [`LocalExecutor::telemetry`] so embedding layers (the service
    /// scheduler) can add their own instruments to the same exposition.
    telemetry: Arc<Registry>,
    /// Handles pre-registered at pool start, so the submit/claim/finish
    /// hot paths never touch the registry's map lock.
    metrics: ExecMetrics,
}

/// The executor's pre-registered instruments (see [`Shared::metrics`]).
struct ExecMetrics {
    /// `exec.jobs.submitted`: jobs ever admitted to the queue.
    jobs_submitted: Arc<Counter>,
    /// `exec.queue.depth-hwm`: deepest the queue has ever been.
    queue_depth_hwm: Arc<Gauge>,
    /// `exec.queue.wait-us`: microseconds from admission to claim.
    queue_wait_us: Arc<Histogram>,
    /// `exec.job.run-us`: microseconds from claim to terminal state
    /// (cache hits included — they record their probe time).
    job_run_us: Arc<Histogram>,
}

impl ExecMetrics {
    fn register(registry: &Registry) -> ExecMetrics {
        ExecMetrics {
            jobs_submitted: registry.counter("exec.jobs.submitted"),
            queue_depth_hwm: registry.gauge("exec.queue.depth-hwm"),
            queue_wait_us: registry.histogram("exec.queue.wait-us"),
            job_run_us: registry.histogram("exec.job.run-us"),
        }
    }
}

/// Marks a job terminal and forgets the oldest terminal records beyond
/// the retention bound.
fn record_terminal(state: &mut PoolState, retain: usize, id: u64) {
    state.terminal_order.push_back(id);
    while state.terminal_order.len() > retain {
        if let Some(old) = state.terminal_order.pop_front() {
            state.jobs.remove(&old);
        }
    }
}

/// The in-engine [`Executor`] backend: a persistent worker pool over a
/// bounded priority queue.  See the [module docs](self).
///
/// This is the pool idiom that used to live inside the service
/// scheduler; the scheduler is now a thin wrapper adding a result cache
/// and wire-protocol ids on top.  [`Runner::execute`] and
/// [`Runner::sweep`] remain as blocking conveniences for callers that do
/// not need handles.
pub struct LocalExecutor {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl LocalExecutor {
    /// Starts the worker pool (no result cache).
    pub fn start(config: LocalExecutorConfig) -> Self {
        LocalExecutor::start_with_cache(config, None)
    }

    /// Starts the worker pool with a pluggable result store; workers
    /// probe it before executing and publish fresh outcomes into it.
    pub fn start_with_cache(
        config: LocalExecutorConfig,
        cache: Option<Arc<dyn OutcomeCache>>,
    ) -> Self {
        let workers = if config.workers == 0 {
            default_threads()
        } else {
            config.workers
        };
        let telemetry = Arc::new(Registry::new());
        let metrics = ExecMetrics::register(&telemetry);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: BinaryHeap::new(),
                queued: 0,
                running: 0,
                borrowed: 0,
                jobs: HashMap::new(),
                terminal_order: VecDeque::new(),
                counters: Counters::default(),
                submitted: 0,
                queued_hwm: 0,
                next_id: 1,
                next_seq: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            queue_capacity: config.queue_capacity.max(1),
            retain_jobs: config.retain_jobs.max(1),
            workers,
            cache,
            telemetry,
            metrics,
        });
        // The one place unscoped threads are created: the pool owns their
        // lifecycle and joins them on shutdown.
        #[allow(clippy::disallowed_methods)]
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        LocalExecutor {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Size of the worker pool.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Submits one spec; returns the pool-local job id (ids start at 1
    /// and increase in submission order).
    ///
    /// Fails with [`ExecError::QueueFull`] when the queue bound is
    /// reached and [`ExecError::ShuttingDown`] once a drain has begun.
    pub fn enqueue(&self, spec: RunSpec, priority: Priority) -> Result<u64, ExecError> {
        // The canonical key only addresses the result cache, so a
        // cacheless pool skips the serialize-and-digest work entirely.
        let key = self.shared.cache.as_ref().map(|_| spec.canonical_key());
        let mut state = self.lock();
        admit(&state, self.shared.queue_capacity, 1)?;
        let id = enqueue_locked(&mut state, &self.shared.metrics, spec, key, priority);
        drop(state);
        self.shared.work_ready.notify_one();
        Ok(id)
    }

    /// Submits a whole batch atomically: either every spec is queued (in
    /// order, under one priority) or none is.
    pub fn enqueue_batch(
        &self,
        specs: Vec<RunSpec>,
        priority: Priority,
    ) -> Result<Vec<u64>, ExecError> {
        if specs.is_empty() {
            return Err(ExecError::Backend("empty sweep".into()));
        }
        let keys: Vec<Option<SpecKey>> = specs
            .iter()
            .map(|spec| self.shared.cache.as_ref().map(|_| spec.canonical_key()))
            .collect();
        let mut state = self.lock();
        admit(&state, self.shared.queue_capacity, specs.len())?;
        let ids = specs
            .into_iter()
            .zip(keys)
            .map(|(spec, key)| {
                enqueue_locked(&mut state, &self.shared.metrics, spec, key, priority)
            })
            .collect();
        drop(state);
        self.shared.work_ready.notify_all();
        Ok(ids)
    }

    /// The current lifecycle snapshot of a job.
    pub fn job_status(&self, id: u64) -> Result<JobStatus, ExecError> {
        let state = self.lock();
        let record = state.jobs.get(&id).ok_or(ExecError::UnknownJob)?;
        Ok(JobStatus {
            state: record.state,
            from_cache: record.from_cache,
        })
    }

    /// The outcome of a `done` job without blocking.
    ///
    /// Fails with [`ExecError::NotFinished`] while the job is queued or
    /// running, [`ExecError::Failed`] / [`ExecError::Cancelled`] for the
    /// other terminal states.
    pub fn job_outcome(&self, id: u64) -> Result<Arc<RunOutcome>, ExecError> {
        outcome_of(&self.lock(), id)
    }

    /// Blocks until the job reaches a terminal state, then returns as
    /// [`LocalExecutor::job_outcome`].  `timeout` of `None` waits
    /// indefinitely (every admitted job terminates: workers drain the
    /// queue even during shutdown); an expired timeout surfaces as
    /// [`ExecError::NotFinished`].
    pub fn wait_job(
        &self,
        id: u64,
        timeout: Option<Duration>,
    ) -> Result<Arc<RunOutcome>, ExecError> {
        wait_on(&self.shared, id, timeout)
    }

    /// Cancels a job that is still queued.  Running and terminal jobs
    /// are not cancellable.
    pub fn cancel_job(&self, id: u64) -> Result<(), ExecError> {
        cancel_on(&self.shared, id)
    }

    /// The job's buffered events: everything when `after_round` is
    /// `None`, otherwise the progress events beyond that round — plus
    /// the terminal event whenever one exists.  This is the query behind
    /// the service's `WATCH <id> [since-round]` verb.
    pub fn events_since(
        &self,
        id: u64,
        after_round: Option<usize>,
    ) -> Result<Vec<RunEvent>, ExecError> {
        // Clone the log handle and read outside the pool lock, so
        // cloning a large event batch never stalls the other pool users.
        let events = {
            let state = self.lock();
            let record = state.jobs.get(&id).ok_or(ExecError::UnknownJob)?;
            Arc::clone(&record.events)
        };
        let events = events.lock().expect("event log poisoned");
        Ok(events.since_round(after_round))
    }

    /// A snapshot of the queue and job counters.
    pub fn stats(&self) -> PoolStats {
        let state = self.lock();
        PoolStats {
            workers: self.shared.workers,
            queued: state.queued,
            running: state.running,
            done: state.counters.done,
            failed: state.counters.failed,
            cancelled: state.counters.cancelled,
            submitted: state.submitted,
            queued_hwm: state.queued_hwm,
        }
    }

    /// The pool's metrics registry.  The executor pre-registers its own
    /// instruments (`exec.jobs.submitted`, `exec.queue.depth-hwm`,
    /// `exec.queue.wait-us`, `exec.job.run-us`); embedding layers may add
    /// theirs to the same registry so one snapshot covers everything.
    pub fn telemetry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.telemetry)
    }

    /// A copy of the job's lifecycle span ring (submitted → queued →
    /// claimed → running → sampled progress → terminal).  This is the
    /// query behind the service's `TRACE <id>` verb.
    pub fn job_trace(&self, id: u64) -> Result<JobTrace, ExecError> {
        // As `events_since`: clone the trace handle under the pool lock,
        // read it outside.
        let trace = {
            let state = self.lock();
            let record = state.jobs.get(&id).ok_or(ExecError::UnknownJob)?;
            Arc::clone(&record.trace)
        };
        let trace = trace.lock().expect("trace log poisoned");
        Ok(trace.clone())
    }

    /// Drains the pool: rejects new submissions, lets every queued and
    /// running job finish, and joins the workers.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.lock();
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool poisoned"));
        for handle in handles {
            // lint: allow(panic) worker bodies catch_unwind job panics, so a
            // join failure is a pool-loop bug worth crashing shutdown loudly
            handle.join().expect("pool worker panicked");
        }
    }

    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.shared.state.lock().expect("pool poisoned")
    }
}

impl Executor for LocalExecutor {
    fn submit(&self, spec: &RunSpec, options: SubmitOptions) -> Result<JobHandle, ExecError> {
        let id = self.enqueue(spec.clone(), options.priority)?;
        Ok(local_handle(&self.shared, id))
    }

    fn submit_sweep(
        &self,
        specs: &[RunSpec],
        options: SubmitOptions,
    ) -> Result<Vec<JobHandle>, ExecError> {
        let ids = self.enqueue_batch(specs.to_vec(), options.priority)?;
        Ok(ids
            .into_iter()
            .map(|id| local_handle(&self.shared, id))
            .collect())
    }

    fn drain(&self) {
        self.shutdown();
    }
}

impl Drop for LocalExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn local_handle(shared: &Arc<Shared>, id: u64) -> JobHandle {
    JobHandle::new(Box::new(LocalHandle {
        shared: Arc::clone(shared),
        id,
        cursor: EventCursor::default(),
    }))
}

/// Checks that `incoming` more jobs may be queued right now.
fn admit(state: &PoolState, capacity: usize, incoming: usize) -> Result<(), ExecError> {
    if state.shutdown {
        return Err(ExecError::ShuttingDown);
    }
    if state.queued + incoming > capacity {
        return Err(ExecError::QueueFull { capacity });
    }
    Ok(())
}

fn enqueue_locked(
    state: &mut PoolState,
    metrics: &ExecMetrics,
    spec: RunSpec,
    key: Option<SpecKey>,
    priority: Priority,
) -> u64 {
    let id = state.next_id;
    state.next_id += 1;
    let seq = state.next_seq;
    state.next_seq += 1;
    let now = monotonic_nanos();
    let trace = Arc::new(Mutex::new(JobTrace::new()));
    push_span(&trace, SpanKind::Submitted, now);
    push_span(&trace, SpanKind::Queued, now);
    state.jobs.insert(
        id,
        JobRecord {
            spec: Some(spec),
            key,
            state: JobState::Queued,
            from_cache: false,
            outcome: None,
            error: None,
            events: Arc::new(Mutex::new(EventLog::default())),
            trace,
            queued_at_nanos: now,
        },
    );
    state.queue.push(QueueRef {
        priority,
        seq: std::cmp::Reverse(seq),
        id,
    });
    state.queued += 1;
    state.submitted += 1;
    state.queued_hwm = state.queued_hwm.max(state.queued);
    metrics.jobs_submitted.inc();
    metrics.queue_depth_hwm.record_max(state.queued as u64);
    id
}

/// Blocks until the job reaches a terminal state (shared by
/// [`LocalExecutor::wait_job`] and the handle's `wait`, which may
/// outlive the executor value and therefore works over `&Shared`).
// Deliberate timing code: wall-clock deadlines for `wait_timeout`.
#[allow(clippy::disallowed_methods)]
fn wait_on(
    shared: &Shared,
    id: u64,
    timeout: Option<Duration>,
) -> Result<Arc<RunOutcome>, ExecError> {
    let deadline = timeout.map(|t| Instant::now() + t);
    let mut state = shared.state.lock().expect("pool poisoned");
    loop {
        match state.jobs.get(&id) {
            None => return Err(ExecError::UnknownJob),
            Some(record) if record.state.is_terminal() => {
                return outcome_of(&state, id);
            }
            Some(_) => {}
        }
        state = match deadline {
            None => shared.job_done.wait(state).expect("pool poisoned"),
            Some(deadline) => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(ExecError::NotFinished);
                }
                shared
                    .job_done
                    .wait_timeout(state, deadline - now)
                    .expect("pool poisoned")
                    .0
            }
        };
    }
}

/// Cancels a still-queued job (shared by [`LocalExecutor::cancel_job`]
/// and the handle's `cancel`).
fn cancel_on(shared: &Shared, id: u64) -> Result<(), ExecError> {
    let mut state = shared.state.lock().expect("pool poisoned");
    let record = state.jobs.get_mut(&id).ok_or(ExecError::UnknownJob)?;
    if record.state != JobState::Queued {
        return Err(ExecError::NotCancellable);
    }
    record.state = JobState::Cancelled;
    record.spec = None;
    push_event(&record.events, RunEvent::Cancelled);
    push_span(&record.trace, SpanKind::Cancelled, monotonic_nanos());
    state.queued -= 1;
    state.counters.cancelled += 1;
    record_terminal(&mut state, shared.retain_jobs, id);
    drop(state);
    shared.job_done.notify_all();
    Ok(())
}

fn push_event(events: &Arc<Mutex<EventLog>>, event: RunEvent) {
    events.lock().expect("event log poisoned").push(event);
}

fn push_span(trace: &Arc<Mutex<JobTrace>>, kind: SpanKind, at_nanos: u64) {
    trace
        .lock()
        .expect("trace log poisoned")
        .record(kind, at_nanos);
}

fn outcome_of(state: &PoolState, id: u64) -> Result<Arc<RunOutcome>, ExecError> {
    let record = state.jobs.get(&id).ok_or(ExecError::UnknownJob)?;
    match record.state {
        // lint: allow(panic) JobState::Done is only ever set together with
        // the outcome, under the same state lock
        JobState::Done => Ok(record.outcome.clone().expect("done job has an outcome")),
        JobState::Failed => Err(ExecError::Failed {
            message: record.error.clone().unwrap_or_else(|| "unknown".into()),
        }),
        JobState::Cancelled => Err(ExecError::Cancelled),
        _ => Err(ExecError::NotFinished),
    }
}

/// The sampling observer a worker runs with: every `stride`-th round is
/// published into the job's event log, where handles and the service's
/// `WATCH` verb poll it *while the run is still in flight*.
///
/// The publisher holds only the job's own event-log `Arc` — never the
/// pool's state lock — so per-round publishing contends with nothing but
/// the (rare) watcher of this very job.
struct EventPublisher {
    events: Arc<Mutex<EventLog>>,
    /// The job's span ring: sampled rounds land here too, so a `TRACE`
    /// of a finished job shows its in-flight cadence.  Held as its own
    /// `Arc` — the publisher never touches the pool lock.
    trace: Arc<Mutex<JobTrace>>,
    stride: usize,
}

impl Observer for EventPublisher {
    fn on_start(&mut self, view: &StepView<'_>) {
        push_event(
            &self.events,
            RunEvent::Started {
                nodes: view.node_count(),
            },
        );
    }

    fn on_round(&mut self, view: &StepView<'_>) {
        if view.round().is_multiple_of(self.stride) {
            push_event(
                &self.events,
                RunEvent::Progress {
                    round: view.round(),
                    changed: view.changed(),
                    histogram: view.histogram(),
                },
            );
            push_span(
                &self.trace,
                SpanKind::Progress {
                    round: view.round() as u64,
                },
                monotonic_nanos(),
            );
        }
    }
}

/// The persistent worker body: claim → cache probe → execute (publishing
/// sampled progress) → record.
fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("pool poisoned");
    loop {
        // Claim the next runnable job, skipping stale queue entries: a job
        // cancelled while queued leaves its heap entry behind, and the
        // terminal-retention window may have evicted its record entirely
        // by the time a worker pops the entry.  Neither case may panic —
        // that would poison the state lock and take the whole pool down —
        // so a missing or non-queued record is simply skipped.
        let claimed = loop {
            match state.queue.pop() {
                Some(entry) => {
                    let Some(record) = state.jobs.get_mut(&entry.id) else {
                        continue; // cancelled, then evicted from retention
                    };
                    if record.state != JobState::Queued {
                        continue; // cancelled while queued
                    }
                    // Claim the job before any foreign code runs: the
                    // cache probe happens OUTSIDE the state lock (it may
                    // block), and a Running job cannot be cancelled or
                    // evicted, so the record is guaranteed to survive
                    // until the worker reports back.
                    record.state = JobState::Running;
                    // lint: allow(panic) the spec is taken exactly once, on
                    // this Queued -> Running transition
                    let spec = record.spec.take().expect("queued job still has its spec");
                    let key = record.key;
                    let events = Arc::clone(&record.events);
                    let trace = Arc::clone(&record.trace);
                    let claimed_at = monotonic_nanos();
                    shared
                        .metrics
                        .queue_wait_us
                        .record(claimed_at.saturating_sub(record.queued_at_nanos) / 1_000);
                    push_span(&trace, SpanKind::Claimed, claimed_at);
                    push_span(&trace, SpanKind::Running, claimed_at);
                    state.queued -= 1;
                    state.running += 1;
                    // A job stepping with T threads counts as T pool
                    // slots: this worker is one, and up to T-1 extra are
                    // borrowed from idle capacity so band-parallel runs
                    // never oversubscribe the pool.  `threads=auto`
                    // resolves pool-aware — to 1 — because the pool is
                    // already saturated with whole jobs.
                    let requested = spec.options.threads;
                    let step_threads = if requested > 1 {
                        let idle = shared
                            .workers
                            .saturating_sub(state.running + state.borrowed);
                        let extra = (requested - 1).min(idle);
                        state.borrowed += extra;
                        1 + extra
                    } else {
                        1
                    };
                    break Some((entry.id, key, spec, events, trace, claimed_at, step_threads));
                }
                None if state.shutdown => break None,
                None => {
                    state = shared.work_ready.wait(state).expect("pool poisoned");
                }
            }
        };
        let Some((id, key, spec, events, trace, claimed_at, step_threads)) = claimed else {
            return; // drained and shutting down
        };
        drop(state);

        // Probe the result store under the canonical key — off the lock,
        // so a slow store stalls only this worker.  A hit completes the
        // job without ever executing.
        let cached = match (&shared.cache, key) {
            (Some(cache), Some(key)) => cache.probe(&key),
            _ => None,
        };
        if let Some(outcome) = cached {
            state = shared.state.lock().expect("pool poisoned");
            state.running -= 1;
            state.borrowed -= step_threads - 1;
            // lint: allow(panic) Running jobs are never cancelled or
            // evicted, so the record outlives the worker
            let record = state.jobs.get_mut(&id).expect("running job exists");
            record.state = JobState::Done;
            record.from_cache = true;
            // Terminal events are pushed under the state lock (nested
            // state → event-log order) so a watcher can never see the
            // stream close while the job still reports as running.
            push_event(
                &events,
                RunEvent::Finished {
                    rounds: outcome.rounds,
                    termination: outcome.termination,
                },
            );
            let done_at = monotonic_nanos();
            push_span(&trace, SpanKind::Done, done_at);
            shared
                .metrics
                .job_run_us
                .record(done_at.saturating_sub(claimed_at) / 1_000);
            record.outcome = Some(outcome);
            state.counters.done += 1;
            record_terminal(&mut state, shared.retain_jobs, id);
            shared.job_done.notify_all();
            continue;
        }

        // Execute with the slots reserved at claim time (1 when the spec
        // did not explicitly ask for step-parallelism).  The publisher
        // touches only the job's own event log, never the pool lock.
        let stride = spec.options.progress_stride();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut publisher = EventPublisher {
                events: Arc::clone(&events),
                trace: Arc::clone(&trace),
                stride,
            };
            Runner::with_threads(step_threads).execute_observed(&spec, &mut publisher)
        }));
        let result = match result {
            Ok(outcome) => {
                let outcome = Arc::new(outcome);
                // Memoize off the lock, before the job is reported done.
                if let (Some(cache), Some(key)) = (&shared.cache, key) {
                    cache.publish(key, &outcome);
                }
                Ok(outcome)
            }
            Err(panic) => Err(panic_message(panic.as_ref())),
        };

        state = shared.state.lock().expect("pool poisoned");
        state.running -= 1;
        state.borrowed -= step_threads - 1;
        // lint: allow(panic) Running jobs are never cancelled or evicted,
        // so the record outlives the worker
        let record = state.jobs.get_mut(&id).expect("running job exists");
        // Terminal events are pushed under the state lock (nested
        // state → event-log order) so a watcher can never see the stream
        // close while the job still reports as running.
        let finished_at = monotonic_nanos();
        shared
            .metrics
            .job_run_us
            .record(finished_at.saturating_sub(claimed_at) / 1_000);
        match result {
            Ok(outcome) => {
                record.state = JobState::Done;
                push_event(
                    &events,
                    RunEvent::Finished {
                        rounds: outcome.rounds,
                        termination: outcome.termination,
                    },
                );
                push_span(&trace, SpanKind::Done, finished_at);
                record.outcome = Some(outcome);
                state.counters.done += 1;
            }
            Err(message) => {
                record.state = JobState::Failed;
                push_event(
                    &events,
                    RunEvent::Failed {
                        message: message.clone(),
                    },
                );
                push_span(&trace, SpanKind::Failed, finished_at);
                record.error = Some(message);
                state.counters.failed += 1;
            }
        }
        record_terminal(&mut state, shared.retain_jobs, id);
        shared.job_done.notify_all();
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "execution panicked".into()
    }
}

/// The local pool's [`JobControl`]: shares the pool state, owns its own
/// event cursor.
struct LocalHandle {
    shared: Arc<Shared>,
    id: u64,
    cursor: EventCursor,
}

impl JobControl for LocalHandle {
    fn label(&self) -> String {
        format!("local:{}", self.id)
    }

    fn status(&mut self) -> Result<JobStatus, ExecError> {
        let state = self.shared.state.lock().expect("pool poisoned");
        let record = state.jobs.get(&self.id).ok_or(ExecError::UnknownJob)?;
        Ok(JobStatus {
            state: record.state,
            from_cache: record.from_cache,
        })
    }

    fn wait(&mut self, timeout: Option<Duration>) -> Result<Arc<RunOutcome>, ExecError> {
        // The shared helper works over &Shared, so a handle outliving the
        // executor value still waits through the pool state.
        wait_on(&self.shared, self.id, timeout)
    }

    fn try_outcome(&mut self) -> Result<Option<Arc<RunOutcome>>, ExecError> {
        let state = self.shared.state.lock().expect("pool poisoned");
        match outcome_of(&state, self.id) {
            Ok(outcome) => Ok(Some(outcome)),
            Err(ExecError::NotFinished) => Ok(None),
            Err(other) => Err(other),
        }
    }

    fn cancel(&mut self) -> Result<(), ExecError> {
        cancel_on(&self.shared, self.id)
    }

    fn poll_events(&mut self) -> Result<Vec<RunEvent>, ExecError> {
        // As LocalExecutor::events_since: take the log handle under the
        // pool lock, clone the events outside it.
        let events = {
            let state = self.shared.state.lock().expect("pool poisoned");
            let record = state.jobs.get(&self.id).ok_or(ExecError::UnknownJob)?;
            Arc::clone(&record.events)
        };
        let events = events.lock().expect("event log poisoned");
        Ok(events.poll(&mut self.cursor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EngineOptions, RuleSpec, SeedSpec, TopologySpec};

    fn spec(size: usize, node: usize) -> RunSpec {
        RunSpec::new(
            TopologySpec::toroidal_mesh(size, size),
            RuleSpec::parse("smp").unwrap(),
            SeedSpec::nodes(Color::new(1), Color::new(2), [node]),
        )
    }

    fn small_pool(workers: usize) -> LocalExecutor {
        LocalExecutor::start(LocalExecutorConfig {
            workers,
            queue_capacity: 64,
            retain_jobs: 4096,
        })
    }

    #[test]
    fn submit_wait_matches_runner() {
        let pool = small_pool(2);
        let spec = spec(6, 3);
        let mut handle = pool.submit(&spec, SubmitOptions::default()).unwrap();
        let outcome = handle.wait().unwrap();
        assert_eq!(*outcome, Runner::with_threads(1).execute(&spec));
        let status = handle.status().unwrap();
        assert_eq!(status.state, JobState::Done);
        assert!(!status.from_cache);
        assert!(handle.try_outcome().unwrap().is_some());
        assert!(handle.label().starts_with("local:"));
        pool.shutdown();
    }

    #[test]
    fn worker_panic_fails_the_job_and_leaves_the_pool_usable() {
        let pool = small_pool(1);
        // Seed node 100 does not fit a 6x6 torus: the runner panics
        // inside the worker, which must surface as a Failed job — not
        // poison the pool or kill the worker thread.
        let bad = spec(6, 100);
        let mut handle = pool.submit(&bad, SubmitOptions::default()).unwrap();
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, ExecError::Failed { .. }), "{err:?}");
        assert_eq!(handle.status().unwrap().state, JobState::Failed);
        let events = handle.poll_events().unwrap();
        assert!(
            matches!(events.last(), Some(RunEvent::Failed { .. })),
            "{events:?}"
        );
        // The sole worker must pick up and finish the next job, and the
        // pool must still drain cleanly.
        let good = spec(6, 3);
        let outcome = pool
            .submit(&good, SubmitOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(*outcome, Runner::with_threads(1).execute(&good));
        pool.shutdown();
    }

    #[test]
    fn event_stream_opens_progresses_and_closes() {
        let pool = small_pool(1);
        let spec = spec(8, 0);
        let mut handle = pool.submit(&spec, SubmitOptions::default()).unwrap();
        handle.wait().unwrap();
        let events = handle.poll_events().unwrap();
        assert!(
            matches!(events.first(), Some(RunEvent::Started { nodes: 64 })),
            "{events:?}"
        );
        assert!(
            matches!(events.last(), Some(RunEvent::Finished { .. })),
            "{events:?}"
        );
        let rounds: Vec<usize> = events.iter().filter_map(RunEvent::progress_round).collect();
        assert!(!rounds.is_empty(), "auto stride samples every round");
        assert!(
            rounds.windows(2).all(|w| w[0] < w[1]),
            "progress rounds are strictly increasing: {rounds:?}"
        );
        // Histograms cover the whole vertex set.
        for event in &events {
            if let RunEvent::Progress { histogram, .. } = event {
                assert_eq!(histogram.total(), 64);
            }
        }
        // A fresh poll returns nothing (the cursor advanced past the
        // terminal event).
        assert!(handle.poll_events().unwrap().is_empty());
        pool.shutdown();
    }

    #[test]
    fn progress_stride_samples_every_nth_round() {
        let pool = small_pool(1);
        let strided = spec(8, 0).with_options(EngineOptions::default().with_progress_every(3));
        let mut handle = pool.submit(&strided, SubmitOptions::default()).unwrap();
        handle.wait().unwrap();
        let events = handle.poll_events().unwrap();
        let rounds: Vec<usize> = events.iter().filter_map(RunEvent::progress_round).collect();
        assert!(rounds.iter().all(|r| r.is_multiple_of(3)), "{rounds:?}");
        pool.shutdown();
    }

    #[test]
    fn wait_observed_feeds_every_event() {
        let pool = small_pool(2);
        let mut handle = pool.submit(&spec(10, 1), SubmitOptions::default()).unwrap();
        let mut seen = Vec::new();
        let outcome = handle.wait_observed(|e| seen.push(e.clone())).unwrap();
        assert!(
            matches!(seen.last(), Some(RunEvent::Finished { rounds, .. }) if *rounds == outcome.rounds)
        );
        assert!(seen.iter().any(|e| matches!(e, RunEvent::Started { .. })));
        pool.shutdown();
    }

    #[test]
    fn submit_sweep_is_ordered_and_atomic() {
        let pool = small_pool(4);
        let specs: Vec<RunSpec> = (0..6).map(|n| spec(5, n)).collect();
        let handles = pool.submit_sweep(&specs, SubmitOptions::default()).unwrap();
        assert_eq!(handles.len(), specs.len());
        for (mut handle, s) in handles.into_iter().zip(&specs) {
            assert_eq!(*handle.wait().unwrap(), Runner::with_threads(1).execute(s));
        }
        assert!(matches!(
            pool.submit_sweep(&[], SubmitOptions::default()),
            Err(ExecError::Backend(_))
        ));
        pool.shutdown();
    }

    #[test]
    fn explicit_step_threads_borrow_pool_slots_and_keep_outcomes() {
        // A 1-worker pool has no idle capacity to lend: a spec asking
        // for 8 step-threads still completes, stepping sequentially, and
        // the outcome matches the plain runner bit for bit.
        let pool = small_pool(1);
        let threaded = spec(7, 2).with_options(EngineOptions::default().with_threads(8));
        let mut handle = pool.submit(&threaded, SubmitOptions::default()).unwrap();
        let outcome = handle.wait().unwrap();
        assert_eq!(*outcome, Runner::with_threads(1).execute(&threaded));
        let stats = outcome.round_stats.expect("fresh runs carry stats");
        assert_eq!(stats.threads, 1, "no idle slots on a 1-worker pool");
        pool.shutdown();

        // With idle workers the job borrows them as step-threads (the
        // claiming worker plus three borrowed slots) and the outcome is
        // still identical.
        let pool = small_pool(4);
        let mut handle = pool.submit(&threaded, SubmitOptions::default()).unwrap();
        let outcome = handle.wait().unwrap();
        assert_eq!(*outcome, Runner::with_threads(1).execute(&threaded));
        let stats = outcome.round_stats.expect("fresh runs carry stats");
        assert_eq!(stats.threads, 4, "1 claimed + 3 borrowed of 4 workers");
        pool.shutdown();
    }

    #[test]
    fn queue_bound_rejects_overflow() {
        let pool = LocalExecutor::start(LocalExecutorConfig {
            workers: 1,
            queue_capacity: 2,
            retain_jobs: 4096,
        });
        let mut rejected = 0usize;
        for n in 0..64 {
            match pool.enqueue(spec(16, n), Priority::Normal) {
                Ok(_) => {}
                Err(ExecError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected > 0, "the bound must reject a burst of 64");
        pool.shutdown();
    }

    #[test]
    fn cancellation_only_while_queued_and_emits_event() {
        let pool = LocalExecutor::start(LocalExecutorConfig {
            workers: 1,
            queue_capacity: 64,
            retain_jobs: 4096,
        });
        let mut head = pool.submit(&spec(24, 0), SubmitOptions::default()).unwrap();
        let mut tail = pool.submit(&spec(24, 1), SubmitOptions::default()).unwrap();
        match tail.cancel() {
            Ok(()) => {
                assert_eq!(tail.status().unwrap().state, JobState::Cancelled);
                assert!(matches!(tail.wait(), Err(ExecError::Cancelled)));
                let events = tail.poll_events().unwrap();
                assert_eq!(events, vec![RunEvent::Cancelled]);
            }
            Err(ExecError::NotCancellable) => {
                // The worker was faster; that is a legal race.
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
        head.wait().unwrap();
        assert!(matches!(head.cancel(), Err(ExecError::NotCancellable)));
        pool.shutdown();
    }

    #[test]
    fn priority_orders_the_queue() {
        let entry = |priority, seq, id| QueueRef {
            priority,
            seq: std::cmp::Reverse(seq),
            id,
        };
        let mut heap = BinaryHeap::new();
        heap.push(entry(Priority::Normal, 0, 1));
        heap.push(entry(Priority::Low, 1, 2));
        heap.push(entry(Priority::High, 2, 3));
        heap.push(entry(Priority::High, 3, 4));
        heap.push(entry(Priority::Normal, 4, 5));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|e| e.id).collect();
        // High first (FIFO within high), then normal (FIFO), then low.
        assert_eq!(order, vec![3, 4, 1, 5, 2]);
    }

    #[test]
    fn drain_finishes_admitted_work_and_rejects_new() {
        let pool = small_pool(2);
        let ids: Vec<u64> = (0..8)
            .map(|n| pool.enqueue(spec(8, n), Priority::Normal).unwrap())
            .collect();
        pool.shutdown();
        for id in ids {
            assert_eq!(pool.job_status(id).unwrap().state, JobState::Done);
            assert!(pool.job_outcome(id).is_ok());
        }
        assert!(matches!(
            pool.enqueue(spec(4, 0), Priority::Normal),
            Err(ExecError::ShuttingDown)
        ));
        // Idempotent.
        pool.shutdown();
    }

    #[test]
    fn terminal_records_are_bounded() {
        let pool = LocalExecutor::start(LocalExecutorConfig {
            workers: 1,
            queue_capacity: 64,
            retain_jobs: 4,
        });
        let ids: Vec<u64> = (0..8)
            .map(|n| pool.enqueue(spec(4, n), Priority::Normal).unwrap())
            .collect();
        pool.shutdown();
        assert_eq!(pool.job_status(ids[7]).unwrap().state, JobState::Done);
        assert!(matches!(
            pool.job_status(ids[0]),
            Err(ExecError::UnknownJob)
        ));
        assert!(matches!(
            pool.events_since(ids[0], None),
            Err(ExecError::UnknownJob)
        ));
    }

    #[test]
    fn wait_times_out_with_not_finished() {
        let pool = LocalExecutor::start(LocalExecutorConfig {
            workers: 1,
            queue_capacity: 64,
            retain_jobs: 4096,
        });
        let _head = pool.enqueue(spec(32, 0), Priority::Normal).unwrap();
        let tail = pool.enqueue(spec(32, 1), Priority::Normal).unwrap();
        match pool.wait_job(tail, Some(Duration::from_millis(1))) {
            Err(ExecError::NotFinished) => {}
            Ok(_) => {} // absurdly fast machine; still correct
            Err(other) => panic!("unexpected error: {other}"),
        }
        pool.shutdown();
    }

    #[test]
    fn cache_hook_completes_jobs_without_executing() {
        struct CountingCache {
            store: Mutex<HashMap<SpecKey, Arc<RunOutcome>>>,
            probes: Mutex<usize>,
        }
        impl OutcomeCache for CountingCache {
            fn probe(&self, key: &SpecKey) -> Option<Arc<RunOutcome>> {
                *self.probes.lock().unwrap() += 1;
                self.store.lock().unwrap().get(key).cloned()
            }
            fn publish(&self, key: SpecKey, outcome: &Arc<RunOutcome>) {
                self.store.lock().unwrap().insert(key, Arc::clone(outcome));
            }
        }
        let cache = Arc::new(CountingCache {
            store: Mutex::new(HashMap::new()),
            probes: Mutex::new(0),
        });
        let pool = LocalExecutor::start_with_cache(
            LocalExecutorConfig {
                workers: 1,
                ..LocalExecutorConfig::default()
            },
            Some(Arc::clone(&cache) as Arc<dyn OutcomeCache>),
        );
        let s = spec(6, 2);
        let mut first = pool.submit(&s, SubmitOptions::default()).unwrap();
        let a = first.wait().unwrap();
        let mut second = pool.submit(&s, SubmitOptions::default()).unwrap();
        let b = second.wait().unwrap();
        assert_eq!(a, b, "memoized outcome is byte-identical");
        assert!(second.status().unwrap().from_cache);
        assert!(!first.status().unwrap().from_cache);
        // A cache-hit stream still closes with a terminal event.
        let events = second.poll_events().unwrap();
        assert!(matches!(events.last(), Some(RunEvent::Finished { .. })));
        assert_eq!(*cache.probes.lock().unwrap(), 2);
        pool.shutdown();
    }

    /// A threshold-1 growth scenario: one seed floods the torus in ~size
    /// rounds, so the event stream has a long strictly-increasing body.
    fn growth_spec(size: usize) -> RunSpec {
        RunSpec::new(
            TopologySpec::toroidal_mesh(size, size),
            RuleSpec::parse("threshold(2,1)").unwrap(),
            SeedSpec::nodes(Color::new(2), Color::new(1), [0usize]),
        )
    }

    #[test]
    fn events_since_filters_by_round_and_always_closes() {
        let pool = small_pool(1);
        let id = pool.enqueue(growth_spec(8), Priority::Normal).unwrap();
        pool.wait_job(id, None).unwrap();
        let all = pool.events_since(id, None).unwrap();
        assert!(matches!(all.first(), Some(RunEvent::Started { .. })));
        assert!(matches!(all.last(), Some(RunEvent::Finished { .. })));
        let rounds: Vec<usize> = all.iter().filter_map(RunEvent::progress_round).collect();
        assert!(rounds.len() >= 2, "need at least two rounds: {rounds:?}");
        let mid = rounds[rounds.len() / 2];
        let later = pool.events_since(id, Some(mid)).unwrap();
        assert!(later
            .iter()
            .filter_map(RunEvent::progress_round)
            .all(|r| r > mid));
        assert!(
            matches!(later.last(), Some(RunEvent::Finished { .. })),
            "a watcher that has seen everything still sees the close"
        );
        assert!(!later.iter().any(|e| matches!(e, RunEvent::Started { .. })));
        pool.shutdown();
    }

    #[test]
    fn event_log_bounds_progress_retention() {
        let mut log = EventLog::default();
        log.push(RunEvent::Started { nodes: 9 });
        for round in 1..=(PROGRESS_RETAIN + 10) {
            log.push(RunEvent::Progress {
                round,
                changed: 1,
                histogram: ColorHistogram {
                    round,
                    counts: vec![],
                },
            });
        }
        // In flight: bounded at PROGRESS_RETAIN, oldest dropped.
        assert_eq!(log.progress.len(), PROGRESS_RETAIN);
        assert_eq!(log.dropped, 10);
        // Terminal: the log shrinks to the newest tail.
        log.push(RunEvent::Cancelled);
        assert_eq!(log.progress.len(), TERMINAL_PROGRESS_RETAIN);
        assert_eq!(log.dropped, PROGRESS_RETAIN + 10 - TERMINAL_PROGRESS_RETAIN);
        let all = log.since_round(None);
        assert!(matches!(all.first(), Some(RunEvent::Started { .. })));
        assert!(matches!(all.last(), Some(RunEvent::Cancelled)));
        assert_eq!(all.len(), TERMINAL_PROGRESS_RETAIN + 2);
        // The newest progress events are the ones kept.
        assert_eq!(
            all[1].progress_round(),
            Some(PROGRESS_RETAIN + 10 - TERMINAL_PROGRESS_RETAIN + 1)
        );
        // A cursor that saw the dropped prefix does not re-see survivors.
        let mut cursor = EventCursor {
            seen_started: true,
            next_progress: 5,
            seen_terminal: false,
        };
        let polled = log.poll(&mut cursor);
        assert_eq!(
            polled.len(),
            TERMINAL_PROGRESS_RETAIN + 1,
            "survivors + terminal"
        );
        assert!(log.poll(&mut cursor).is_empty());
    }

    #[test]
    fn wait_observed_terminates_on_an_already_drained_stream() {
        let pool = small_pool(1);
        let mut handle = pool.submit(&spec(6, 1), SubmitOptions::default()).unwrap();
        // First wait_observed drains the stream including the terminal
        // event; a second call must still return (status fallback), not
        // spin on an empty stream forever.
        let first = handle.wait_observed(|_| {}).unwrap();
        let second = handle.wait_observed(|_| {}).unwrap();
        assert_eq!(first, second);
        // Same via a manual poll loop that consumed the terminal event.
        let mut other = pool.submit(&spec(6, 2), SubmitOptions::default()).unwrap();
        other.wait().unwrap();
        let drained = other.poll_events().unwrap();
        assert!(drained.iter().any(RunEvent::is_terminal));
        other.wait_observed(|_| {}).unwrap();
        pool.shutdown();
    }

    #[test]
    fn run_events_round_trip_as_text() {
        let events = vec![
            RunEvent::Started { nodes: 1024 },
            RunEvent::Progress {
                round: 7,
                changed: 31,
                histogram: ColorHistogram {
                    round: 7,
                    counts: vec![(Color::new(1), 1000), (Color::new(2), 24)],
                },
            },
            RunEvent::Progress {
                round: 8,
                changed: 0,
                histogram: ColorHistogram {
                    round: 8,
                    counts: vec![],
                },
            },
            RunEvent::Finished {
                rounds: 9,
                termination: Termination::Monochromatic(Color::new(2)),
            },
            RunEvent::Finished {
                rounds: 4,
                termination: Termination::Cycle { period: 2 },
            },
            RunEvent::Finished {
                rounds: 0,
                termination: Termination::FixedPoint,
            },
            RunEvent::Finished {
                rounds: 100,
                termination: Termination::RoundLimit,
            },
            RunEvent::Failed {
                message: "seed does not fit\nthe topology".into(),
            },
            RunEvent::Cancelled,
        ];
        for event in &events {
            let line = event.to_text();
            let rebuilt = RunEvent::from_text(&line)
                .unwrap_or_else(|e| panic!("reparse failed: {e}\n{line}"));
            // The failed message had its newline flattened; everything
            // else round-trips identically.
            if let RunEvent::Failed { .. } = event {
                assert!(matches!(rebuilt, RunEvent::Failed { ref message }
                    if message == "seed does not fit; the topology"));
            } else {
                assert_eq!(&rebuilt, event, "\n{line}");
            }
        }
        let block = events_to_text(&events[..3]);
        assert_eq!(events_from_text(&block).unwrap(), events[..3]);
        assert_eq!(events_from_text("").unwrap(), vec![]);
    }

    #[test]
    fn event_parse_errors_are_descriptive() {
        for bad in [
            "progress round=1",
            "event: levitated",
            "event: started",
            "event: started nodes=many",
            "event: progress round=1 changed=2 histogram=1;2",
            "event: progress round=1 changed=2 histogram=0:5",
            "event: progress round=1 histogram=-",
            "event: finished rounds=2 termination=vanished",
            "event: finished rounds=2 termination=monochromatic:0",
            "event: failed",
        ] {
            let err = RunEvent::from_text(bad).unwrap_err();
            assert!(!err.detail.is_empty(), "{bad}");
            let boxed: Box<dyn std::error::Error> = Box::new(err);
            assert!(boxed.to_string().contains("bad run event"));
        }
    }

    #[test]
    fn tokens_round_trip() {
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert_eq!(Priority::parse_token(&p.to_string()), Some(p));
        }
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::parse_token(&s.to_string()), Some(s));
        }
        assert_eq!(Priority::parse_token("urgent"), None);
        assert_eq!(JobState::parse_token("gone"), None);
    }

    #[test]
    fn job_trace_records_the_full_lifecycle() {
        let pool = small_pool(1);
        let mut handle = pool.submit(&spec(8, 0), SubmitOptions::default()).unwrap();
        let id = 1;
        handle.wait().unwrap();
        let trace = pool.job_trace(id).unwrap();
        assert!(trace.is_monotone(), "{trace:?}");
        let kinds: Vec<SpanKind> = trace.spans().iter().map(|s| s.kind).collect();
        assert_eq!(kinds[0], SpanKind::Submitted);
        assert_eq!(kinds[1], SpanKind::Queued);
        assert_eq!(kinds[2], SpanKind::Claimed);
        assert_eq!(kinds[3], SpanKind::Running);
        assert_eq!(trace.terminal().map(|s| s.kind), Some(SpanKind::Done));
        assert!(
            kinds.iter().any(|k| matches!(k, SpanKind::Progress { .. })),
            "sampled rounds appear as progress spans: {kinds:?}"
        );
        assert!(trace.queue_wait_nanos().is_some());
        assert!(trace.run_nanos().is_some());
        assert!(matches!(pool.job_trace(999), Err(ExecError::UnknownJob)));
        pool.shutdown();
    }

    #[test]
    fn cancelled_job_trace_ends_cancelled() {
        // Zero workers never claim, so the job stays cancellable.
        let pool = LocalExecutor::start(LocalExecutorConfig {
            workers: 1,
            queue_capacity: 64,
            retain_jobs: 64,
        });
        // Saturate the single worker with one long job, then cancel a
        // queued one behind it.
        let _busy = pool.submit(&spec(24, 0), SubmitOptions::default()).unwrap();
        let mut queued = pool.submit(&spec(24, 1), SubmitOptions::default()).unwrap();
        if queued.cancel().is_ok() {
            let trace = pool.job_trace(2).unwrap();
            assert_eq!(
                trace.terminal().map(|s| s.kind),
                Some(SpanKind::Cancelled),
                "{trace:?}"
            );
            assert!(trace.queue_wait_nanos().is_none(), "never claimed");
        }
        pool.shutdown();
    }

    #[test]
    fn telemetry_registry_tracks_submissions_and_latencies() {
        let pool = small_pool(2);
        for n in 0..4 {
            pool.submit(&spec(6, n), SubmitOptions::default())
                .unwrap()
                .wait()
                .unwrap();
        }
        let snapshot = pool.telemetry().snapshot();
        assert_eq!(snapshot.counter("exec.jobs.submitted"), Some(4));
        assert!(snapshot.gauge("exec.queue.depth-hwm").unwrap() >= 1);
        let wait = snapshot.histogram("exec.queue.wait-us").unwrap();
        assert_eq!(wait.count, 4);
        let run = snapshot.histogram("exec.job.run-us").unwrap();
        assert_eq!(run.count, 4);
        let stats = pool.stats();
        assert_eq!(stats.submitted, 4);
        assert!(stats.queued_hwm >= 1);
        pool.shutdown();
    }

    #[test]
    fn exec_errors_display() {
        assert!(ExecError::QueueFull { capacity: 8 }
            .to_string()
            .contains("8"));
        assert!(!ExecError::QueueFull { capacity: 0 }
            .to_string()
            .contains("0"));
        assert!(ExecError::Failed {
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        let boxed: Box<dyn std::error::Error> = Box::new(ExecError::TimedOut);
        assert!(boxed.to_string().contains("timed out"));
    }
}
