//! The named metrics registry and its mergeable, text-serialisable
//! snapshots.
//!
//! A [`Registry`] maps dotted names to live metric handles
//! ([`super::Counter`] / [`super::Gauge`] / [`super::Histogram`]).
//! Registration hands back an `Arc` that callers keep; after that the
//! hot path touches only the metric's own atomics — the registry mutex
//! guards registration and [`Registry::snapshot`] alone, so it is never
//! part of a request or a worker loop.
//!
//! A [`MetricsSnapshot`] is the plain-data exposition: ordered
//! `key: value` lines ([`MetricsSnapshot::to_text`] /
//! [`MetricsSnapshot::from_text`], the same round-trip discipline as
//! every other wire type in the workspace) and an associative,
//! commutative [`MetricsSnapshot::merge`] (counters add, gauges max,
//! histograms bucket-wise) so shards or processes can be aggregated in
//! any order.

use super::counters::{Counter, Gauge};
use super::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A live metric handle held by the registry.
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of live metrics.  See the [module docs](self).
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Handle>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// A name previously registered as a different kind is replaced (a
    /// programming error; telemetry never panics over it).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        if let Some(Handle::Counter(counter)) = metrics.get(name) {
            return Arc::clone(counter);
        }
        let counter = Arc::new(Counter::new());
        metrics.insert(name.to_string(), Handle::Counter(Arc::clone(&counter)));
        counter
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        if let Some(Handle::Gauge(gauge)) = metrics.get(name) {
            return Arc::clone(gauge);
        }
        let gauge = Arc::new(Gauge::new());
        metrics.insert(name.to_string(), Handle::Gauge(Arc::clone(&gauge)));
        gauge
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        if let Some(Handle::Histogram(histogram)) = metrics.get(name) {
            return Arc::clone(histogram);
        }
        let histogram = Arc::new(Histogram::new());
        metrics.insert(name.to_string(), Handle::Histogram(Arc::clone(&histogram)));
        histogram
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("registry poisoned");
        MetricsSnapshot {
            entries: metrics
                .iter()
                .map(|(name, handle)| {
                    let value = match handle {
                        Handle::Counter(c) => MetricValue::Counter(c.value()),
                        Handle::Gauge(g) => MetricValue::Gauge(g.value()),
                        Handle::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.snapshot().len())
            .finish()
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonically increasing total.  Merges by addition.
    Counter(u64),
    /// A point-in-time level.  Merges by maximum.
    Gauge(u64),
    /// A log2 distribution.  Merges bucket-wise.  Boxed: the fixed
    /// bucket array dwarfs the scalar variants, and snapshots are
    /// cold-path values.
    Histogram(Box<HistogramSnapshot>),
}

/// A plain-data, mergeable copy of a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(name, v)| (name.as_str(), v))
    }

    /// The raw value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// The counter `name`, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// The gauge `name`, if present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(n)) => Some(*n),
            _ => None,
        }
    }

    /// The histogram `name`, if present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Inserts (or replaces) one metric — how a layer folds locally
    /// computed values into an exposition it is about to serve.
    pub fn insert(&mut self, name: impl Into<String>, value: MetricValue) {
        self.entries.insert(name.into(), value);
    }

    /// Folds `other` into `self`: counters add, gauges take the maximum,
    /// histograms merge bucket-wise, and kind mismatches keep `self`'s
    /// entry.  Associative and commutative (up to kind mismatches, which
    /// well-formed snapshots of one schema never have).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, theirs) in &other.entries {
            match self.entries.get_mut(name) {
                None => {
                    self.entries.insert(name.clone(), theirs.clone());
                }
                Some(mine) => match (mine, theirs) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    _ => {}
                },
            }
        }
    }

    /// Renders the exposition: one `key: value` line per metric, in name
    /// order.  Parses back with [`MetricsSnapshot::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(n) => out.push_str(&format!("{name}: counter {n}\n")),
                MetricValue::Gauge(n) => out.push_str(&format!("{name}: gauge {n}\n")),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{name}: hist count={} sum={} max={} buckets={}\n",
                    h.count,
                    h.sum,
                    h.max,
                    h.render_buckets()
                )),
            }
        }
        out
    }

    /// Parses an exposition produced by [`MetricsSnapshot::to_text`]
    /// (blank lines are skipped; anything else malformed is an error).
    pub fn from_text(text: &str) -> Result<MetricsSnapshot, MetricsParseError> {
        let bad = |line: usize, detail: String| MetricsParseError { line, detail };
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let (name, rest) = line
                .split_once(':')
                .ok_or_else(|| bad(lineno, format!("expected `key: value`, got {line:?}")))?;
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_'))
            {
                return Err(bad(lineno, format!("bad metric name {name:?}")));
            }
            let mut tokens = rest.split_whitespace();
            let kind = tokens.next().unwrap_or("");
            let value = match kind {
                "counter" | "gauge" => {
                    let n: u64 = tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad(lineno, format!("{kind} needs one integer")))?;
                    if tokens.next().is_some() {
                        return Err(bad(lineno, "trailing tokens".into()));
                    }
                    if kind == "counter" {
                        MetricValue::Counter(n)
                    } else {
                        MetricValue::Gauge(n)
                    }
                }
                "hist" => MetricValue::Histogram(Box::new(parse_histogram(tokens, lineno)?)),
                other => return Err(bad(lineno, format!("unknown metric kind {other:?}"))),
            };
            if entries.insert(name.to_string(), value).is_some() {
                return Err(bad(lineno, format!("duplicate metric {name:?}")));
            }
        }
        Ok(MetricsSnapshot { entries })
    }
}

/// Parses the `count=… sum=… max=… buckets=…` tail of a `hist` line.
fn parse_histogram<'a>(
    tokens: impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<HistogramSnapshot, MetricsParseError> {
    let bad = |detail: String| MetricsParseError {
        line: lineno,
        detail,
    };
    let mut snapshot = HistogramSnapshot::new();
    let (mut saw_count, mut saw_sum, mut saw_max, mut saw_buckets) = (false, false, false, false);
    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| bad(format!("expected `key=value`, got {token:?}")))?;
        match key {
            "count" => {
                snapshot.count = value
                    .parse()
                    .map_err(|_| bad(format!("{value:?} is not a count")))?;
                saw_count = true;
            }
            "sum" => {
                snapshot.sum = value
                    .parse()
                    .map_err(|_| bad(format!("{value:?} is not a sum")))?;
                saw_sum = true;
            }
            "max" => {
                snapshot.max = value
                    .parse()
                    .map_err(|_| bad(format!("{value:?} is not a max")))?;
                saw_max = true;
            }
            "buckets" => {
                if value != "-" {
                    for pair in value.split(',') {
                        let (bucket, n) = pair
                            .split_once(':')
                            .ok_or_else(|| bad(format!("malformed bucket entry {pair:?}")))?;
                        let bucket: usize = bucket
                            .parse()
                            .ok()
                            .filter(|&b| b < super::HISTOGRAM_BUCKETS)
                            .ok_or_else(|| bad(format!("{bucket:?} is not a bucket index")))?;
                        snapshot.buckets[bucket] = n
                            .parse()
                            .map_err(|_| bad(format!("{n:?} is not a bucket count")))?;
                    }
                }
                saw_buckets = true;
            }
            other => return Err(bad(format!("unknown hist field {other:?}"))),
        }
    }
    if !(saw_count && saw_sum && saw_max && saw_buckets) {
        return Err(bad("hist needs count=, sum=, max= and buckets=".into()));
    }
    Ok(snapshot)
}

/// Error produced when parsing a [`MetricsSnapshot`] from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub detail: String,
}

impl std::fmt::Display for MetricsParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad metrics line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for MetricsParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let registry = Registry::new();
        registry.counter("exec.jobs.submitted").add(17);
        registry.gauge("exec.queue.depth-hwm").record_max(5);
        let hist = registry.histogram("exec.queue.wait-us");
        hist.record(0);
        hist.record(12);
        hist.record(900);
        registry.snapshot()
    }

    #[test]
    fn registration_is_get_or_create() {
        let registry = Registry::new();
        let a = registry.counter("hits");
        let b = registry.counter("hits");
        a.inc();
        b.inc();
        assert_eq!(registry.snapshot().counter("hits"), Some(2));
        // A kind mismatch replaces the handle instead of panicking.
        let gauge = registry.gauge("hits");
        gauge.set(9);
        assert_eq!(registry.snapshot().gauge("hits"), Some(9));
    }

    #[test]
    fn snapshot_text_round_trips() {
        let snapshot = sample();
        let text = snapshot.to_text();
        assert_eq!(
            MetricsSnapshot::from_text(&text).unwrap(),
            snapshot,
            "\n{text}"
        );
        assert!(text.contains("exec.jobs.submitted: counter 17"));
        assert!(text.contains("exec.queue.depth-hwm: gauge 5"));
        assert!(text.contains("count=3"));
        // An empty snapshot is an empty exposition.
        assert_eq!(MetricsSnapshot::new().to_text(), "");
        assert_eq!(
            MetricsSnapshot::from_text("").unwrap(),
            MetricsSnapshot::new()
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "nonsense",
            "x: frobnicate 1",
            "x: counter",
            "x: counter 1 2",
            "x: hist count=1",
            "x: hist count=1 sum=2 max=3 buckets=99:1",
            "bad key: counter 1",
            "x: counter 1\nx: counter 2",
        ] {
            assert!(
                MetricsSnapshot::from_text(bad).is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn merge_adds_counters_maxes_gauges_merges_histograms() {
        let a = sample();
        let mut merged = a.clone();
        merged.merge(&a);
        assert_eq!(merged.counter("exec.jobs.submitted"), Some(34));
        assert_eq!(merged.gauge("exec.queue.depth-hwm"), Some(5));
        assert_eq!(merged.histogram("exec.queue.wait-us").unwrap().count, 6);
        // Disjoint keys union.
        let mut other = MetricsSnapshot::new();
        other.insert("server.connections", MetricValue::Counter(2));
        merged.merge(&other);
        assert_eq!(merged.counter("server.connections"), Some(2));
        assert_eq!(merged.len(), 4);
    }
}
