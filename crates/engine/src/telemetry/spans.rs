//! The job-lifecycle trace model.
//!
//! A [`JobTrace`] is a bounded ring of typed, monotonically-timestamped
//! [`SpanEvent`]s covering one job's life:
//!
//! ```text
//! submitted → queued → claimed → running → progress… → done
//!                 │                                  → failed
//!                 └──────────────────────────────────→ cancelled
//! ```
//!
//! Lifecycle spans are always kept; per-round progress spans are bounded
//! by [`TRACE_PROGRESS_RETAIN`] (oldest dropped first, counted in
//! [`JobTrace::dropped`]), so a million-round job cannot grow the
//! executor's memory.  Timestamps come from the telemetry clock
//! ([`super::clock::monotonic_nanos`]) and are clamped non-decreasing on
//! recording, so a parsed trace is always replayable in order.  The
//! queue-wait and run-time durations a TRACE consumer wants are derived
//! ([`JobTrace::queue_wait_nanos`] / [`JobTrace::run_nanos`]) rather
//! than stored.
//!
//! Like every wire type in the workspace, a trace has a line-oriented
//! text round-trip ([`JobTrace::to_text`] / [`JobTrace::from_text`]) —
//! the payload of the service's `TRACE <id>` verb.

/// How many `Progress` spans one job's trace retains.  Lifecycle spans
/// (at most six) are kept in addition.
pub const TRACE_PROGRESS_RETAIN: usize = 256;

/// What happened at one point of a job's life.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpanKind {
    /// The submission was accepted by the executor.
    Submitted,
    /// The job entered the priority queue (same instant as `Submitted`
    /// for the local pool, kept distinct for backends that admit before
    /// they queue).
    Queued,
    /// A worker popped the job off the queue.
    Claimed,
    /// The worker began executing the simulation.
    Running,
    /// A sampled synchronous round completed.
    Progress {
        /// The 1-based round that completed.
        round: u64,
    },
    /// The run finished and its outcome is available.
    Done,
    /// The execution failed.
    Failed,
    /// The job was cancelled while still queued.
    Cancelled,
}

impl SpanKind {
    /// Whether this span closes the job's trace.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SpanKind::Done | SpanKind::Failed | SpanKind::Cancelled
        )
    }

    /// The space-free wire token (`progress:<round>` for progress).
    fn token(self) -> String {
        match self {
            SpanKind::Submitted => "submitted".into(),
            SpanKind::Queued => "queued".into(),
            SpanKind::Claimed => "claimed".into(),
            SpanKind::Running => "running".into(),
            SpanKind::Progress { round } => format!("progress:{round}"),
            SpanKind::Done => "done".into(),
            SpanKind::Failed => "failed".into(),
            SpanKind::Cancelled => "cancelled".into(),
        }
    }

    /// Parses the token produced by [`SpanKind::token`].
    fn from_token(token: &str) -> Option<SpanKind> {
        match token {
            "submitted" => Some(SpanKind::Submitted),
            "queued" => Some(SpanKind::Queued),
            "claimed" => Some(SpanKind::Claimed),
            "running" => Some(SpanKind::Running),
            "done" => Some(SpanKind::Done),
            "failed" => Some(SpanKind::Failed),
            "cancelled" => Some(SpanKind::Cancelled),
            other => {
                let round = other.strip_prefix("progress:")?.parse().ok()?;
                Some(SpanKind::Progress { round })
            }
        }
    }
}

/// One timestamped point in a job's trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// What happened.
    pub kind: SpanKind,
    /// When, in nanoseconds on the recording process's telemetry clock.
    pub at_nanos: u64,
}

/// One job's bounded, ordered span trace.  See the [module docs](self).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobTrace {
    spans: Vec<SpanEvent>,
    dropped: u64,
}

impl JobTrace {
    /// An empty trace.
    pub fn new() -> JobTrace {
        JobTrace::default()
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// How many `Progress` spans the retention bound evicted.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace holds no spans yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Appends one span.  The timestamp is clamped non-decreasing
    /// against the previous span, so [`JobTrace::is_monotone`] holds by
    /// construction; `Progress` spans beyond [`TRACE_PROGRESS_RETAIN`]
    /// evict the oldest retained `Progress` span.
    pub fn record(&mut self, kind: SpanKind, at_nanos: u64) {
        let at_nanos = match self.spans.last() {
            Some(last) => at_nanos.max(last.at_nanos),
            None => at_nanos,
        };
        if matches!(kind, SpanKind::Progress { .. }) {
            let progress = self
                .spans
                .iter()
                .filter(|s| matches!(s.kind, SpanKind::Progress { .. }))
                .count();
            if progress >= TRACE_PROGRESS_RETAIN {
                if let Some(oldest) = self
                    .spans
                    .iter()
                    .position(|s| matches!(s.kind, SpanKind::Progress { .. }))
                {
                    self.spans.remove(oldest);
                    self.dropped += 1;
                }
            }
        }
        self.spans.push(SpanEvent { kind, at_nanos });
    }

    /// The timestamp of the first span of the kind `pred` accepts.
    fn first_at(&self, pred: impl Fn(SpanKind) -> bool) -> Option<u64> {
        self.spans.iter().find(|s| pred(s.kind)).map(|s| s.at_nanos)
    }

    /// The terminal span, once one was recorded.
    pub fn terminal(&self) -> Option<SpanEvent> {
        self.spans
            .iter()
            .rev()
            .find(|s| s.kind.is_terminal())
            .copied()
    }

    /// Nanoseconds the job spent waiting in the queue: first `Queued`
    /// span to first `Claimed` span.  `None` until both exist (a
    /// cancelled job never gets claimed).
    pub fn queue_wait_nanos(&self) -> Option<u64> {
        let queued = self.first_at(|k| k == SpanKind::Queued)?;
        let claimed = self.first_at(|k| k == SpanKind::Claimed)?;
        Some(claimed - queued)
    }

    /// Nanoseconds the job spent executing: first `Running` span to the
    /// terminal span.  `None` until both exist.
    pub fn run_nanos(&self) -> Option<u64> {
        let running = self.first_at(|k| k == SpanKind::Running)?;
        let terminal = self.terminal()?;
        Some(terminal.at_nanos - running)
    }

    /// Whether the timestamps never decrease (structurally true for
    /// traces built through [`JobTrace::record`]; a parsed trace from a
    /// foreign producer is validated by callers through this).
    pub fn is_monotone(&self) -> bool {
        self.spans
            .windows(2)
            .all(|w| w[0].at_nanos <= w[1].at_nanos)
    }

    /// Renders the trace: a `dropped:` line, then one `span:` line per
    /// retained span, oldest first.  Parses back with
    /// [`JobTrace::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = format!("dropped: {}\n", self.dropped);
        for span in &self.spans {
            out.push_str(&format!("span: {} {}\n", span.kind.token(), span.at_nanos));
        }
        out
    }

    /// Parses a trace produced by [`JobTrace::to_text`].
    pub fn from_text(text: &str) -> Result<JobTrace, TraceParseError> {
        let bad = |detail: String| TraceParseError { detail };
        let mut trace = JobTrace::new();
        let mut saw_dropped = false;
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(value) = line.strip_prefix("dropped:") {
                if saw_dropped {
                    return Err(bad("duplicate `dropped:` line".into()));
                }
                trace.dropped = value
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("{value:?} is not a drop count")))?;
                saw_dropped = true;
            } else if let Some(rest) = line.strip_prefix("span:") {
                let mut tokens = rest.split_whitespace();
                let kind = tokens
                    .next()
                    .and_then(SpanKind::from_token)
                    .ok_or_else(|| bad(format!("bad span kind in {line:?}")))?;
                let at_nanos = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad(format!("bad span timestamp in {line:?}")))?;
                if tokens.next().is_some() {
                    return Err(bad(format!("trailing tokens in {line:?}")));
                }
                trace.spans.push(SpanEvent { kind, at_nanos });
            } else {
                return Err(bad(format!("expected `dropped:` or `span:`, got {line:?}")));
            }
        }
        if !saw_dropped {
            return Err(bad("missing `dropped:` line".into()));
        }
        Ok(trace)
    }
}

/// Error produced when parsing a [`JobTrace`] from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// What was wrong with the input.
    pub detail: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad job trace: {}", self.detail)
    }
}

impl std::error::Error for TraceParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_trace() -> JobTrace {
        let mut trace = JobTrace::new();
        trace.record(SpanKind::Submitted, 10);
        trace.record(SpanKind::Queued, 10);
        trace.record(SpanKind::Claimed, 40);
        trace.record(SpanKind::Running, 45);
        trace.record(SpanKind::Progress { round: 8 }, 60);
        trace.record(SpanKind::Progress { round: 16 }, 80);
        trace.record(SpanKind::Done, 145);
        trace
    }

    #[test]
    fn durations_derive_from_the_spans() {
        let trace = full_trace();
        assert_eq!(trace.queue_wait_nanos(), Some(30));
        assert_eq!(trace.run_nanos(), Some(100));
        assert_eq!(trace.terminal().map(|s| s.kind), Some(SpanKind::Done));
        assert!(trace.is_monotone());
        // A cancelled job has a queue but no claim and no run.
        let mut cancelled = JobTrace::new();
        cancelled.record(SpanKind::Submitted, 5);
        cancelled.record(SpanKind::Queued, 5);
        cancelled.record(SpanKind::Cancelled, 9);
        assert_eq!(cancelled.queue_wait_nanos(), None);
        assert_eq!(cancelled.run_nanos(), None);
        assert_eq!(
            cancelled.terminal().map(|s| s.kind),
            Some(SpanKind::Cancelled)
        );
    }

    #[test]
    fn record_clamps_timestamps_monotone() {
        let mut trace = JobTrace::new();
        trace.record(SpanKind::Submitted, 100);
        trace.record(SpanKind::Queued, 90); // clock jitter across threads
        assert_eq!(trace.spans()[1].at_nanos, 100);
        assert!(trace.is_monotone());
    }

    #[test]
    fn progress_spans_are_bounded_lifecycle_spans_are_not() {
        let mut trace = JobTrace::new();
        trace.record(SpanKind::Submitted, 0);
        trace.record(SpanKind::Queued, 0);
        trace.record(SpanKind::Claimed, 1);
        trace.record(SpanKind::Running, 1);
        for round in 1..=(TRACE_PROGRESS_RETAIN as u64 + 50) {
            trace.record(SpanKind::Progress { round }, round + 1);
        }
        trace.record(SpanKind::Done, 1_000_000);
        assert_eq!(trace.dropped(), 50);
        assert_eq!(trace.len(), TRACE_PROGRESS_RETAIN + 5);
        // The oldest progress spans went first; lifecycle spans survive.
        assert_eq!(trace.spans()[0].kind, SpanKind::Submitted);
        assert_eq!(trace.spans()[4].kind, SpanKind::Progress { round: 51 });
        assert_eq!(trace.queue_wait_nanos(), Some(1));
        assert!(trace.run_nanos().is_some());
    }

    #[test]
    fn trace_text_round_trips() {
        let trace = full_trace();
        let text = trace.to_text();
        assert_eq!(JobTrace::from_text(&text).unwrap(), trace, "\n{text}");
        assert!(text.starts_with("dropped: 0\n"));
        assert!(text.contains("span: progress:8 60"));
        // An empty trace still renders its dropped line.
        let empty = JobTrace::new();
        assert_eq!(JobTrace::from_text(&empty.to_text()).unwrap(), empty);
    }

    #[test]
    fn parse_rejects_malformed_traces() {
        for bad in [
            "",
            "span: done 4\n",
            "dropped: x\n",
            "dropped: 0\ndropped: 0\n",
            "dropped: 0\nspan: warp 4\n",
            "dropped: 0\nspan: done\n",
            "dropped: 0\nspan: done 4 5\n",
            "dropped: 0\nnonsense\n",
            "dropped: 0\nspan: progress:x 4\n",
        ] {
            assert!(JobTrace::from_text(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
