//! Fixed-bucket log2 latency histograms.
//!
//! A [`Histogram`] has [`HISTOGRAM_BUCKETS`] power-of-two buckets: bucket
//! `0` holds the value `0`, and bucket `b` holds the values whose bit
//! width is `b` (the range `[2^(b-1), 2^b - 1]`), with the last bucket
//! absorbing everything above.  Recording is two relaxed atomic adds and
//! one `fetch_max` — no locks, no allocation — which makes it safe to
//! call from the executor's claim path and the server's per-request
//! path.  A [`HistogramSnapshot`] is plain data answering count / sum /
//! max / quantile queries, merging bucket-wise.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket 0 plus one per possible `u64` bit width up
/// to 63, the last one unbounded above.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The bucket a value lands in.
fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// The largest value bucket `b` represents (used as the quantile
/// estimate: quantiles are upper bounds, never underestimates).
fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A concurrent log2 histogram.  See the [module docs](self).
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snapshot.count)
            .field("sum", &snapshot.sum)
            .field("max", &snapshot.max)
            .finish()
    }
}

/// A plain-data copy of a [`Histogram`].
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping is the caller's concern; at
    /// nanosecond scale a `u64` sum holds ~584 years).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// The mean observation, `0` when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// An upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// upper edge of the first bucket whose cumulative count reaches
    /// `q * count`.  `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self` bucket-wise.  Associative and
    /// commutative, so shards and processes merge in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Renders the non-empty buckets as `index:count` pairs joined by
    /// commas, `-` when empty (the wire form inside a metrics line).
    pub fn render_buckets(&self) -> String {
        let pairs: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| format!("{b}:{n}"))
            .collect();
        if pairs.is_empty() {
            "-".into()
        } else {
            pairs.join(",")
        }
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("buckets", &self.render_buckets())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_accumulates_count_sum_max() {
        let hist = Histogram::new();
        for v in [0u64, 1, 5, 5, 1000] {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1011);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.mean(), 202);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[3], 2);
        assert_eq!(snap.buckets[10], 1);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let hist = Histogram::new();
        for _ in 0..99 {
            hist.record(10); // bucket 4, upper bound 15
        }
        hist.record(1_000_000); // bucket 20
        let snap = hist.snapshot();
        assert_eq!(snap.quantile(0.5), 15);
        assert!(snap.quantile(0.5) >= 10, "never an underestimate");
        assert_eq!(snap.quantile(1.0), 1_000_000, "capped at the max");
        assert_eq!(HistogramSnapshot::new().quantile(0.99), 0);
    }

    #[test]
    fn merge_is_bucket_wise() {
        let a = Histogram::new();
        a.record(3);
        a.record(100);
        let b = Histogram::new();
        b.record(3);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 106);
        assert_eq!(merged.max, 100);
        assert_eq!(merged.buckets[2], 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let hist = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let hist = &hist;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        hist.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = hist.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4000);
    }
}
