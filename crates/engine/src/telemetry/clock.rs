//! The telemetry time source.
//!
//! The workspace bans raw `std::time::Instant::now` calls through
//! `clippy.toml` so ad-hoc timing cannot creep into hot loops or leak
//! non-determinism into outcomes.  The two annotated call sites below are
//! the ban's single sanctioned home: every telemetry timestamp flows
//! through [`monotonic_nanos`] (nanoseconds since a process-wide epoch,
//! never decreasing), and code that needs an injectable time source for
//! deterministic tests takes a [`Clock`] instead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// An injectable monotonic nanosecond source.
///
/// Production code uses [`MonotonicClock`]; tests that need full control
/// over elapsed time use [`ManualClock`].  Implementations must never go
/// backwards.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's epoch.  Monotone non-decreasing.
    fn now_nanos(&self) -> u64;
}

/// The real process clock: [`Clock::now_nanos`] is [`monotonic_nanos`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        monotonic_nanos()
    }
}

/// A hand-cranked clock for deterministic tests: time passes only when
/// [`ManualClock::advance`] is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `nanos`.
    pub fn starting_at(nanos: u64) -> ManualClock {
        ManualClock {
            nanos: AtomicU64::new(nanos),
        }
    }

    /// Moves the clock forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

/// The process-wide epoch every [`monotonic_nanos`] reading is relative
/// to: captured once, on the first telemetry timestamp of the process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // Deliberate timing code: the epoch anchor of the telemetry clock.
    #[allow(clippy::disallowed_methods)]
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide telemetry epoch.
///
/// Monotone non-decreasing across threads (backed by `Instant`, which is
/// monotonic by contract), saturating at `u64::MAX` — comfortably more
/// than 500 years of uptime.  The very first reading of a process is `0`.
pub fn monotonic_nanos() -> u64 {
    // Deliberate timing code: the single sanctioned Instant site behind
    // the telemetry clock abstraction.
    #[allow(clippy::disallowed_methods)]
    let now = Instant::now();
    now.saturating_duration_since(epoch())
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_nanos_never_decreases() {
        let mut last = monotonic_nanos();
        for _ in 0..1000 {
            let now = monotonic_nanos();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn monotonic_clock_tracks_the_process_epoch() {
        let clock = MonotonicClock;
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_only_moves_when_cranked() {
        let clock = ManualClock::starting_at(100);
        assert_eq!(clock.now_nanos(), 100);
        assert_eq!(clock.now_nanos(), 100);
        clock.advance(42);
        assert_eq!(clock.now_nanos(), 142);
    }

    #[test]
    fn clocks_compose_as_trait_objects() {
        fn elapsed(clock: &dyn Clock) -> u64 {
            let start = clock.now_nanos();
            clock.now_nanos() - start
        }
        assert_eq!(elapsed(&ManualClock::default()), 0);
        let _ = elapsed(&MonotonicClock);
    }
}
