//! Std-only telemetry: the observability spine of the workspace.
//!
//! Every earlier layer reports *what* it computed; this module is how the
//! workspace reports *how* it ran.  Four pieces compose, all dependency-
//! free and lock-free on their hot paths:
//!
//! * [`clock`] — the monotonic nanosecond source behind every timestamp.
//!   The workspace bans `Instant::now` via `clippy.toml`; the annotated
//!   sites live **only** here, and everything else consumes the
//!   [`clock::Clock`] abstraction or [`clock::monotonic_nanos`].
//! * [`counters`] — sharded atomic [`Counter`]s (per-thread shard
//!   selection, so concurrent increments do not bounce one cache line)
//!   and [`Gauge`]s with a `fetch_max` high-water form.
//! * [`histogram`] — fixed-bucket log2 latency [`Histogram`]s: 64
//!   power-of-two buckets cover the full `u64` range, recording is two
//!   relaxed atomic adds, and snapshots answer p50/p99 quantile queries.
//! * [`registry`] — a named [`Registry`] of the above.  Handles are
//!   `Arc`s resolved once at registration; the registry mutex guards
//!   only registration and snapshotting, never a metric update.
//!   [`MetricsSnapshot`]s are plain data with a `key: value` text
//!   round-trip (like `ServiceStats`) and an associative, commutative
//!   [`MetricsSnapshot::merge`] for multi-process aggregation.
//! * [`spans`] — the job-lifecycle trace model: a bounded ring of typed,
//!   monotonically-timestamped [`SpanEvent`]s
//!   (submitted → queued → claimed → running → progress… → terminal)
//!   recorded per job by the executor, with derived queue-wait and
//!   run-time durations and its own text round-trip for the `TRACE`
//!   protocol verb.
//!
//! The [`crate::LocalExecutor`] owns a registry and records every job's
//! spans; `ctori-service` serves both over the wire as the `METRICS` and
//! `TRACE` verbs and folds its own per-verb traffic counters into the
//! same registry.

pub mod clock;
pub mod counters;
pub mod histogram;
pub mod registry;
pub mod spans;

pub use clock::{monotonic_nanos, Clock, ManualClock, MonotonicClock};
pub use counters::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{MetricValue, MetricsParseError, MetricsSnapshot, Registry};
pub use spans::{JobTrace, SpanEvent, SpanKind, TraceParseError, TRACE_PROGRESS_RETAIN};
