//! Sharded atomic counters and high-water gauges.
//!
//! A [`Counter`] spreads increments over a small fixed set of
//! cache-line-padded shards, selected per thread, so the executor's
//! workers and the server's connection handlers never contend on one
//! line; reads sum the shards.  A [`Gauge`] is a single atomic with a
//! plain `set` and a `record_max` high-water form (queue-depth HWM).
//! Everything is relaxed: telemetry tolerates torn cross-metric reads,
//! and each individual value is exact.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards per counter.  Small enough to keep summation cheap,
/// large enough that a full worker pool (capped at 16 in this workspace)
/// rarely collides.
const SHARDS: usize = 16;

/// One shard, padded to its own cache line pair so neighbouring shards
/// never false-share.
#[repr(align(128))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// The calling thread's shard slot, assigned round-robin on first use.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|slot| *slot)
}

/// A monotonically increasing event counter, sharded for write-side
/// scalability.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total (sum over shards).
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

/// A last-written-value metric with a high-water form.
#[derive(Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Raises the value to `candidate` if it is higher — the high-water
    /// mark form used for queue depth.
    pub fn record_max(&self, candidate: u64) {
        self.value.fetch_max(candidate, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let counter = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 8000);
        counter.add(5);
        assert_eq!(counter.value(), 8005);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let gauge = Gauge::new();
        gauge.set(7);
        assert_eq!(gauge.value(), 7);
        gauge.record_max(3);
        assert_eq!(gauge.value(), 7, "record_max never lowers");
        gauge.record_max(11);
        assert_eq!(gauge.value(), 11);
        gauge.set(2);
        assert_eq!(gauge.value(), 2, "set always overwrites");
    }

    #[test]
    fn debug_forms_show_the_value() {
        let counter = Counter::new();
        counter.add(3);
        assert_eq!(format!("{counter:?}"), "Counter(3)");
        let gauge = Gauge::new();
        gauge.set(9);
        assert_eq!(format!("{gauge:?}"), "Gauge(9)");
    }
}
