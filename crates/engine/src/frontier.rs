//! The incremental frontier scheduler and the bit-packed two-colour lane.
//!
//! Every local rule (see [`ctori_protocols::LocalRule::is_local`]) has the
//! property that a vertex can only change colour in round `t + 1` if it or
//! one of its neighbours changed in round `t`.  The simulator exploits this
//! by evaluating, after the first full round, **only the candidate set**
//! — last round's changed vertices and their out-neighbours — instead of
//! all `|V|` vertices.  On the paper's workloads (small seed sets spreading
//! through a large torus) the candidate set is a thin moving frontier, so
//! the per-round cost drops from `O(|V|)` to `O(|frontier| · Δ)`.
//!
//! Two pieces live here:
//!
//! * `Worklist` (crate-private) — the round-stamped candidate dedup shared by both state
//!   backends.  Deduplication uses a `Vec<u32>` of round tags instead of a
//!   hash set: marking a vertex is one array compare-and-write, and
//!   clearing between rounds is a single counter increment.
//! * [`PackedFrontier`] — the two-colour fast lane: state as one bit per
//!   vertex in `u64` words, per-vertex up/down flip thresholds, and a
//!   candidate evaluator that counts neighbour bits straight out of the
//!   packed words.  It is the shared substrate of the engine's packed
//!   simulator backend **and** of `ctori_tss::diffusion::spread_on`, which
//!   is a thin wrapper over it.

use crate::parallel::{band_ranges, run_bands};
use ctori_topology::Adjacency;

/// A round-stamped worklist of candidate vertices.
///
/// `mark` is idempotent within a round: a vertex is pushed at most once
/// because its stamp records the round tag of its last insertion.  The
/// first round after construction is always a **full sweep** (every vertex
/// is a candidate — nothing has been evaluated yet); callers may also pin
/// the worklist to full sweeps permanently with [`Worklist::set_always_full`],
/// which is the engine's fallback for non-local rules and the baseline mode
/// of the frontier benchmarks.
#[derive(Clone, Debug)]
pub(crate) struct Worklist {
    current: Vec<u32>,
    next: Vec<u32>,
    stamp: Vec<u32>,
    tag: u32,
    full_pending: bool,
    always_full: bool,
}

impl Worklist {
    pub(crate) fn new(node_count: usize) -> Self {
        Worklist {
            current: Vec::new(),
            next: Vec::new(),
            stamp: vec![0; node_count],
            tag: 0,
            full_pending: true,
            always_full: false,
        }
    }

    /// Pins every future round to a full sweep.
    pub(crate) fn set_always_full(&mut self) {
        self.always_full = true;
    }

    pub(crate) fn always_full(&self) -> bool {
        self.always_full
    }

    /// Whether the round about to be evaluated must visit every vertex.
    pub(crate) fn is_full_round(&self) -> bool {
        self.always_full || self.full_pending
    }

    /// The candidate vertices of the round about to be evaluated (only
    /// meaningful when [`Worklist::is_full_round`] is `false`).
    pub(crate) fn candidates(&self) -> &[u32] {
        &self.current
    }

    /// Opens the collection of next round's candidates.
    pub(crate) fn begin_next(&mut self) {
        self.next.clear();
        // The tag increments once per round; on the (astronomically
        // unlikely) wrap the stamps are reset so no stale tag can collide.
        self.tag = self.tag.wrapping_add(1);
        if self.tag == 0 {
            self.stamp.fill(0);
            self.tag = 1;
        }
    }

    /// Adds `v` to next round's candidates (no-op if already added this
    /// round).
    #[inline]
    pub(crate) fn mark(&mut self, v: u32) {
        let stamp = &mut self.stamp[v as usize];
        if *stamp != self.tag {
            *stamp = self.tag;
            self.next.push(v);
        }
    }

    /// Closes the round: next round's candidates become current.
    pub(crate) fn finish_round(&mut self) {
        std::mem::swap(&mut self.current, &mut self.next);
        self.full_pending = false;
    }
}

/// The bit-packed two-colour frontier stepper.
///
/// State is one bit per vertex ("one" = 1, "zero" = 0) packed into `u64`
/// words; the engine maps a concrete colour pair onto the bits.  Each
/// vertex carries two flip thresholds resolved once at construction (see
/// [`ctori_protocols::TwoStateThreshold::flip_thresholds`]):
///
/// * a zero vertex flips to one when at least `up[v]` of its neighbours
///   are one;
/// * a one vertex flips to zero when at least `down[v]` of its neighbours
///   are zero.
///
/// `u32::MAX` disables a direction (monotone processes).  Stepping is
/// synchronous and incremental: candidates are evaluated against the
/// pre-round state by popcount-style bit gathering over the CSR, flips are
/// applied afterwards, and the flipped vertices plus their out-neighbours
/// become the next candidates.  The adjacency is passed to
/// [`PackedFrontier::step`] rather than owned, so one CSR can serve many
/// concurrent lanes.
#[derive(Clone, Debug)]
pub struct PackedFrontier {
    words: Vec<u64>,
    len: usize,
    up: Vec<u32>,
    down: Vec<u32>,
    worklist: Worklist,
    flips: Vec<u32>,
    ones: usize,
    /// Step-parallelism: vertex (full rounds) or candidate (frontier
    /// rounds) ranges are chunked into this many bands.
    threads: usize,
    /// Reused per-band flip buffers; their band-order concatenation is
    /// exactly the sequential flip order.
    band_flips: Vec<Vec<u32>>,
    /// Bands of the last step that ran the full sweep.
    last_dense_bands: u32,
    /// Bands of the last step that walked the candidate list.
    last_sparse_bands: u32,
    /// Vertices evaluated by the last step.
    last_cells_evaluated: u64,
}

impl PackedFrontier {
    /// Creates an all-zero lane with the given per-vertex flip thresholds.
    ///
    /// # Panics
    ///
    /// Panics if the threshold vectors do not have one entry per vertex.
    pub fn new(node_count: usize, up: Vec<u32>, down: Vec<u32>) -> Self {
        assert_eq!(up.len(), node_count, "one up-threshold per vertex");
        assert_eq!(down.len(), node_count, "one down-threshold per vertex");
        PackedFrontier {
            words: vec![0u64; node_count.div_ceil(64)],
            len: node_count,
            up,
            down,
            worklist: Worklist::new(node_count),
            flips: Vec::new(),
            ones: 0,
            threads: 1,
            band_flips: Vec::new(),
            last_dense_bands: 0,
            last_sparse_bands: 0,
            last_cells_evaluated: 0,
        }
    }

    /// `(dense bands, sparse bands, cells evaluated)` of the last step.
    pub(crate) fn last_step_profile(&self) -> (u32, u32, u64) {
        (
            self.last_dense_bands,
            self.last_sparse_bands,
            self.last_cells_evaluated,
        )
    }

    /// Sets the number of band workers [`PackedFrontier::step`] uses.
    ///
    /// Values are clamped to at least 1.  Workers evaluate word-aligned
    /// vertex bands (full rounds) or candidate-list chunks (frontier
    /// rounds) against the frozen pre-round words into band-local flip
    /// buffers, whose band-order concatenation reproduces the sequential
    /// flip order exactly — a pure throughput knob.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the lane has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets vertex `v` to one (seeding; call before the first step).
    pub fn set_one(&mut self, v: usize) {
        assert!(v < self.len, "vertex out of range");
        let mask = 1u64 << (v & 63);
        let word = &mut self.words[v >> 6];
        if *word & mask == 0 {
            *word |= mask;
            self.ones += 1;
        }
    }

    /// Whether vertex `v` is currently one.
    #[inline]
    pub fn is_one(&self, v: usize) -> bool {
        (self.words[v >> 6] >> (v & 63)) & 1 == 1
    }

    /// Number of one-valued vertices.
    pub fn ones(&self) -> usize {
        self.ones
    }

    /// The vertices flipped by the last [`PackedFrontier::step`] call.
    pub fn flips(&self) -> &[u32] {
        &self.flips
    }

    /// Pins every future round to a full sweep (the benchmark baseline and
    /// the fallback for non-local rules).
    pub fn set_always_full(&mut self) {
        self.worklist.set_always_full();
    }

    /// The packed state words (bit `v & 63` of word `v >> 6` is vertex
    /// `v`); trailing bits beyond `len` are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    #[inline]
    fn bit(words: &[u64], v: u32) -> u32 {
        ((words[(v >> 6) as usize] >> (v & 63)) & 1) as u32
    }

    /// Decides whether candidate `v` flips, evaluating against the
    /// pre-round words.
    #[inline]
    fn evaluate(&self, adjacency: &Adjacency, v: u32) -> bool {
        let neighbors = adjacency.neighbors_raw(v as usize);
        // Gather the neighbour bits into a word and popcount it: for the
        // paper's degree-4 tori this is four shifts, an OR-accumulate and
        // one count_ones, with no colour comparisons at all.
        let ones = if neighbors.len() <= 64 {
            let mut gathered = 0u64;
            for (i, &u) in neighbors.iter().enumerate() {
                gathered |= u64::from(Self::bit(&self.words, u)) << i;
            }
            gathered.count_ones()
        } else {
            // Hubs beyond 64 neighbours (general TSS graphs) fall back to
            // an additive count.
            neighbors
                .iter()
                .map(|&u| Self::bit(&self.words, u))
                .sum::<u32>()
        };
        if Self::bit(&self.words, v) == 0 {
            ones >= self.up[v as usize]
        } else {
            let zeros = neighbors.len() as u32 - ones;
            zeros >= self.down[v as usize]
        }
    }

    /// Executes one synchronous round and returns the number of flips.
    ///
    /// The first round after construction evaluates every vertex; later
    /// rounds evaluate only the frontier candidates.  The flipped vertices
    /// are available through [`PackedFrontier::flips`] until the next step.
    pub fn step(&mut self, adjacency: &Adjacency) -> usize {
        assert_eq!(
            adjacency.node_count(),
            self.len,
            "adjacency does not match the lane"
        );
        self.flips.clear();
        let full = self.worklist.is_full_round();
        self.last_cells_evaluated = if full {
            self.len as u64
        } else {
            self.worklist.candidates().len() as u64
        };
        if self.threads == 1 {
            (self.last_dense_bands, self.last_sparse_bands) = if full { (1, 0) } else { (0, 1) };
            // Sequential fast path: evaluate straight into `flips`, no
            // band bookkeeping.  The worklist's candidate list is read
            // while `evaluate` only touches the packed words, so iterate
            // by index to keep the borrows disjoint.
            if full {
                for v in 0..self.len as u32 {
                    if self.evaluate(adjacency, v) {
                        self.flips.push(v);
                    }
                }
            } else {
                for i in 0..self.worklist.candidates().len() {
                    let v = self.worklist.candidates()[i];
                    if self.evaluate(adjacency, v) {
                        self.flips.push(v);
                    }
                }
            }
        } else {
            // Band-parallel evaluation against the frozen pre-round
            // words: full rounds split the vertex range on word
            // boundaries (popcount rows per band), frontier rounds chunk
            // the candidate list.  Concatenating the band buffers in
            // band order reproduces the sequential flip order exactly.
            let ranges = if full {
                band_ranges(self.len, self.threads, 64)
            } else {
                band_ranges(self.worklist.candidates().len(), self.threads, 1)
            };
            (self.last_dense_bands, self.last_sparse_bands) = if full {
                (ranges.len() as u32, 0)
            } else {
                (0, ranges.len() as u32)
            };
            let mut band_flips = std::mem::take(&mut self.band_flips);
            band_flips.resize_with(ranges.len(), Vec::new);
            for buffer in &mut band_flips {
                buffer.clear();
            }
            let lane = &*self;
            run_bands(&ranges, &mut band_flips, |_band, start, end, out| {
                if full {
                    for v in start..end {
                        let v = v as u32;
                        if lane.evaluate(adjacency, v) {
                            out.push(v);
                        }
                    }
                } else {
                    for &v in &lane.worklist.candidates()[start..end] {
                        if lane.evaluate(adjacency, v) {
                            out.push(v);
                        }
                    }
                }
            });
            for buffer in &band_flips {
                self.flips.extend_from_slice(buffer);
            }
            self.band_flips = band_flips;
        }
        // Apply after evaluating everything: synchronous semantics.
        for &v in &self.flips {
            let mask = 1u64 << (v & 63);
            let word = &mut self.words[(v >> 6) as usize];
            if *word & mask == 0 {
                self.ones += 1;
            } else {
                self.ones -= 1;
            }
            *word ^= mask;
        }
        self.worklist.begin_next();
        if !self.worklist.always_full() {
            for i in 0..self.flips.len() {
                let v = self.flips[i];
                self.worklist.mark(v);
                for &u in adjacency.neighbors_raw(v as usize) {
                    self.worklist.mark(u);
                }
            }
        }
        self.worklist.finish_round();
        self.flips.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_topology::{toroidal_mesh, Graph, NodeId};

    const NEVER: u32 = u32::MAX;

    #[test]
    fn threshold_one_sweeps_a_path() {
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1));
        }
        let adjacency = Adjacency::build(&g);
        let mut lane = PackedFrontier::new(5, vec![1; 5], vec![NEVER; 5]);
        lane.set_one(0);
        let mut rounds = 0;
        while lane.step(&adjacency) > 0 {
            rounds += 1;
            assert_eq!(lane.flips().len(), 1, "one vertex activates per round");
        }
        assert_eq!(rounds, 4);
        assert_eq!(lane.ones(), 5);
        assert!((0..5).all(|v| lane.is_one(v)));
    }

    #[test]
    fn frontier_and_full_sweep_agree() {
        let t = toroidal_mesh(8, 9);
        let adjacency = Adjacency::from_torus(&t);
        let n = adjacency.node_count();
        // Strict-majority flip thresholds in both directions (two-colour
        // SMP): seed a 3x3 block and step both schedulers in lockstep.
        let build = |always_full: bool| {
            let mut lane = PackedFrontier::new(n, vec![3; n], vec![3; n]);
            for r in 2..5 {
                for c in 2..5 {
                    lane.set_one(r * 9 + c);
                }
            }
            if always_full {
                lane.set_always_full();
            }
            lane
        };
        let mut frontier = build(false);
        let mut full = build(true);
        for round in 0..20 {
            let a = frontier.step(&adjacency);
            let b = full.step(&adjacency);
            assert_eq!(a, b, "flip counts diverge at round {round}");
            assert_eq!(
                frontier.words(),
                full.words(),
                "states diverge at round {round}"
            );
        }
    }

    #[test]
    fn band_parallel_flip_order_matches_sequential() {
        let t = toroidal_mesh(9, 11);
        let adjacency = Adjacency::from_torus(&t);
        let n = adjacency.node_count();
        let build = || {
            let mut lane = PackedFrontier::new(n, vec![2; n], vec![3; n]);
            for v in [0, 5, 23, 24, 25, 36, 50, 51, 62, 80, 98] {
                lane.set_one(v);
            }
            lane
        };
        for threads in [2, 3, 8] {
            let mut seq = build();
            let mut par = build();
            par.set_threads(threads);
            for round in 0..15 {
                let a = seq.step(&adjacency);
                let b = par.step(&adjacency);
                assert_eq!(a, b, "threads={threads}: flip counts diverge at {round}");
                assert_eq!(
                    seq.flips(),
                    par.flips(),
                    "threads={threads}: flip order diverges at {round}"
                );
                assert_eq!(seq.words(), par.words());
                assert_eq!(seq.ones(), par.ones());
            }
        }
    }

    #[test]
    fn zero_threshold_fires_on_the_first_full_round() {
        let g = Graph::with_nodes(3);
        let adjacency = Adjacency::build(&g);
        let mut lane = PackedFrontier::new(3, vec![0; 3], vec![NEVER; 3]);
        assert_eq!(lane.step(&adjacency), 3, "everything self-activates");
        assert_eq!(lane.step(&adjacency), 0);
    }

    #[test]
    fn down_thresholds_erode_isolated_ones() {
        let t = toroidal_mesh(6, 6);
        let adjacency = Adjacency::from_torus(&t);
        let n = adjacency.node_count();
        let mut lane = PackedFrontier::new(n, vec![3; n], vec![3; n]);
        lane.set_one(14); // a lone one: 4 zero neighbours >= 3, it flips back
        assert_eq!(lane.step(&adjacency), 1);
        assert_eq!(lane.ones(), 0);
        assert_eq!(lane.flips(), &[14]);
        // Nothing left to do: the frontier drains.
        assert_eq!(lane.step(&adjacency), 0);
    }
}
