//! Declarative run specifications.
//!
//! A [`RunSpec`] is a **plain-data description of a complete scenario**:
//! which topology to build ([`TopologySpec`]), which local rule to apply
//! ([`RuleSpec`], resolved by name through the
//! [`ctori_protocols::registry`]), how to colour the initial configuration
//! ([`SeedSpec`]), and which engine policies to use ([`EngineOptions`]).
//! Nothing in a spec borrows a topology or a simulator — specs can be
//! stored, compared, cloned across threads, rendered to text with
//! [`RunSpec::to_text`] and parsed back with [`RunSpec::from_text`], which
//! is what makes them schedulable by the batch layer
//! ([`crate::runner::Runner::sweep`]) and servable over the wire by the
//! `ctori-service` front-end, whose result cache is addressed by
//! [`RunSpec::canonical_key`].
//!
//! The text form is line-oriented (`key: value`), human-diffable, and uses
//! the same glyph grids as [`ctori_coloring::textio`] for explicit
//! configurations — deliberately not a serialization framework, matching
//! the repository's offline vendoring policy.
//!
//! ```
//! use ctori_engine::{RunSpec, RuleSpec, SeedSpec, TopologySpec};
//! use ctori_coloring::Color;
//!
//! let spec = RunSpec::new(
//!     TopologySpec::toroidal_mesh(6, 6),
//!     RuleSpec::parse("smp").unwrap(),
//!     SeedSpec::checkerboard(Color::new(1), Color::new(2)),
//! );
//! let text = spec.to_text();
//! assert_eq!(RunSpec::from_text(&text).unwrap(), spec);
//! ```

use ctori_coloring::{textio, Color, Coloring, Palette};
use ctori_protocols::registry;
use ctori_protocols::{AnyRule, RuleParseError};
use ctori_topology::{generators, Graph, NodeId, Torus, TorusKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::simulator::RunConfig;

/// Errors produced when parsing a [`RunSpec`] (or one of its components)
/// from text.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SpecParseError {
    /// A required `key: value` line was missing.
    MissingField(&'static str),
    /// A line was not of the `key: value` form, or used an unknown key.
    UnexpectedLine {
        /// 1-based line number in the input.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The `topology:` value was malformed.
    BadTopology {
        /// What was wrong with it.
        detail: String,
    },
    /// The `seed:` value was malformed.
    BadSeed {
        /// What was wrong with it.
        detail: String,
    },
    /// The `options:` value was malformed.
    BadOptions {
        /// What was wrong with it.
        detail: String,
    },
    /// The `rule:` value did not resolve through the registry.
    BadRule(RuleParseError),
    /// An explicit seed grid failed to parse.
    BadColoring(textio::ParseError),
}

impl std::fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecParseError::MissingField(key) => write!(f, "missing `{key}:` line"),
            SpecParseError::UnexpectedLine { line, text } => {
                write!(f, "line {line}: expected `key: value`, got {text:?}")
            }
            SpecParseError::BadTopology { detail } => write!(f, "bad topology: {detail}"),
            SpecParseError::BadSeed { detail } => write!(f, "bad seed: {detail}"),
            SpecParseError::BadOptions { detail } => write!(f, "bad options: {detail}"),
            SpecParseError::BadRule(e) => write!(f, "bad rule: {e}"),
            SpecParseError::BadColoring(e) => write!(f, "bad explicit seed grid: {e}"),
        }
    }
}

impl std::error::Error for SpecParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecParseError::BadRule(e) => Some(e),
            SpecParseError::BadColoring(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuleParseError> for SpecParseError {
    fn from(e: RuleParseError) -> Self {
        SpecParseError::BadRule(e)
    }
}

impl From<textio::ParseError> for SpecParseError {
    fn from(e: textio::ParseError) -> Self {
        SpecParseError::BadColoring(e)
    }
}

fn bad_topology(detail: impl Into<String>) -> SpecParseError {
    SpecParseError::BadTopology {
        detail: detail.into(),
    }
}

fn bad_seed(detail: impl Into<String>) -> SpecParseError {
    SpecParseError::BadSeed {
        detail: detail.into(),
    }
}

fn bad_options(detail: impl Into<String>) -> SpecParseError {
    SpecParseError::BadOptions {
        detail: detail.into(),
    }
}

/// Parses `key=value` out of a token, checking the key.
fn keyed<'a>(token: &'a str, key: &str, err: &'static str) -> Result<&'a str, SpecParseError> {
    let make = |detail: String| match err {
        "topology" => bad_topology(detail),
        "seed" => bad_seed(detail),
        _ => bad_options(detail),
    };
    match token.split_once('=') {
        Some((k, v)) if k == key => Ok(v),
        _ => Err(make(format!("expected `{key}=...`, got {token:?}"))),
    }
}

fn parse_color(raw: &str, section: &'static str) -> Result<Color, SpecParseError> {
    let make = |detail: String| match section {
        "seed" => bad_seed(detail),
        _ => bad_options(detail),
    };
    let index: u16 = raw
        .parse()
        .map_err(|_| make(format!("{raw:?} is not a colour index")))?;
    if index == 0 {
        return Err(make("colour indices are 1-based".into()));
    }
    Ok(Color::new(index))
}

// ---------------------------------------------------------------------------
// TopologySpec
// ---------------------------------------------------------------------------

/// A plain-data description of an interaction topology.
///
/// Unifies the paper's three torus kinds with the general-graph substrate
/// of `ctori-tss`: random-model variants name the generators of
/// [`ctori_topology::generators`] plus the RNG seed that makes them
/// reproducible, and [`TopologySpec::Graph`] carries an explicit edge list.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum TopologySpec {
    /// An `m × n` torus of one of the paper's three kinds.
    Torus {
        /// Which wrap-around variant.
        kind: TorusKind,
        /// Number of rows `m`.
        rows: usize,
        /// Number of columns `n`.
        cols: usize,
    },
    /// An explicit general graph (dense vertex ids, undirected edge list).
    Graph {
        /// Number of vertices.
        nodes: usize,
        /// Undirected edges as `(u, v)` index pairs.
        edges: Vec<(u32, u32)>,
    },
    /// A ring lattice: `nodes` vertices on a cycle, each connected to its
    /// nearest `neighbors_per_side` vertices on each side.
    RingLattice {
        /// Number of vertices.
        nodes: usize,
        /// Neighbours on each side (degree = 2 × this).
        neighbors_per_side: usize,
    },
    /// A Barabási–Albert preferential-attachment graph.
    BarabasiAlbert {
        /// Number of vertices.
        nodes: usize,
        /// Edges attached per new vertex.
        edges_per_vertex: usize,
        /// RNG seed making the graph reproducible.
        rng_seed: u64,
    },
    /// An Erdős–Rényi `G(n, p)` graph.
    ErdosRenyi {
        /// Number of vertices.
        nodes: usize,
        /// Independent edge probability.
        edge_probability: f64,
        /// RNG seed making the graph reproducible.
        rng_seed: u64,
    },
}

/// A topology materialised from a [`TopologySpec`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum BuiltTopology {
    /// A torus (grid-shaped reporting: `rows × cols`).
    Torus(Torus),
    /// A general graph (flat reporting: `1 × n`).
    Graph(Graph),
}

impl BuiltTopology {
    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        match self {
            BuiltTopology::Torus(t) => t.rows() * t.cols(),
            BuiltTopology::Graph(g) => ctori_topology::Topology::node_count(g),
        }
    }

    /// The grid shape configurations are reported in (`1 × n` for graphs).
    pub fn grid_dims(&self) -> (usize, usize) {
        match self {
            BuiltTopology::Torus(t) => (t.rows(), t.cols()),
            BuiltTopology::Graph(g) => (1, ctori_topology::Topology::node_count(g)),
        }
    }
}

impl TopologySpec {
    /// An `m × n` toroidal mesh.
    pub fn toroidal_mesh(rows: usize, cols: usize) -> Self {
        TopologySpec::Torus {
            kind: TorusKind::ToroidalMesh,
            rows,
            cols,
        }
    }

    /// An `m × n` torus cordalis.
    pub fn torus_cordalis(rows: usize, cols: usize) -> Self {
        TopologySpec::Torus {
            kind: TorusKind::TorusCordalis,
            rows,
            cols,
        }
    }

    /// An `m × n` torus serpentinus.
    pub fn torus_serpentinus(rows: usize, cols: usize) -> Self {
        TopologySpec::Torus {
            kind: TorusKind::TorusSerpentinus,
            rows,
            cols,
        }
    }

    /// An `m × n` torus of the given kind.
    pub fn torus(kind: TorusKind, rows: usize, cols: usize) -> Self {
        TopologySpec::Torus { kind, rows, cols }
    }

    /// Snapshot of an existing general graph as an explicit edge list.
    pub fn from_graph(graph: &Graph) -> Self {
        TopologySpec::Graph {
            nodes: ctori_topology::Topology::node_count(graph),
            edges: graph
                .edges()
                .map(|(u, v)| (u.index() as u32, v.index() as u32))
                .collect(),
        }
    }

    /// Number of vertices the built topology will have.
    pub fn node_count(&self) -> usize {
        match self {
            TopologySpec::Torus { rows, cols, .. } => rows * cols,
            TopologySpec::Graph { nodes, .. }
            | TopologySpec::RingLattice { nodes, .. }
            | TopologySpec::BarabasiAlbert { nodes, .. }
            | TopologySpec::ErdosRenyi { nodes, .. } => *nodes,
        }
    }

    /// The grid shape configurations are reported in (`1 × n` for graphs).
    pub fn grid_dims(&self) -> (usize, usize) {
        match self {
            TopologySpec::Torus { rows, cols, .. } => (*rows, *cols),
            _ => (1, self.node_count()),
        }
    }

    /// Materialises the topology.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are structurally invalid (torus smaller
    /// than 2×2, edge endpoint out of range, generator preconditions) —
    /// the same contracts as the underlying constructors.
    pub fn build(&self) -> BuiltTopology {
        match self {
            TopologySpec::Torus { kind, rows, cols } => {
                BuiltTopology::Torus(Torus::new(*kind, *rows, *cols))
            }
            TopologySpec::Graph { nodes, edges } => {
                let mut g = Graph::with_nodes(*nodes);
                for &(u, v) in edges {
                    g.add_edge(NodeId::new(u as usize), NodeId::new(v as usize));
                }
                BuiltTopology::Graph(g)
            }
            TopologySpec::RingLattice {
                nodes,
                neighbors_per_side,
            } => BuiltTopology::Graph(generators::ring_lattice(*nodes, *neighbors_per_side)),
            TopologySpec::BarabasiAlbert {
                nodes,
                edges_per_vertex,
                rng_seed,
            } => {
                let mut rng = StdRng::seed_from_u64(*rng_seed);
                BuiltTopology::Graph(generators::barabasi_albert(
                    *nodes,
                    *edges_per_vertex,
                    &mut rng,
                ))
            }
            TopologySpec::ErdosRenyi {
                nodes,
                edge_probability,
                rng_seed,
            } => {
                let mut rng = StdRng::seed_from_u64(*rng_seed);
                BuiltTopology::Graph(generators::erdos_renyi(*nodes, *edge_probability, &mut rng))
            }
        }
    }

    /// Renders the single-line text form, e.g. `toroidal-mesh 9x9`.
    pub fn to_text(&self) -> String {
        match self {
            TopologySpec::Torus { kind, rows, cols } => {
                let name = match kind {
                    TorusKind::ToroidalMesh => "toroidal-mesh",
                    TorusKind::TorusCordalis => "torus-cordalis",
                    TorusKind::TorusSerpentinus => "torus-serpentinus",
                    other => panic!("no text form for torus kind {other:?}"),
                };
                format!("{name} {rows}x{cols}")
            }
            TopologySpec::Graph { nodes, edges } => {
                let mut out = format!("graph {nodes}");
                for (u, v) in edges {
                    out.push_str(&format!(" {u}-{v}"));
                }
                out
            }
            TopologySpec::RingLattice {
                nodes,
                neighbors_per_side,
            } => format!("ring-lattice {nodes} {neighbors_per_side}"),
            TopologySpec::BarabasiAlbert {
                nodes,
                edges_per_vertex,
                rng_seed,
            } => format!("barabasi-albert {nodes} {edges_per_vertex} rng={rng_seed}"),
            TopologySpec::ErdosRenyi {
                nodes,
                edge_probability,
                rng_seed,
            } => format!("erdos-renyi {nodes} {edge_probability} rng={rng_seed}"),
        }
    }

    /// Parses the single-line text form produced by
    /// [`TopologySpec::to_text`].
    pub fn parse(text: &str) -> Result<Self, SpecParseError> {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let usize_at = |i: usize, what: &str| -> Result<usize, SpecParseError> {
            tokens
                .get(i)
                .ok_or_else(|| bad_topology(format!("missing {what}")))?
                .parse()
                .map_err(|_| bad_topology(format!("{:?} is not a valid {what}", tokens[i])))
        };
        match tokens.first() {
            Some(&name @ ("toroidal-mesh" | "torus-cordalis" | "torus-serpentinus")) => {
                let kind = match name {
                    "toroidal-mesh" => TorusKind::ToroidalMesh,
                    "torus-cordalis" => TorusKind::TorusCordalis,
                    _ => TorusKind::TorusSerpentinus,
                };
                let dims = tokens
                    .get(1)
                    .ok_or_else(|| bad_topology("missing RxC dimensions"))?;
                let (r, c) = dims
                    .split_once('x')
                    .ok_or_else(|| bad_topology(format!("{dims:?} is not of the form RxC")))?;
                let rows = r
                    .parse()
                    .map_err(|_| bad_topology(format!("{r:?} is not a row count")))?;
                let cols = c
                    .parse()
                    .map_err(|_| bad_topology(format!("{c:?} is not a column count")))?;
                Ok(TopologySpec::Torus { kind, rows, cols })
            }
            Some(&"graph") => {
                let nodes = usize_at(1, "vertex count")?;
                let mut edges = Vec::with_capacity(tokens.len().saturating_sub(2));
                for token in &tokens[2..] {
                    let (u, v) = token
                        .split_once('-')
                        .ok_or_else(|| bad_topology(format!("{token:?} is not an edge u-v")))?;
                    let parse_endpoint = |raw: &str| -> Result<u32, SpecParseError> {
                        raw.parse()
                            .map_err(|_| bad_topology(format!("{raw:?} is not a vertex id")))
                    };
                    edges.push((parse_endpoint(u)?, parse_endpoint(v)?));
                }
                Ok(TopologySpec::Graph { nodes, edges })
            }
            Some(&"ring-lattice") => Ok(TopologySpec::RingLattice {
                nodes: usize_at(1, "vertex count")?,
                neighbors_per_side: usize_at(2, "neighbours-per-side")?,
            }),
            Some(&"barabasi-albert") => Ok(TopologySpec::BarabasiAlbert {
                nodes: usize_at(1, "vertex count")?,
                edges_per_vertex: usize_at(2, "edges-per-vertex")?,
                rng_seed: parse_rng_seed(tokens.get(3), "topology")?,
            }),
            Some(&"erdos-renyi") => {
                let probability: f64 = tokens
                    .get(2)
                    .ok_or_else(|| bad_topology("missing edge probability"))?
                    .parse()
                    .map_err(|_| bad_topology("edge probability is not a number"))?;
                if !(0.0..=1.0).contains(&probability) {
                    return Err(bad_topology("edge probability must be within [0, 1]"));
                }
                Ok(TopologySpec::ErdosRenyi {
                    nodes: usize_at(1, "vertex count")?,
                    edge_probability: probability,
                    rng_seed: parse_rng_seed(tokens.get(3), "topology")?,
                })
            }
            Some(other) => Err(bad_topology(format!("unknown topology {other:?}"))),
            None => Err(bad_topology("empty topology")),
        }
    }
}

fn parse_rng_seed(token: Option<&&str>, section: &'static str) -> Result<u64, SpecParseError> {
    let token = token.ok_or_else(|| match section {
        "seed" => bad_seed("missing rng=SEED"),
        _ => bad_topology("missing rng=SEED"),
    })?;
    let raw = keyed(token, "rng", section)?;
    raw.parse().map_err(|_| match section {
        "seed" => bad_seed(format!("{raw:?} is not an RNG seed")),
        _ => bad_topology(format!("{raw:?} is not an RNG seed")),
    })
}

// ---------------------------------------------------------------------------
// RuleSpec
// ---------------------------------------------------------------------------

/// A plain-data description of the local rule a scenario runs.
///
/// Internally stores the resolved [`AnyRule`]; the canonical **name** (the
/// string [`ctori_protocols::registry::parse`] accepts) is derived on
/// demand, so resolving a validated spec can never fail.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleSpec {
    rule: AnyRule,
}

impl RuleSpec {
    /// Resolves a registry rule string (e.g. `"smp"`, `"threshold(2,2)"`).
    pub fn parse(text: &str) -> Result<Self, SpecParseError> {
        Ok(RuleSpec {
            rule: registry::parse(text)?,
        })
    }

    /// Wraps a concrete rule value.
    pub fn from_rule(rule: impl Into<AnyRule>) -> Self {
        RuleSpec { rule: rule.into() }
    }

    /// The canonical registry name (round-trips through
    /// [`RuleSpec::parse`]).
    pub fn name(&self) -> String {
        registry::canonical_name(&self.rule)
    }

    /// The resolved rule.
    pub fn resolve(&self) -> AnyRule {
        self.rule.clone()
    }
}

impl From<AnyRule> for RuleSpec {
    fn from(rule: AnyRule) -> Self {
        RuleSpec { rule }
    }
}

// ---------------------------------------------------------------------------
// SeedSpec
// ---------------------------------------------------------------------------

/// A plain-data description of the initial configuration.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SeedSpec {
    /// A complete explicit configuration (text form: the
    /// [`ctori_coloring::textio`] glyph grid).
    Explicit(Coloring),
    /// An explicit seed-vertex list: the listed vertices get `color`,
    /// every other vertex gets `background`.
    Nodes {
        /// The seed colour.
        color: Color,
        /// The colour of every unlisted vertex.
        background: Color,
        /// Dense vertex indices of the seed set.
        nodes: Vec<u32>,
    },
    /// A deterministic whole-grid pattern.
    Pattern(PatternSpec),
    /// A random configuration: `round(fraction · n)` vertices get `color`,
    /// the rest are uniform over the other `palette` colours, driven by a
    /// reproducible RNG seed.
    Density {
        /// The seed colour.
        color: Color,
        /// Palette size (colours `1..=palette`; must contain `color`).
        palette: u16,
        /// Fraction of vertices seeded with `color`, in `[0, 1]`.
        fraction: f64,
        /// RNG seed making the configuration reproducible.
        rng_seed: u64,
    },
}

/// The deterministic patterns a [`SeedSpec::Pattern`] can name (the same
/// constructions as [`ctori_coloring::patterns`], described as data).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatternSpec {
    /// Every vertex the same colour.
    Uniform(Color),
    /// Checkerboard of two colours (by `(row + col)` parity).
    Checkerboard(Color, Color),
    /// Row `i` gets `colors[i mod colors.len()]`.
    RowStripes(Vec<Color>),
    /// Column `j` gets `colors[j mod colors.len()]`.
    ColumnStripes(Vec<Color>),
}

impl SeedSpec {
    /// Convenience constructor for a uniform configuration.
    pub fn uniform(color: Color) -> Self {
        SeedSpec::Pattern(PatternSpec::Uniform(color))
    }

    /// Convenience constructor for a checkerboard.
    pub fn checkerboard(even: Color, odd: Color) -> Self {
        SeedSpec::Pattern(PatternSpec::Checkerboard(even, odd))
    }

    /// Convenience constructor for an explicit seed-vertex list.
    pub fn nodes(color: Color, background: Color, nodes: impl IntoIterator<Item = usize>) -> Self {
        SeedSpec::Nodes {
            color,
            background,
            nodes: nodes.into_iter().map(|v| v as u32).collect(),
        }
    }

    /// Materialises the configuration on an `rows × cols` grid.
    ///
    /// # Panics
    ///
    /// Panics when the spec cannot colour that grid: explicit dimensions
    /// that do not match, a seed-vertex index out of range, a fraction
    /// outside `[0, 1]`, or a density palette too small to colour the
    /// non-seed remainder.
    pub fn materialize(&self, rows: usize, cols: usize) -> Coloring {
        let total = rows * cols;
        match self {
            SeedSpec::Explicit(coloring) => {
                assert_eq!(
                    (coloring.rows(), coloring.cols()),
                    (rows, cols),
                    "explicit seed dimensions do not match the topology"
                );
                coloring.clone()
            }
            SeedSpec::Nodes {
                color,
                background,
                nodes,
            } => {
                let mut cells = vec![*background; total];
                for &v in nodes {
                    assert!(
                        (v as usize) < total,
                        "seed vertex {v} out of range for {total} vertices"
                    );
                    cells[v as usize] = *color;
                }
                Coloring::from_cells(rows, cols, cells)
            }
            SeedSpec::Pattern(pattern) => pattern.materialize(rows, cols),
            SeedSpec::Density {
                color,
                palette,
                fraction,
                rng_seed,
            } => {
                assert!(
                    (0.0..=1.0).contains(fraction),
                    "seed fraction must be within [0, 1]"
                );
                let seed_count = (total as f64 * fraction).round() as usize;
                let others: Vec<Color> = Palette::new(*palette).colors_except(*color).collect();
                assert!(
                    !others.is_empty() || seed_count == total,
                    "density seeds need a palette with at least one non-seed colour"
                );
                let mut rng = StdRng::seed_from_u64(*rng_seed);
                let mut positions: Vec<usize> = (0..total).collect();
                positions.shuffle(&mut rng);
                let mut cells = vec![Color::UNSET; total];
                for (idx, pos) in positions.into_iter().enumerate() {
                    cells[pos] = if idx < seed_count {
                        *color
                    } else {
                        *others.choose(&mut rng).expect("non-empty")
                    };
                }
                Coloring::from_cells(rows, cols, cells)
            }
        }
    }

    /// Renders the `seed:` value.  [`SeedSpec::Explicit`] renders as the
    /// word `explicit` followed by the glyph grid on subsequent lines (and
    /// must therefore be the last field of a [`RunSpec`] text form).
    pub fn to_text(&self) -> String {
        match self {
            SeedSpec::Explicit(coloring) => {
                format!("explicit\n{}", textio::to_text(coloring))
            }
            SeedSpec::Nodes {
                color,
                background,
                nodes,
            } => {
                let mut out = format!(
                    "nodes color={} background={} at",
                    color.index(),
                    background.index()
                );
                for v in nodes {
                    out.push_str(&format!(" {v}"));
                }
                out
            }
            SeedSpec::Pattern(p) => p.to_text(),
            SeedSpec::Density {
                color,
                palette,
                fraction,
                rng_seed,
            } => format!(
                "density color={} palette={palette} fraction={fraction} rng={rng_seed}",
                color.index()
            ),
        }
    }

    /// Parses the `seed:` value; `grid` holds the lines following a
    /// `seed: explicit` header.
    fn parse(value: &str, grid: &str) -> Result<Self, SpecParseError> {
        let tokens: Vec<&str> = value.split_whitespace().collect();
        match tokens.first() {
            Some(&"explicit") => Ok(SeedSpec::Explicit(textio::from_text(grid)?)),
            Some(&"nodes") => {
                let color = parse_color(
                    keyed(tokens.get(1).copied().unwrap_or(""), "color", "seed")?,
                    "seed",
                )?;
                let background = parse_color(
                    keyed(tokens.get(2).copied().unwrap_or(""), "background", "seed")?,
                    "seed",
                )?;
                if tokens.get(3) != Some(&"at") {
                    return Err(bad_seed("expected `at` before the vertex list"));
                }
                let mut nodes = Vec::with_capacity(tokens.len().saturating_sub(4));
                for raw in &tokens[4..] {
                    nodes.push(
                        raw.parse()
                            .map_err(|_| bad_seed(format!("{raw:?} is not a vertex id")))?,
                    );
                }
                Ok(SeedSpec::Nodes {
                    color,
                    background,
                    nodes,
                })
            }
            Some(&"density") => {
                let color = parse_color(
                    keyed(tokens.get(1).copied().unwrap_or(""), "color", "seed")?,
                    "seed",
                )?;
                let palette: u16 = keyed(tokens.get(2).copied().unwrap_or(""), "palette", "seed")?
                    .parse()
                    .map_err(|_| bad_seed("palette size is not a number"))?;
                let fraction: f64 =
                    keyed(tokens.get(3).copied().unwrap_or(""), "fraction", "seed")?
                        .parse()
                        .map_err(|_| bad_seed("fraction is not a number"))?;
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(bad_seed("fraction must be within [0, 1]"));
                }
                if palette == 0 {
                    return Err(bad_seed("palette must have at least one colour"));
                }
                let rng_seed = parse_rng_seed(tokens.get(4), "seed")?;
                Ok(SeedSpec::Density {
                    color,
                    palette,
                    fraction,
                    rng_seed,
                })
            }
            Some(_) => Ok(SeedSpec::Pattern(PatternSpec::parse(&tokens)?)),
            None => Err(bad_seed("empty seed")),
        }
    }
}

impl PatternSpec {
    fn materialize(&self, rows: usize, cols: usize) -> Coloring {
        let at = |f: &dyn Fn(usize, usize) -> Color| {
            let mut cells = Vec::with_capacity(rows * cols);
            for r in 0..rows {
                for c in 0..cols {
                    cells.push(f(r, c));
                }
            }
            Coloring::from_cells(rows, cols, cells)
        };
        match self {
            PatternSpec::Uniform(k) => at(&|_, _| *k),
            PatternSpec::Checkerboard(even, odd) => at(&|r, c| {
                if (r + c) % 2 == 0 {
                    *even
                } else {
                    *odd
                }
            }),
            PatternSpec::RowStripes(colors) => {
                assert!(!colors.is_empty(), "need at least one stripe colour");
                at(&|r, _| colors[r % colors.len()])
            }
            PatternSpec::ColumnStripes(colors) => {
                assert!(!colors.is_empty(), "need at least one stripe colour");
                at(&|_, c| colors[c % colors.len()])
            }
        }
    }

    fn to_text(&self) -> String {
        let with_colors = |name: &str, colors: &[Color]| {
            let mut out = name.to_string();
            for c in colors {
                out.push_str(&format!(" {}", c.index()));
            }
            out
        };
        match self {
            PatternSpec::Uniform(k) => format!("uniform {}", k.index()),
            PatternSpec::Checkerboard(a, b) => format!("checkerboard {} {}", a.index(), b.index()),
            PatternSpec::RowStripes(colors) => with_colors("row-stripes", colors),
            PatternSpec::ColumnStripes(colors) => with_colors("column-stripes", colors),
        }
    }

    fn parse(tokens: &[&str]) -> Result<Self, SpecParseError> {
        let colors = |from: usize| -> Result<Vec<Color>, SpecParseError> {
            if tokens.len() <= from {
                return Err(bad_seed("need at least one stripe colour"));
            }
            tokens[from..]
                .iter()
                .map(|raw| parse_color(raw, "seed"))
                .collect()
        };
        match tokens.first() {
            Some(&"uniform") => {
                let cs = colors(1)?;
                if cs.len() != 1 {
                    return Err(bad_seed("uniform takes exactly one colour"));
                }
                Ok(PatternSpec::Uniform(cs[0]))
            }
            Some(&"checkerboard") => {
                let cs = colors(1)?;
                if cs.len() != 2 {
                    return Err(bad_seed("checkerboard takes exactly two colours"));
                }
                Ok(PatternSpec::Checkerboard(cs[0], cs[1]))
            }
            Some(&"row-stripes") => Ok(PatternSpec::RowStripes(colors(1)?)),
            Some(&"column-stripes") => Ok(PatternSpec::ColumnStripes(colors(1)?)),
            Some(other) => Err(bad_seed(format!("unknown seed form {other:?}"))),
            None => Err(bad_seed("empty seed")),
        }
    }
}

// ---------------------------------------------------------------------------
// EngineOptions
// ---------------------------------------------------------------------------

/// Which simulation lane drives a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LaneSpec {
    /// Let the engine choose: the bit-packed two-colour lane when eligible,
    /// the generic frontier otherwise.
    Auto,
    /// Force the generic colour-vector frontier (used by lane-equivalence
    /// experiments and benchmarks).
    GenericFrontier,
    /// Force the exhaustive full sweep on the generic backend (the PR-1
    /// stepper, kept for baselines and non-local rules).
    FullSweep,
    /// Force the multi-colour bit-plane lane (word-parallel popcount
    /// kernel over `⌈log₂ k⌉` planes).  Falls back to the current backend
    /// when the run is ineligible (more than 16 colours, non-torus
    /// adjacency, or a rule without a
    /// [`ctori_protocols::ColorCountRule`] form).
    Planes,
}

/// Engine **policy** for a run — everything that used to be spread between
/// `Simulator` builder toggles and [`RunConfig`]: lane forcing, cycle
/// detection, the round limit, and the per-colour tracking switches.
///
/// `Simulator` keeps only mechanism; a spec carries the policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineOptions {
    /// Which simulation lane to use.
    pub lane: LaneSpec,
    /// Whether to detect limit cycles (verified, never trusting a bare
    /// hash match).
    pub detect_cycles: bool,
    /// Hard cap on the number of rounds; `0` means automatic
    /// (`4·|V| + 16`).
    pub max_rounds: usize,
    /// Thread budget for this scenario (`0` = automatic:
    /// [`crate::sweep::default_threads`]).  Precedence, outermost first:
    ///
    /// 1. A batch sweep ([`crate::runner::Runner::sweep`]) spends the
    ///    budget on whole runs and steps each run sequentially — outer
    ///    parallelism wins.
    /// 2. A single [`crate::runner::Runner::execute`] spends it *inside*
    ///    the run as band-parallel stepping ([`crate::parallel`]),
    ///    clamped to the runner's own budget; `auto` engages the full
    ///    budget only on large grids (≥ 2¹⁸ cells).
    /// 3. The worker pool ([`crate::exec::LocalExecutor`] and the
    ///    simulation service) charges a job stepping with `T` threads as
    ///    `T` pool slots (clamped to idle capacity) and resolves `auto`
    ///    *pool-aware* — to `1`, because the pool is already saturated
    ///    with whole jobs.
    ///
    /// Stepping is bit-identical at every thread count, so this knob
    /// never affects an outcome and is excluded from
    /// [`RunSpec::canonical_key`].
    pub threads: usize,
    /// Sampling stride of the execution API's progress events: every
    /// `progress_every`-th round is published as a
    /// [`crate::exec::RunEvent::Progress`] while the run is in flight
    /// (`0` = automatic: every round).  Pure observability — it cannot
    /// affect an outcome — so it is excluded from
    /// [`RunSpec::canonical_key`] like [`EngineOptions::threads`].
    pub progress_every: usize,
    /// Record per-vertex adoption times of this colour.
    pub track_times_for: Option<Color>,
    /// Verify monotonicity with respect to this colour.
    pub check_monotone_for: Option<Color>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            lane: LaneSpec::Auto,
            detect_cycles: true,
            max_rounds: 0,
            threads: 0,
            progress_every: 0,
            track_times_for: None,
            check_monotone_for: None,
        }
    }
}

impl EngineOptions {
    /// Options that track everything needed to verify a monotone dynamo of
    /// colour `k` (the [`RunConfig::for_dynamo`] policy).
    pub fn for_dynamo(k: Color) -> Self {
        EngineOptions {
            track_times_for: Some(k),
            check_monotone_for: Some(k),
            ..EngineOptions::default()
        }
    }

    /// Sets an explicit round limit.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Disables cycle detection.
    pub fn without_cycle_detection(mut self) -> Self {
        self.detect_cycles = false;
        self
    }

    /// Forces a specific simulation lane.
    pub fn with_lane(mut self, lane: LaneSpec) -> Self {
        self.lane = lane;
        self
    }

    /// Sets an explicit worker-thread budget (`0` = automatic).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the progress-event sampling stride (`0` = automatic: every
    /// round).
    pub fn with_progress_every(mut self, progress_every: usize) -> Self {
        self.progress_every = progress_every;
        self
    }

    /// The worker-thread budget with the automatic default resolved.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            crate::sweep::default_threads()
        } else {
            self.threads
        }
    }

    /// The progress sampling stride with the automatic default resolved
    /// (automatic = every round).
    pub fn progress_stride(&self) -> usize {
        self.progress_every.max(1)
    }

    /// The [`RunConfig`] equivalent of these options (everything except
    /// the lane, which the runner applies while building the simulator).
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            max_rounds: self.max_rounds,
            detect_cycles: self.detect_cycles,
            track_times_for: self.track_times_for,
            check_monotone_for: self.check_monotone_for,
        }
    }

    /// Renders the `options:` value.
    pub fn to_text(&self) -> String {
        let lane = match self.lane {
            LaneSpec::Auto => "auto",
            LaneSpec::GenericFrontier => "generic",
            LaneSpec::FullSweep => "full-sweep",
            LaneSpec::Planes => "planes",
        };
        let opt = |c: Option<Color>| match c {
            Some(c) => c.index().to_string(),
            None => "-".into(),
        };
        let max_rounds = if self.max_rounds == 0 {
            "auto".to_string()
        } else {
            self.max_rounds.to_string()
        };
        let threads = if self.threads == 0 {
            "auto".to_string()
        } else {
            self.threads.to_string()
        };
        let progress = if self.progress_every == 0 {
            "auto".to_string()
        } else {
            self.progress_every.to_string()
        };
        format!(
            "lane={lane} cycles={} max-rounds={max_rounds} threads={threads} progress={progress} \
             track={} monotone={}",
            if self.detect_cycles { "on" } else { "off" },
            opt(self.track_times_for),
            opt(self.check_monotone_for),
        )
    }

    /// Parses the `options:` value (any subset of the keys; missing keys
    /// keep their defaults).
    pub fn parse(text: &str) -> Result<Self, SpecParseError> {
        let mut options = EngineOptions::default();
        let mut literal_zero_threads = false;
        for token in text.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| bad_options(format!("expected key=value, got {token:?}")))?;
            match key {
                "lane" => {
                    options.lane = match value {
                        "auto" => LaneSpec::Auto,
                        "generic" => LaneSpec::GenericFrontier,
                        "full-sweep" => LaneSpec::FullSweep,
                        "planes" => LaneSpec::Planes,
                        other => return Err(bad_options(format!("unknown lane {other:?}"))),
                    }
                }
                "cycles" => {
                    options.detect_cycles = match value {
                        "on" => true,
                        "off" => false,
                        other => {
                            return Err(bad_options(format!(
                                "cycles must be on/off, got {other:?}"
                            )))
                        }
                    }
                }
                "max-rounds" => {
                    options.max_rounds = if value == "auto" {
                        0
                    } else {
                        value
                            .parse()
                            .map_err(|_| bad_options(format!("{value:?} is not a round limit")))?
                    }
                }
                "threads" => {
                    options.threads = if value == "auto" {
                        0
                    } else {
                        let n: usize = value
                            .parse()
                            .map_err(|_| bad_options(format!("{value:?} is not a thread count")))?;
                        literal_zero_threads = n == 0;
                        n
                    }
                }
                "progress" => {
                    options.progress_every = if value == "auto" {
                        0
                    } else {
                        value.parse().map_err(|_| {
                            bad_options(format!("{value:?} is not a progress stride"))
                        })?
                    }
                }
                "track" => {
                    options.track_times_for = if value == "-" {
                        None
                    } else {
                        Some(parse_color(value, "options")?)
                    }
                }
                "monotone" => {
                    options.check_monotone_for = if value == "-" {
                        None
                    } else {
                        Some(parse_color(value, "options")?)
                    }
                }
                other => return Err(bad_options(format!("unknown option {other:?}"))),
            }
        }
        // A literal `threads=0` is almost always a typo for `threads=auto`;
        // with the band-parallel plane lane forced it would silently pin
        // the run the author asked to parallelise to one worker, so the
        // combination is rejected rather than reinterpreted.
        if literal_zero_threads && options.lane == LaneSpec::Planes {
            return Err(bad_options(
                "threads=0 with lane=planes: write threads=auto for the automatic budget",
            ));
        }
        Ok(options)
    }
}

// ---------------------------------------------------------------------------
// SpecKey
// ---------------------------------------------------------------------------

/// A content-address for a [`RunSpec`]: the 128-bit FNV-1a digest of the
/// spec's canonical text form ([`RunSpec::to_text`]).
///
/// The digest is computed with a fixed, dependency-free algorithm, so the
/// same spec hashes to the same key **across processes and machines** —
/// which is what lets a result cache memoize outcomes for identical specs
/// submitted by different clients.  Specs with equal canonical texts
/// always share a key, and an *accidental* collision between distinct
/// specs is vanishingly unlikely with a 128-bit digest.  FNV-1a is not
/// collision-resistant, though: a determined client could construct two
/// distinct specs with the same key.  The key is a content-address for
/// trusted inputs, not a cryptographic commitment — consumers that cache
/// under it (the ctori-service result cache) assume trusted clients, as
/// in the loopback-only deployments the service targets.
///
/// Renders as 32 lowercase hex digits and parses back with
/// [`str::parse`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecKey(u128);

impl SpecKey {
    const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

    /// FNV-1a digest of a byte string.
    fn digest(bytes: &[u8]) -> SpecKey {
        let mut hash = Self::FNV_OFFSET;
        for &b in bytes {
            hash ^= u128::from(b);
            hash = hash.wrapping_mul(Self::FNV_PRIME);
        }
        SpecKey(hash)
    }

    /// The raw 128-bit digest.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl std::fmt::Display for SpecKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl std::str::FromStr for SpecKey {
    type Err = SpecParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(bad_options(format!(
                "a spec key is 32 hex digits, got {} characters",
                s.len()
            )));
        }
        // Strict canonical form only — from_str_radix alone would also
        // accept a leading '+' or uppercase digits, breaking the
        // parse-then-display identity the docs promise.
        if !s.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return Err(bad_options(format!(
                "{s:?} is not a lowercase hex spec key"
            )));
        }
        u128::from_str_radix(s, 16)
            .map(SpecKey)
            .map_err(|_| bad_options(format!("{s:?} is not a hex spec key")))
    }
}

// ---------------------------------------------------------------------------
// RunSpec
// ---------------------------------------------------------------------------

/// A complete, serialisable scenario description: topology + rule + seed +
/// engine options.  See the [module docs](self) for the text format.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// The interaction topology.
    pub topology: TopologySpec,
    /// The local rule, by registry name.
    pub rule: RuleSpec,
    /// The initial configuration.
    pub seed: SeedSpec,
    /// Engine policy (lane, cycles, limits, tracking).
    pub options: EngineOptions,
}

impl RunSpec {
    /// Builds a spec with default [`EngineOptions`].
    pub fn new(topology: TopologySpec, rule: impl Into<RuleSpec>, seed: SeedSpec) -> Self {
        RunSpec {
            topology,
            rule: rule.into(),
            seed,
            options: EngineOptions::default(),
        }
    }

    /// Replaces the engine options.
    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the options with the dynamo-verification policy for `k`.
    pub fn for_dynamo(self, k: Color) -> Self {
        self.with_options(EngineOptions::for_dynamo(k))
    }

    /// Renders the spec as text.  The output parses back with
    /// [`RunSpec::from_text`] to an identical spec.
    pub fn to_text(&self) -> String {
        self.text_with_options(self.options)
    }

    /// The single text renderer behind both [`RunSpec::to_text`] and
    /// [`RunSpec::canonical_key`], so the digest input can never drift
    /// from the wire form when `RunSpec` grows a field.
    fn text_with_options(&self, options: EngineOptions) -> String {
        format!(
            "topology: {}\nrule: {}\noptions: {}\nseed: {}\n",
            self.topology.to_text(),
            self.rule.name(),
            options.to_text(),
            self.seed.to_text().trim_end(),
        )
    }

    /// The spec's content-address: the [`SpecKey`] digest of the canonical
    /// text form, with outcome-irrelevant policy normalised away.
    ///
    /// Because [`RunSpec::to_text`] renders every field canonically (rules
    /// by registry name, options fully spelled out), the key is invariant
    /// under a text round-trip: `from_text(to_text(s))` has the same key
    /// as `s`.  The service layer's result cache is addressed by this key,
    /// so identical scenarios submitted by different clients share one
    /// memoized outcome.
    ///
    /// [`EngineOptions::threads`] and [`EngineOptions::progress_every`]
    /// are the two options that cannot influence a run's outcome (one
    /// sizes *batch* execution — a single run is always sequential — and
    /// the other only samples observability events), so they are excluded
    /// from the digest: specs differing only in those knobs share a cache
    /// slot.  Every other option is part of the address — even `lane`
    /// reaches the outcome through
    /// [`crate::RunOutcome::used_packed_lane`].
    pub fn canonical_key(&self) -> SpecKey {
        // Shares to_text()'s renderer (only the small options struct is
        // copied to normalise the outcome-irrelevant knobs), so the
        // digest input tracks the wire form automatically if RunSpec
        // grows a field.
        let mut options = self.options;
        options.threads = 0;
        options.progress_every = 0;
        SpecKey::digest(self.text_with_options(options).as_bytes())
    }

    /// Parses a spec from the text form produced by [`RunSpec::to_text`].
    ///
    /// Lines are `key: value` in any order; blank lines are skipped; a
    /// `seed: explicit` line consumes every *following* line as the glyph
    /// grid of the configuration (so an explicit seed must come last —
    /// which is where [`RunSpec::to_text`] puts it).  The parsed spec is
    /// structurally [validated](RunSpec::validate), so a successfully
    /// parsed text cannot panic in [`crate::runner::Runner::execute`] for
    /// shape reasons.
    pub fn from_text(text: &str) -> Result<Self, SpecParseError> {
        let mut topology = None;
        let mut rule = None;
        let mut seed = None;
        let mut options = None;

        let mut lines = text.lines().enumerate();
        while let Some((idx, line)) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            let (key, value) =
                line.split_once(':')
                    .ok_or_else(|| SpecParseError::UnexpectedLine {
                        line: idx + 1,
                        text: line.to_string(),
                    })?;
            let value = value.trim();
            match key.trim() {
                "topology" => topology = Some(TopologySpec::parse(value)?),
                "rule" => rule = Some(RuleSpec::parse(value)?),
                "options" => options = Some(EngineOptions::parse(value)?),
                "seed" => {
                    // Only an explicit seed owns the remaining lines (its
                    // glyph grid); for every other form keep parsing
                    // `key: value` lines normally.
                    if value.split_whitespace().next() == Some("explicit") {
                        let grid: String = lines
                            .by_ref()
                            .map(|(_, l)| l)
                            .collect::<Vec<_>>()
                            .join("\n");
                        seed = Some(SeedSpec::parse(value, &grid)?);
                    } else {
                        seed = Some(SeedSpec::parse(value, "")?);
                    }
                }
                _ => {
                    return Err(SpecParseError::UnexpectedLine {
                        line: idx + 1,
                        text: line.to_string(),
                    })
                }
            }
        }

        let spec = RunSpec {
            topology: topology.ok_or(SpecParseError::MissingField("topology"))?,
            rule: rule.ok_or(SpecParseError::MissingField("rule"))?,
            seed: seed.ok_or(SpecParseError::MissingField("seed"))?,
            options: options.unwrap_or_default(),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the structural constraints the builders would otherwise
    /// assert at execution time: torus dimensions at least 2×2, graph edge
    /// endpoints in range, seed-vertex indices in range, and explicit
    /// configurations matching the topology's grid shape.
    ///
    /// [`RunSpec::from_text`] calls this automatically, so text from an
    /// untrusted source is rejected with a [`SpecParseError`] instead of
    /// panicking later in the runner.
    pub fn validate(&self) -> Result<(), SpecParseError> {
        match &self.topology {
            TopologySpec::Torus { rows, cols, .. } => {
                if *rows < 2 || *cols < 2 {
                    return Err(bad_topology(format!(
                        "tori must be at least 2x2, got {rows}x{cols}"
                    )));
                }
            }
            TopologySpec::Graph { nodes, edges } => {
                for &(u, v) in edges {
                    if u as usize >= *nodes || v as usize >= *nodes {
                        return Err(bad_topology(format!(
                            "edge {u}-{v} out of range for {nodes} vertices"
                        )));
                    }
                    if u == v {
                        return Err(bad_topology(format!("self-loop {u}-{v}")));
                    }
                }
            }
            TopologySpec::RingLattice {
                nodes,
                neighbors_per_side,
            } => {
                if *neighbors_per_side == 0 || *nodes <= 2 * neighbors_per_side {
                    return Err(bad_topology(format!(
                        "ring lattice of {nodes} vertices cannot have {neighbors_per_side} \
                         neighbours per side"
                    )));
                }
            }
            TopologySpec::BarabasiAlbert {
                nodes,
                edges_per_vertex,
                ..
            } => {
                if *edges_per_vertex == 0 || *nodes <= *edges_per_vertex {
                    return Err(bad_topology(format!(
                        "Barabasi-Albert needs nodes > edges_per_vertex >= 1, got {nodes} and \
                         {edges_per_vertex}"
                    )));
                }
            }
            TopologySpec::ErdosRenyi {
                edge_probability, ..
            } => {
                if !(0.0..=1.0).contains(edge_probability) {
                    return Err(bad_topology("edge probability must be within [0, 1]"));
                }
            }
        }
        let total = self.topology.node_count();
        match &self.seed {
            SeedSpec::Nodes { nodes, .. } => {
                if let Some(&v) = nodes.iter().find(|&&v| v as usize >= total) {
                    return Err(bad_seed(format!(
                        "seed vertex {v} out of range for {total} vertices"
                    )));
                }
            }
            SeedSpec::Explicit(coloring)
                if (coloring.rows(), coloring.cols()) != self.topology.grid_dims() =>
            {
                let (rows, cols) = self.topology.grid_dims();
                return Err(bad_seed(format!(
                    "explicit seed is {}x{} but the topology reports {rows}x{cols}",
                    coloring.rows(),
                    coloring.cols(),
                )));
            }
            _ => {}
        }
        Ok(())
    }

    /// Materialises the initial configuration for this spec's topology.
    pub fn initial_coloring(&self) -> Coloring {
        let (rows, cols) = self.topology.grid_dims();
        self.seed.materialize(rows, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_topology::Topology;

    fn c(i: u16) -> Color {
        Color::new(i)
    }

    #[test]
    fn torus_topology_round_trips() {
        for spec in [
            TopologySpec::toroidal_mesh(5, 7),
            TopologySpec::torus_cordalis(4, 4),
            TopologySpec::torus_serpentinus(6, 3),
        ] {
            let text = spec.to_text();
            assert_eq!(TopologySpec::parse(&text).unwrap(), spec, "{text}");
            assert_eq!(spec.node_count(), spec.build().node_count());
        }
    }

    #[test]
    fn graph_topologies_round_trip_and_build() {
        let ring = TopologySpec::RingLattice {
            nodes: 10,
            neighbors_per_side: 2,
        };
        let ba = TopologySpec::BarabasiAlbert {
            nodes: 50,
            edges_per_vertex: 2,
            rng_seed: 9,
        };
        let er = TopologySpec::ErdosRenyi {
            nodes: 30,
            edge_probability: 0.125,
            rng_seed: 3,
        };
        for spec in [ring, ba, er] {
            let text = spec.to_text();
            assert_eq!(TopologySpec::parse(&text).unwrap(), spec, "{text}");
            match spec.build() {
                BuiltTopology::Graph(g) => assert_eq!(g.node_count(), spec.node_count()),
                other => panic!("expected a graph, got {other:?}"),
            }
        }
    }

    #[test]
    fn generator_topologies_are_reproducible() {
        let spec = TopologySpec::BarabasiAlbert {
            nodes: 60,
            edges_per_vertex: 3,
            rng_seed: 11,
        };
        let (a, b) = (spec.build(), spec.build());
        match (a, b) {
            (BuiltTopology::Graph(a), BuiltTopology::Graph(b)) => assert_eq!(a, b),
            _ => panic!("expected graphs"),
        }
    }

    #[test]
    fn explicit_graph_round_trips_through_from_graph() {
        let g = generators::ring_lattice(8, 1);
        let spec = TopologySpec::from_graph(&g);
        let text = spec.to_text();
        let parsed = TopologySpec::parse(&text).unwrap();
        match parsed.build() {
            BuiltTopology::Graph(rebuilt) => {
                // Adjacency-list insertion order may differ; the edge *set*
                // and vertex count must survive the round trip.
                assert_eq!(rebuilt.node_count(), g.node_count());
                let edge_set = |g: &Graph| {
                    let mut edges: Vec<_> = g.edges().collect();
                    edges.sort();
                    edges
                };
                assert_eq!(edge_set(&rebuilt), edge_set(&g));
            }
            other => panic!("expected a graph, got {other:?}"),
        }
    }

    #[test]
    fn seed_specs_round_trip() {
        let specs = [
            SeedSpec::uniform(c(3)),
            SeedSpec::checkerboard(c(1), c(2)),
            SeedSpec::Pattern(PatternSpec::RowStripes(vec![c(1), c(2), c(3)])),
            SeedSpec::Pattern(PatternSpec::ColumnStripes(vec![c(2), c(4)])),
            SeedSpec::nodes(c(1), c(2), [0usize, 3, 7]),
            SeedSpec::Density {
                color: c(1),
                palette: 4,
                fraction: 0.25,
                rng_seed: 42,
            },
        ];
        for seed in specs {
            let value = seed.to_text();
            let parsed = SeedSpec::parse(&value, "").unwrap_or_else(|e| panic!("{value}: {e}"));
            assert_eq!(parsed, seed, "{value}");
        }
    }

    #[test]
    fn seed_materialisation_matches_pattern_semantics() {
        let board = SeedSpec::checkerboard(c(1), c(2)).materialize(4, 4);
        assert_eq!(board.at(0, 0), c(1));
        assert_eq!(board.at(0, 1), c(2));
        let stripes =
            SeedSpec::Pattern(PatternSpec::ColumnStripes(vec![c(1), c(2)])).materialize(3, 4);
        assert_eq!(stripes.at(2, 2), c(1));
        let nodes = SeedSpec::nodes(c(5), c(1), [5usize]).materialize(2, 4);
        assert_eq!(nodes.at(1, 1), c(5));
        assert_eq!(nodes.count(c(5)), 1);
    }

    #[test]
    fn density_seed_is_reproducible_and_exact() {
        let seed = SeedSpec::Density {
            color: c(1),
            palette: 4,
            fraction: 0.5,
            rng_seed: 7,
        };
        let a = seed.materialize(6, 6);
        let b = seed.materialize(6, 6);
        assert_eq!(a, b, "same rng seed, same configuration");
        assert_eq!(a.count(c(1)), 18);
        assert!(!a.has_unset_cells());
    }

    #[test]
    fn run_spec_text_round_trips() {
        let spec = RunSpec::new(
            TopologySpec::toroidal_mesh(5, 5),
            RuleSpec::parse("smp").unwrap(),
            SeedSpec::nodes(c(1), c(2), [0usize, 6, 12]),
        )
        .for_dynamo(c(1));
        let text = spec.to_text();
        assert_eq!(RunSpec::from_text(&text).unwrap(), spec, "\n{text}");
    }

    #[test]
    fn explicit_seed_round_trips_as_glyph_grid() {
        let coloring = Coloring::from_rows(&[vec![c(1), c(2), c(1), c(2), c(3), c(2)]]);
        let spec = RunSpec::new(
            TopologySpec::Graph {
                nodes: 6,
                edges: vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
            },
            RuleSpec::parse("threshold(2,1)").unwrap(),
            SeedSpec::Explicit(coloring),
        );
        let text = spec.to_text();
        assert!(text.contains("seed: explicit"));
        assert_eq!(RunSpec::from_text(&text).unwrap(), spec, "\n{text}");
    }

    #[test]
    fn canonical_key_addresses_spec_content() {
        let spec = RunSpec::new(
            TopologySpec::toroidal_mesh(5, 5),
            RuleSpec::parse("smp").unwrap(),
            SeedSpec::checkerboard(c(1), c(2)),
        );
        let key = spec.canonical_key();
        // Stable across clones and text round-trips …
        assert_eq!(spec.clone().canonical_key(), key);
        let reparsed = RunSpec::from_text(&spec.to_text()).unwrap();
        assert_eq!(reparsed.canonical_key(), key);
        // … and sensitive to every field.
        let other_seed = spec.clone().with_options(EngineOptions::default());
        assert_eq!(other_seed.canonical_key(), key, "options were defaults");
        let bigger = RunSpec::new(
            TopologySpec::toroidal_mesh(5, 6),
            RuleSpec::parse("smp").unwrap(),
            SeedSpec::checkerboard(c(1), c(2)),
        );
        assert_ne!(bigger.canonical_key(), key);
        let tracked = spec.clone().for_dynamo(c(1));
        assert_ne!(tracked.canonical_key(), key);
        // The thread budget cannot affect an outcome, so it must not
        // split the cache address.
        let threaded = spec
            .clone()
            .with_options(EngineOptions::default().with_threads(8));
        assert_eq!(threaded.canonical_key(), key);
        // Same for the progress sampling stride (pure observability).
        let sampled = spec
            .clone()
            .with_options(EngineOptions::default().with_progress_every(16));
        assert_eq!(sampled.canonical_key(), key);
        // But lane forcing can (it reaches RunOutcome::used_packed_lane).
        let forced = spec
            .clone()
            .with_options(EngineOptions::default().with_lane(LaneSpec::FullSweep));
        assert_ne!(forced.canonical_key(), key);
    }

    #[test]
    fn spec_key_round_trips_through_hex() {
        let spec = RunSpec::new(
            TopologySpec::torus_cordalis(4, 4),
            RuleSpec::parse("strong-majority").unwrap(),
            SeedSpec::uniform(c(1)),
        );
        let key = spec.canonical_key();
        let hex = key.to_string();
        assert_eq!(hex.len(), 32, "{hex}");
        assert_eq!(hex.parse::<SpecKey>().unwrap(), key);
        assert!("nope".parse::<SpecKey>().is_err());
        assert!("zz".repeat(16).parse::<SpecKey>().is_err());
        // Only the canonical lowercase form parses: a leading '+' or
        // uppercase digits would break parse-then-display identity.
        assert!(format!("+{}", &hex[1..]).parse::<SpecKey>().is_err());
        assert!(hex.to_uppercase().parse::<SpecKey>().is_err());
    }

    #[test]
    fn thread_budget_round_trips_and_resolves() {
        let options = EngineOptions::default().with_threads(3);
        let text = options.to_text();
        assert!(text.contains("threads=3"), "{text}");
        assert_eq!(EngineOptions::parse(&text).unwrap(), options);
        assert_eq!(options.effective_threads(), 3);
        let auto = EngineOptions::default();
        assert!(auto.to_text().contains("threads=auto"));
        assert_eq!(auto.effective_threads(), crate::sweep::default_threads());
        assert!(EngineOptions::parse("threads=lots").is_err());
    }

    #[test]
    fn zero_threads_with_forced_plane_lane_is_rejected() {
        // Order of the keys must not matter: the check runs after parsing.
        for text in ["lane=planes threads=0", "threads=0 lane=planes"] {
            let err = EngineOptions::parse(text).unwrap_err();
            assert!(
                matches!(err, SpecParseError::BadOptions { .. }),
                "{text}: {err:?}"
            );
        }
        // `threads=0` without the plane lane keeps its legacy auto meaning,
        // and `threads=auto` with the plane lane is the supported spelling.
        assert_eq!(EngineOptions::parse("threads=0").unwrap().threads, 0);
        let ok = EngineOptions::parse("lane=planes threads=auto").unwrap();
        assert_eq!((ok.lane, ok.threads), (LaneSpec::Planes, 0));
    }

    #[test]
    fn progress_stride_round_trips_and_resolves() {
        let options = EngineOptions::default().with_progress_every(8);
        let text = options.to_text();
        assert!(text.contains("progress=8"), "{text}");
        assert_eq!(EngineOptions::parse(&text).unwrap(), options);
        assert_eq!(options.progress_stride(), 8);
        let auto = EngineOptions::default();
        assert!(auto.to_text().contains("progress=auto"));
        assert_eq!(auto.progress_stride(), 1, "auto samples every round");
        assert!(EngineOptions::parse("progress=often").is_err());
    }

    #[test]
    fn options_round_trip_and_defaults() {
        let options = EngineOptions::for_dynamo(c(2))
            .with_max_rounds(99)
            .without_cycle_detection()
            .with_lane(LaneSpec::FullSweep);
        let text = options.to_text();
        assert_eq!(EngineOptions::parse(&text).unwrap(), options, "{text}");
        assert_eq!(
            EngineOptions::parse("").unwrap(),
            EngineOptions::default(),
            "missing keys keep defaults"
        );
        let config = options.run_config();
        assert_eq!(config.max_rounds, 99);
        assert!(!config.detect_cycles);
        assert_eq!(config.track_times_for, Some(c(2)));
    }

    #[test]
    fn every_lane_spec_round_trips() {
        for lane in [
            LaneSpec::Auto,
            LaneSpec::GenericFrontier,
            LaneSpec::FullSweep,
            LaneSpec::Planes,
        ] {
            let options = EngineOptions::default().with_lane(lane);
            let text = options.to_text();
            assert_eq!(EngineOptions::parse(&text).unwrap().lane, lane, "{text}");
        }
        let planes = EngineOptions::parse("lane=planes").unwrap();
        assert_eq!(planes.lane, LaneSpec::Planes);
        assert!(planes.to_text().contains("lane=planes"));
    }

    #[test]
    fn fields_after_a_non_explicit_seed_are_still_parsed() {
        let text =
            "topology: toroidal-mesh 4x4\nrule: smp\nseed: uniform 1\noptions: lane=full-sweep\n";
        let spec = RunSpec::from_text(text).unwrap();
        assert_eq!(
            spec.options.lane,
            LaneSpec::FullSweep,
            "an options line after the seed line must not be dropped"
        );
    }

    #[test]
    fn structurally_invalid_text_is_rejected_not_deferred_to_a_panic() {
        let cases = [
            // Torus below the paper's 2x2 minimum.
            "topology: toroidal-mesh 1x1\nrule: smp\nseed: uniform 1\n",
            // Graph edge endpoint out of range.
            "topology: graph 2 0-5\nrule: smp\nseed: uniform 1\n",
            // Self-loop.
            "topology: graph 3 1-1\nrule: smp\nseed: uniform 1\n",
            // Seed vertex out of range for a 3x3 torus.
            "topology: toroidal-mesh 3x3\nrule: smp\nseed: nodes color=1 background=2 at 99\n",
            // Ring lattice too small for its degree.
            "topology: ring-lattice 4 2\nrule: smp\nseed: uniform 1\n",
            // Barabasi-Albert with nodes <= edges_per_vertex.
            "topology: barabasi-albert 3 3 rng=0\nrule: smp\nseed: uniform 1\n",
        ];
        for text in cases {
            assert!(
                RunSpec::from_text(text).is_err(),
                "expected a SpecParseError for:\n{text}"
            );
        }
        // An explicit grid that does not match the topology shape.
        let mismatched = "topology: toroidal-mesh 3x3\nrule: smp\nseed: explicit\n1 1\n1 1\n";
        assert!(matches!(
            RunSpec::from_text(mismatched),
            Err(SpecParseError::BadSeed { .. })
        ));
    }

    #[test]
    fn unexpected_line_reports_the_whole_line() {
        let err = RunSpec::from_text("sede: uniform 1\n").unwrap_err();
        match err {
            SpecParseError::UnexpectedLine { line, text } => {
                assert_eq!(line, 1);
                assert_eq!(text, "sede: uniform 1");
            }
            other => panic!("expected UnexpectedLine, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(matches!(
            RunSpec::from_text("rule: smp\nseed: uniform 1\n"),
            Err(SpecParseError::MissingField("topology"))
        ));
        assert!(matches!(
            RunSpec::from_text("nonsense"),
            Err(SpecParseError::UnexpectedLine { line: 1, .. })
        ));
        assert!(matches!(
            TopologySpec::parse("klein-bottle 3x3"),
            Err(SpecParseError::BadTopology { .. })
        ));
        assert!(matches!(
            TopologySpec::parse("toroidal-mesh 3by3"),
            Err(SpecParseError::BadTopology { .. })
        ));
        assert!(matches!(
            SeedSpec::parse("checkerboard 1", ""),
            Err(SpecParseError::BadSeed { .. })
        ));
        assert!(matches!(
            SeedSpec::parse("density color=1 palette=4 fraction=1.5 rng=0", ""),
            Err(SpecParseError::BadSeed { .. })
        ));
        assert!(matches!(
            EngineOptions::parse("lane=warp"),
            Err(SpecParseError::BadOptions { .. })
        ));
        assert!(matches!(
            RuleSpec::parse("nope"),
            Err(SpecParseError::BadRule(_))
        ));
        let rendered = format!("{}", SpecParseError::BadTopology { detail: "x".into() });
        assert!(rendered.contains("bad topology"));
    }

    #[test]
    fn rule_spec_wraps_and_names() {
        use ctori_protocols::SmpProtocol;
        let spec = RuleSpec::from_rule(SmpProtocol);
        assert_eq!(spec.name(), "smp");
        assert_eq!(spec, RuleSpec::parse("smp").unwrap());
        let any: RuleSpec = AnyRule::reverse_strong().into();
        assert_eq!(any.name(), "strong-majority");
    }
}
