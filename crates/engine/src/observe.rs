//! Run observation: per-round hooks over a running simulation.
//!
//! An [`Observer`] receives a borrowed [`StepView`] of the configuration
//! after every synchronous round (plus one [`Observer::on_start`] call for
//! the initial configuration and an [`Observer::on_finish`] call with the
//! final [`RunOutcome`]).  This subsumes the bespoke recording loops the
//! workspace used to carry: full-configuration traces are a
//! [`TraceObserver`], per-round colour histograms are a
//! [`HistogramObserver`], and experiment-specific measurements implement
//! the trait directly instead of re-writing the round loop.
//!
//! Observation is strictly read-only — a view cannot mutate the simulator —
//! and costs nothing when unused: `Simulator::run` drives the same loop
//! with a no-op sink.

use crate::metrics::{round_histogram, ColorHistogram};
use crate::runner::RunOutcome;
use crate::state::StateVec;
use crate::trace::Trace;
use ctori_coloring::{Color, Coloring, Palette};

/// A read-only view of the configuration after a synchronous round.
///
/// Borrowed from the simulator for the duration of one callback; copy out
/// whatever the observer needs ([`StepView::coloring`] materialises the
/// full grid, the per-vertex accessors avoid that allocation).
pub struct StepView<'a> {
    state: &'a StateVec,
    rows: usize,
    cols: usize,
    round: usize,
    changed: usize,
}

impl<'a> StepView<'a> {
    pub(crate) fn new(
        state: &'a StateVec,
        rows: usize,
        cols: usize,
        round: usize,
        changed: usize,
    ) -> Self {
        StepView {
            state,
            rows,
            cols,
            round,
            changed,
        }
    }

    /// The round that was just completed (`0` in [`Observer::on_start`]).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Number of vertices that changed colour this round.
    pub fn changed(&self) -> usize {
        self.changed
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.state.len()
    }

    /// The grid shape of [`StepView::coloring`] (`1 × n` on general
    /// graphs).
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The current colour of vertex `v`.
    pub fn color_of(&self, v: usize) -> Color {
        self.state.color_of(v)
    }

    /// Number of vertices currently holding `k` (O(1)).
    pub fn count_of(&self, k: Color) -> usize {
        self.state.count_of(k)
    }

    /// The monochromatic colour, if every vertex holds the same one (O(1)).
    pub fn monochromatic(&self) -> Option<Color> {
        self.state.monochromatic()
    }

    /// The colour populations after this round, as a [`ColorHistogram`]
    /// of the colours currently present (O(palette), not O(vertices) —
    /// cheap enough to sample every round; the execution API's progress
    /// events are built from this).
    pub fn histogram(&self) -> ColorHistogram {
        ColorHistogram {
            round: self.round,
            counts: self.state.histogram_counts(),
        }
    }

    /// Materialises the configuration as one colour per vertex.
    pub fn snapshot(&self) -> Vec<Color> {
        self.state.snapshot()
    }

    /// Materialises the configuration as a grid-shaped [`Coloring`].
    pub fn coloring(&self) -> Coloring {
        Coloring::from_cells(self.rows, self.cols, self.state.snapshot())
    }
}

/// Per-round hooks over a run.
///
/// All methods default to no-ops, so an observer implements only what it
/// measures.
pub trait Observer {
    /// Called once with the initial configuration, before any round runs.
    fn on_start(&mut self, _view: &StepView<'_>) {}

    /// Called after every completed synchronous round.
    fn on_round(&mut self, _view: &StepView<'_>) {}

    /// Called once with the final outcome, after termination.
    fn on_finish(&mut self, _outcome: &RunOutcome) {}
}

/// The no-op observer (`Runner::execute` uses it internally).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Records every configuration of a run, yielding a [`Trace`].
///
/// This is the observer behind [`crate::trace::run_with_trace`]; figure
/// reproduction uses the trace to extract per-vertex recolouring times.
#[derive(Clone, Debug, Default)]
pub struct TraceObserver {
    configurations: Vec<Coloring>,
}

impl TraceObserver {
    /// Creates an empty trace recorder.
    pub fn new() -> Self {
        TraceObserver::default()
    }

    /// The recorded trace.
    ///
    /// # Panics
    ///
    /// Panics if no configuration was recorded yet (the observer has not
    /// been run).
    pub fn into_trace(self) -> Trace {
        Trace::from_configurations(self.configurations)
    }
}

impl Observer for TraceObserver {
    fn on_start(&mut self, view: &StepView<'_>) {
        self.configurations.push(view.coloring());
    }

    fn on_round(&mut self, view: &StepView<'_>) {
        self.configurations.push(view.coloring());
    }
}

/// Records a per-round colour histogram series (the data behind the
/// convergence plots).
#[derive(Clone, Debug)]
pub struct HistogramObserver {
    palette: Palette,
    series: Vec<ColorHistogram>,
}

impl HistogramObserver {
    /// Creates a recorder counting the colours of `palette`.
    pub fn new(palette: Palette) -> Self {
        HistogramObserver {
            palette,
            series: Vec::new(),
        }
    }

    /// The recorded series, one histogram per round (round 0 = initial).
    pub fn series(&self) -> &[ColorHistogram] {
        &self.series
    }

    /// Consumes the observer, yielding the series.
    pub fn into_series(self) -> Vec<ColorHistogram> {
        self.series
    }
}

impl Observer for HistogramObserver {
    fn on_start(&mut self, view: &StepView<'_>) {
        self.series.push(round_histogram(
            &view.coloring(),
            &self.palette,
            view.round(),
        ));
    }

    fn on_round(&mut self, view: &StepView<'_>) {
        self.series.push(round_histogram(
            &view.coloring(),
            &self.palette,
            view.round(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ColorCensus;

    fn view_of(state: &StateVec) -> StepView<'_> {
        StepView::new(state, 1, state.len(), 0, 0)
    }

    #[test]
    fn step_view_reads_the_state() {
        let colors = vec![Color::new(1), Color::new(2), Color::new(1)];
        let state = StateVec::Generic {
            census: ColorCensus::of(&colors),
            colors,
        };
        let view = view_of(&state);
        assert_eq!(view.node_count(), 3);
        assert_eq!(view.grid_dims(), (1, 3));
        assert_eq!(view.color_of(1), Color::new(2));
        assert_eq!(view.count_of(Color::new(1)), 2);
        assert_eq!(view.monochromatic(), None);
        assert_eq!(view.round(), 0);
        assert_eq!(view.changed(), 0);
        assert_eq!(view.snapshot().len(), 3);
        assert_eq!(view.coloring().cols(), 3);
        let histogram = view.histogram();
        assert_eq!(histogram.round, 0);
        assert_eq!(
            histogram.counts,
            vec![(Color::new(1), 2), (Color::new(2), 1)]
        );
    }

    #[test]
    fn trace_observer_collects_configurations() {
        let colors = vec![Color::new(1); 4];
        let state = StateVec::Generic {
            census: ColorCensus::of(&colors),
            colors,
        };
        let mut observer = TraceObserver::new();
        observer.on_start(&view_of(&state));
        observer.on_round(&view_of(&state));
        let trace = observer.into_trace();
        assert_eq!(trace.rounds(), 1);
        assert_eq!(trace.initial(), trace.last());
    }

    #[test]
    fn histogram_observer_counts_rounds() {
        let colors = vec![Color::new(1), Color::new(2)];
        let state = StateVec::Generic {
            census: ColorCensus::of(&colors),
            colors,
        };
        let mut observer = HistogramObserver::new(Palette::new(2));
        observer.on_start(&view_of(&state));
        assert_eq!(observer.series().len(), 1);
        assert_eq!(observer.series()[0].count(Color::new(1)), 1);
        assert_eq!(observer.into_series().len(), 1);
    }
}
