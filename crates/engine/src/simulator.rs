//! The synchronous simulator.
//!
//! The stepper is **incremental**: after the first full round, only the
//! vertices that could possibly change — last round's changed vertices and
//! their out-neighbours — are re-evaluated (see [`crate::frontier`]).  The
//! configuration lives behind the [`StateVec`] abstraction: a generic
//! colour-per-vertex backend for arbitrary rules and palettes, a
//! bit-packed two-colour lane selected automatically when the rule
//! advertises a [`ctori_protocols::TwoStateThreshold`] degenerate form and
//! the initial configuration uses at most two colours, and a multi-colour
//! bit-plane lane (see [`crate::planes`]) selected when the rule
//! advertises a [`ctori_protocols::ColorCountRule`] counting form and
//! 3–16 colours are present on a 4-regular grid.

use crate::frontier::{PackedFrontier, Worklist};
use crate::metrics::StepStats;
use crate::observe::StepView;
use crate::parallel::{band_ranges, run_bands};
use crate::planes::PlaneLane;
use crate::state::{ColorCensus, StateVec};
use crate::telemetry::clock::monotonic_nanos;
use ctori_coloring::{Color, Coloring};
use ctori_protocols::LocalRule;
use ctori_topology::{Adjacency, NodeId, NodeSet, Topology, Torus};
use std::collections::HashMap;

/// How a run terminated.
///
/// Marked `#[non_exhaustive]`: future scenario work (e.g. wall-clock
/// budgets in a service) may add termination causes, so downstream
/// `match`es must keep a wildcard arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Termination {
    /// Every vertex holds the given colour (the paper's monochromatic
    /// configuration).  This is also a fixed point of every rule in the
    /// workspace.
    Monochromatic(Color),
    /// No vertex changed colour in the last round, but the configuration is
    /// not monochromatic.
    FixedPoint,
    /// The configuration repeated an earlier one: the system entered a
    /// limit cycle of the given period (period 1 would have been reported
    /// as a fixed point instead).
    Cycle {
        /// Length of the cycle.
        period: usize,
    },
    /// The round limit of the [`RunConfig`] was reached first.
    RoundLimit,
}

impl Termination {
    /// Whether the run ended in a monochromatic configuration of colour `k`.
    pub fn is_monochromatic_in(&self, k: Color) -> bool {
        matches!(self, Termination::Monochromatic(c) if *c == k)
    }
}

/// Configuration of a [`Simulator::run`] call.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Hard cap on the number of rounds.  The theorems' round counts are
    /// O(m·n), so the default (`4·|V| + 16`) is far above anything a
    /// converging configuration needs.
    pub max_rounds: usize,
    /// Detect limit cycles by hashing configurations.  A hash match alone
    /// is never trusted: the candidate round is re-simulated and the
    /// configurations compared for equality before a cycle is reported, so
    /// hash collisions cannot produce a false [`Termination::Cycle`].
    pub detect_cycles: bool,
    /// Record, for this colour, the round at which each vertex most
    /// recently adopted it (the matrices of Figures 5 and 6).
    pub track_times_for: Option<Color>,
    /// Verify monotonicity with respect to this colour: the set of
    /// `k`-coloured vertices must never lose a member (Definition 3).
    pub check_monotone_for: Option<Color>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_rounds: 0, // 0 = auto (4·|V| + 16), resolved in run()
            detect_cycles: true,
            track_times_for: None,
            check_monotone_for: None,
        }
    }
}

impl RunConfig {
    /// A config that tracks everything needed to verify a monotone dynamo
    /// of colour `k` and reproduce its recolouring-time matrix.
    pub fn for_dynamo(k: Color) -> Self {
        RunConfig {
            max_rounds: 0,
            detect_cycles: true,
            track_times_for: Some(k),
            check_monotone_for: Some(k),
        }
    }

    /// Sets an explicit round limit.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Disables cycle detection (slightly faster for throughput benches).
    pub fn without_cycle_detection(mut self) -> Self {
        self.detect_cycles = false;
        self
    }
}

/// Result of a single synchronous round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepReport {
    /// Number of vertices that changed colour this round.
    pub changed: usize,
    /// The round index that was just completed (1-based).
    pub round: usize,
}

/// Result of a [`Simulator::run`] call.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Why the run stopped.
    pub termination: Termination,
    /// Number of rounds executed.
    pub rounds: usize,
    /// For each vertex, the round at which it most recently adopted the
    /// tracked colour (0 for vertices that started with it); `None` for
    /// vertices that do not currently hold it.  Present only when
    /// [`RunConfig::track_times_for`] was set.
    pub recoloring_times: Option<Vec<Option<usize>>>,
    /// Whether the run was monotone in the checked colour.  Present only
    /// when [`RunConfig::check_monotone_for`] was set.
    pub monotone: Option<bool>,
    /// Number of vertices holding the tracked/checked colour at the end
    /// (equals the vertex count iff the run ended `Monochromatic` in it).
    pub final_target_count: Option<usize>,
}

impl RunReport {
    /// Whether the run converged to the `k`-monochromatic configuration.
    pub fn reached_monochromatic(&self, k: Color) -> bool {
        self.termination.is_monochromatic_in(k)
    }
}

/// SplitMix64 — the per-(vertex, colour) key of the incremental Zobrist
/// state hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Zobrist key of "vertex `v` holds colour `c`".  The state hash is the
/// XOR of the keys of all vertices, so a colour change updates it in O(1).
#[inline]
fn zkey(v: usize, c: Color) -> u64 {
    splitmix64(((v as u64) << 16) ^ u64::from(c.index()))
}

/// Evaluates the rule at one vertex against a frozen configuration.
///
/// On 4-regular topologies (all the paper's tori) the neighbour colours
/// are gathered into a stack array; on general graphs into the caller's
/// scratch buffer.  Nothing is allocated.
#[inline]
fn eval_one<R: LocalRule>(
    rule: &R,
    adjacency: &Adjacency,
    regular4: bool,
    colors: &[Color],
    scratch: &mut Vec<Color>,
    v: usize,
) -> Color {
    if regular4 {
        let nb = adjacency.neighbors_raw(v);
        let gathered = [
            colors[nb[0] as usize],
            colors[nb[1] as usize],
            colors[nb[2] as usize],
            colors[nb[3] as usize],
        ];
        rule.next_color(colors[v], &gathered)
    } else {
        scratch.clear();
        for &u in adjacency.neighbors_raw(v) {
            scratch.push(colors[u as usize]);
        }
        rule.next_color(colors[v], scratch)
    }
}

/// An incremental triple-lane synchronous simulator over the shared CSR
/// kernel.
///
/// The simulator flattens its topology once into a
/// [`ctori_topology::Adjacency`] (or borrows a prebuilt one through
/// [`Simulator::from_adjacency`]) and stores the configuration behind a
/// [`StateVec`]: a dense colour vector for arbitrary rules, a bit-packed
/// two-colour lane when the rule advertises a
/// [`ctori_protocols::TwoStateThreshold`] and at most two colours are
/// present, or a multi-colour bit-plane lane ([`crate::planes`]) when the
/// rule advertises a [`ctori_protocols::ColorCountRule`] and 3–16 colours
/// are present on a 4-regular grid.  Stepping is
/// **frontier-incremental** for local rules: after
/// the first full round only last round's changed vertices and their
/// out-neighbours are re-evaluated, so a thin spreading frontier costs
/// O(frontier) per round instead of O(|V|).  Non-local rules (and callers
/// of [`Simulator::with_full_sweep`]) take the exhaustive full-sweep path,
/// which is the PR-1 behaviour.  **No heap allocation happens per round**
/// in either lane — the hot loops are pure slice and bit indexing.
pub struct Simulator<R> {
    adjacency: Adjacency,
    rule: R,
    rows: usize,
    cols: usize,
    state: StateVec,
    worklist: Worklist,
    changes: Vec<(u32, Color, Color)>,
    round: usize,
    scratch: Vec<Color>,
    regular4: bool,
    full_sweep: bool,
    /// Incremental Zobrist hash of the configuration; maintained only once
    /// `hash_live` is set (the first `run` with cycle detection), so raw
    /// stepping pays nothing for it.
    hash: u64,
    hash_live: bool,
    degenerate_hash: bool,
    /// Intra-round band parallelism (see [`crate::parallel`]); forwarded
    /// to whichever lane is active.
    step_threads: usize,
    /// Reused per-band change buffers of the generic lane's parallel
    /// evaluation.
    band_changes: Vec<Vec<(u32, Color, Color)>>,
    /// Cumulative per-round profile (rounds, band decisions, cells).
    stats: StepStats,
}

impl<R: LocalRule> Simulator<R> {
    /// Creates a simulator for a torus and an initial colouring.
    ///
    /// # Panics
    ///
    /// Panics if the colouring's dimensions do not match the torus.
    pub fn new(torus: &Torus, rule: R, initial: Coloring) -> Self {
        assert_eq!(
            (initial.rows(), initial.cols()),
            (torus.rows(), torus.cols()),
            "colouring dimensions do not match the torus"
        );
        assert!(
            !initial.has_unset_cells(),
            "initial colouring contains unset cells"
        );
        let adjacency = Adjacency::from_torus(torus);
        let cells = initial.cells().to_vec();
        Simulator::assemble(adjacency, rule, torus.rows(), torus.cols(), cells)
    }

    /// Creates a simulator over an arbitrary topology with a flat state
    /// vector (used by the TSS substrate on general graphs).
    pub fn from_topology<T: Topology + ?Sized>(topology: &T, rule: R, initial: Vec<Color>) -> Self {
        assert_eq!(
            initial.len(),
            topology.node_count(),
            "state length does not match the topology"
        );
        let adjacency = Adjacency::build(topology);
        Simulator::from_adjacency(adjacency, rule, initial)
    }

    /// Creates a simulator over a prebuilt CSR adjacency, sharing the
    /// flattening cost across many runs on the same topology.
    ///
    /// The state is treated as a flat vector: [`Simulator::coloring`] will
    /// report a `1 × n` grid.  For grid-shaped reporting on a torus, use
    /// [`Simulator::new`] (which builds the CSR arithmetically via
    /// [`Adjacency::from_torus`] and keeps the torus dimensions).
    pub fn from_adjacency(adjacency: Adjacency, rule: R, initial: Vec<Color>) -> Self {
        assert_eq!(
            initial.len(),
            adjacency.node_count(),
            "state length does not match the topology"
        );
        let cols = initial.len();
        Simulator::assemble(adjacency, rule, 1, cols, initial)
    }

    fn assemble(
        adjacency: Adjacency,
        rule: R,
        rows: usize,
        cols: usize,
        cells: Vec<Color>,
    ) -> Self {
        let scratch = Vec::with_capacity(adjacency.max_degree());
        let regular4 = adjacency.uniform_degree() == Some(4);
        let n = cells.len();
        let state = Self::choose_backend(&adjacency, &rule, rows, cols, cells);
        let worklist = if state.is_packed() || state.is_planes() {
            // The bit lanes schedule their own frontiers.
            Worklist::new(0)
        } else {
            Worklist::new(n)
        };
        let full_sweep = !rule.is_local();
        let mut sim = Simulator {
            adjacency,
            rule,
            rows,
            cols,
            state,
            worklist,
            changes: Vec::new(),
            round: 0,
            scratch,
            regular4,
            full_sweep: false,
            hash: 0,
            hash_live: false,
            degenerate_hash: false,
            step_threads: 1,
            band_changes: Vec::new(),
            stats: StepStats::default(),
        };
        if full_sweep {
            sim.apply_full_sweep();
        }
        sim
    }

    /// Selects the state backend: the packed two-colour lane when the rule
    /// has a two-state degenerate form and exactly two colours are
    /// present, the multi-colour bit-plane lane when the rule has a
    /// counting form and 3–16 colours are present on a 4-regular grid of
    /// at least two rows, and the generic colour vector otherwise.
    fn choose_backend(
        adjacency: &Adjacency,
        rule: &R,
        rows: usize,
        cols: usize,
        cells: Vec<Color>,
    ) -> StateVec {
        let mut distinct: Option<(Color, Option<Color>)> = None;
        let mut more_than_two = false;
        for &c in &cells {
            match distinct {
                None => distinct = Some((c, None)),
                Some((a, None)) if c != a => distinct = Some((a, Some(c))),
                Some((a, Some(b))) if c != a && c != b => {
                    more_than_two = true;
                    break;
                }
                _ => {}
            }
        }
        if more_than_two
            && rows >= 2
            && adjacency.uniform_degree() == Some(4)
            && rows * cols == cells.len()
        {
            if let Some(counting) = rule.as_color_count_rule() {
                // `from_colors` re-checks the palette bound (≤ 16) and
                // bails to the generic backend past it.
                if let Some(lane) = PlaneLane::from_colors(adjacency, cols, &cells, &counting) {
                    return StateVec::Planes { lane };
                }
            }
        }
        if !more_than_two {
            if let (Some((zero, Some(one))), Some(tst)) = (distinct, rule.as_two_state_threshold())
            {
                let n = cells.len();
                let (up, down) = if let Some(d) = adjacency.uniform_degree() {
                    let (u, dn) = tst.flip_thresholds(zero, one, d);
                    (vec![u; n], vec![dn; n])
                } else {
                    let mut up = Vec::with_capacity(n);
                    let mut down = Vec::with_capacity(n);
                    for v in 0..n {
                        let (u, dn) = tst.flip_thresholds(zero, one, adjacency.degree_of(v));
                        up.push(u);
                        down.push(dn);
                    }
                    (up, down)
                };
                let mut lane = PackedFrontier::new(n, up, down);
                for (v, &c) in cells.iter().enumerate() {
                    if c == one {
                        lane.set_one(v);
                    }
                }
                return StateVec::Packed { lane, zero, one };
            }
        }
        StateVec::Generic {
            census: ColorCensus::of(&cells),
            colors: cells,
        }
    }

    fn apply_full_sweep(&mut self) {
        self.full_sweep = true;
        match &mut self.state {
            StateVec::Packed { lane, .. } => lane.set_always_full(),
            StateVec::Planes { lane } => lane.set_always_full(),
            StateVec::Generic { .. } => self.worklist.set_always_full(),
        }
    }

    /// Disables the incremental frontier: every round re-evaluates every
    /// vertex, which is the PR-1 full-sweep behaviour.  This is the
    /// baseline of the frontier benchmarks and the automatic mode for
    /// rules with [`LocalRule::is_local`]` == false`; results are
    /// identical for local rules, only slower.
    pub fn with_full_sweep(mut self) -> Self {
        self.apply_full_sweep();
        self
    }

    /// Forces the generic colour-vector backend even when the packed
    /// two-colour lane or the multi-colour bit-plane lane is eligible
    /// (used by the equivalence tests and benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if called after stepping has started.
    pub fn with_generic_lane(mut self) -> Self {
        assert_eq!(self.round, 0, "backend can only be changed before stepping");
        if self.state.is_packed() || self.state.is_planes() {
            let colors = self.state.snapshot();
            self.worklist = Worklist::new(colors.len());
            self.state = StateVec::Generic {
                census: ColorCensus::of(&colors),
                colors,
            };
            if self.full_sweep {
                self.worklist.set_always_full();
            }
        }
        self
    }

    /// Former name of [`Simulator::with_generic_lane`], from when the
    /// packed lane was the only alternative backend.
    #[deprecated(since = "0.6.0", note = "renamed to `with_generic_lane`")]
    pub fn without_packed_lane(self) -> Self {
        self.with_generic_lane()
    }

    /// Forces the multi-colour bit-plane lane.  Unlike `lane=auto`, this
    /// also accepts two-colour configurations and tori of fewer than two
    /// rows; it still requires the rule to advertise a
    /// [`ctori_protocols::ColorCountRule`] and at most 16 colours, and
    /// leaves the current backend in place when the lane is ineligible.
    ///
    /// # Panics
    ///
    /// Panics if called after stepping has started.
    pub fn with_plane_lane(mut self) -> Self {
        assert_eq!(self.round, 0, "backend can only be changed before stepping");
        if self.state.is_planes() {
            return self;
        }
        if let Some(counting) = self.rule.as_color_count_rule() {
            let colors = self.state.snapshot();
            if let Some(mut lane) =
                PlaneLane::from_colors(&self.adjacency, self.cols, &colors, &counting)
            {
                if self.full_sweep {
                    lane.set_always_full();
                }
                lane.set_threads(self.step_threads);
                self.worklist = Worklist::new(0);
                self.state = StateVec::Planes { lane };
            }
        }
        self
    }

    /// Sets the intra-round band parallelism: every step partitions its
    /// work into up to `threads` row bands evaluated by scoped workers
    /// (see [`crate::parallel`]).  Values are clamped to at least 1.
    /// Results are bit-identical at every thread count, so this is a pure
    /// throughput knob; it may be changed at any point, including
    /// mid-run.
    pub fn set_step_threads(&mut self, threads: usize) {
        self.step_threads = threads.max(1);
        match &mut self.state {
            StateVec::Packed { lane, .. } => lane.set_threads(self.step_threads),
            StateVec::Planes { lane } => lane.set_threads(self.step_threads),
            StateVec::Generic { .. } => {}
        }
    }

    /// Builder form of [`Simulator::set_step_threads`].
    pub fn with_step_threads(mut self, threads: usize) -> Self {
        self.set_step_threads(threads);
        self
    }

    /// The configured intra-round band parallelism.
    pub fn step_threads(&self) -> usize {
        self.step_threads
    }

    /// The cumulative step profile: rounds executed, dense vs sparse band
    /// decisions of the hybrid crossover, and vertices evaluated.
    pub fn step_stats(&self) -> StepStats {
        self.stats
    }

    /// Whether the bit-packed two-colour lane is driving this simulator.
    pub fn uses_packed_lane(&self) -> bool {
        self.state.is_packed()
    }

    /// Whether the multi-colour bit-plane lane is driving this simulator.
    pub fn uses_plane_lane(&self) -> bool {
        self.state.is_planes()
    }

    /// The CSR adjacency driving the hot loop.
    pub fn adjacency(&self) -> &Adjacency {
        &self.adjacency
    }

    /// The number of rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The rule driving the simulation.
    pub fn rule(&self) -> &R {
        &self.rule
    }

    /// The current colour of a vertex.
    pub fn color_of(&self, v: NodeId) -> Color {
        self.state.color_of(v.index())
    }

    /// The current state as one colour per vertex (materialised; for
    /// per-vertex queries prefer [`Simulator::color_of`]).
    pub fn snapshot(&self) -> Vec<Color> {
        self.state.snapshot()
    }

    /// The current state as a [`Coloring`] (grid-shaped).
    pub fn coloring(&self) -> Coloring {
        Coloring::from_cells(self.rows, self.cols, self.snapshot())
    }

    /// The set of vertices currently holding `k`.
    pub fn class_of(&self, k: Color) -> NodeSet {
        let n = self.state.len();
        let mut set = NodeSet::new(n);
        for v in 0..n {
            if self.state.color_of(v) == k {
                set.insert(NodeId::new(v));
            }
        }
        set
    }

    /// Number of vertices currently holding `k` (O(1): the backends keep
    /// an incremental census).
    pub fn count_of(&self, k: Color) -> usize {
        self.state.count_of(k)
    }

    /// Whether the current configuration is monochromatic, and in which
    /// colour (O(1)).
    pub fn monochromatic(&self) -> Option<Color> {
        self.state.monochromatic()
    }

    /// Calls `f(vertex, old, new)` for every vertex changed by the last
    /// [`Simulator::step`] call.
    fn for_each_last_change(&self, mut f: impl FnMut(usize, Color, Color)) {
        match &self.state {
            StateVec::Generic { .. } => {
                for &(v, old, new) in &self.changes {
                    f(v as usize, old, new);
                }
            }
            StateVec::Packed { lane, zero, one } => {
                for &v in lane.flips() {
                    // The flip is already applied, so the current bit is
                    // the new colour.
                    if lane.is_one(v as usize) {
                        f(v as usize, *zero, *one);
                    } else {
                        f(v as usize, *one, *zero);
                    }
                }
            }
            StateVec::Planes { lane } => {
                for (v, old, new) in lane.flips() {
                    f(v as usize, old, new);
                }
            }
        }
    }

    /// Executes one synchronous round and returns how many vertices
    /// changed.
    ///
    /// The first call evaluates every vertex; afterwards only the frontier
    /// candidates (last round's changed vertices and their out-neighbours)
    /// are evaluated — unless the full-sweep fallback is active, or the
    /// hybrid crossover decides a near-full candidate set is cheaper to
    /// re-sweep densely.  Results are identical either way for local
    /// rules, and bit-identical at every
    /// [`Simulator::set_step_threads`] setting.
    pub fn step(&mut self) -> StepReport {
        let mut generic_profile = (0u32, 0u32, 0u64);
        let step_start = monotonic_nanos();
        // (evaluate, merge, apply) nanoseconds for this round.  Lane
        // rounds do everything inside the lane step, so the whole round
        // counts as evaluation.
        let mut phase_profile = (0u64, 0u64, 0u64);
        let changed = match &mut self.state {
            StateVec::Packed { lane, zero, one } => {
                let flips = lane.step(&self.adjacency);
                if self.hash_live {
                    let (zero, one) = (*zero, *one);
                    let mut delta = 0u64;
                    for &v in lane.flips() {
                        delta ^= zkey(v as usize, zero) ^ zkey(v as usize, one);
                    }
                    self.hash ^= delta;
                }
                phase_profile.0 = monotonic_nanos().saturating_sub(step_start);
                flips
            }
            StateVec::Planes { lane } => {
                let flips = lane.step(&self.adjacency);
                if self.hash_live {
                    let mut delta = 0u64;
                    for (v, old, new) in lane.flips() {
                        delta ^= zkey(v as usize, old) ^ zkey(v as usize, new);
                    }
                    self.hash ^= delta;
                }
                phase_profile.0 = monotonic_nanos().saturating_sub(step_start);
                flips
            }
            StateVec::Generic { colors, census } => {
                self.changes.clear();
                let len = colors.len();
                let full = self.worklist.is_full_round();
                // The hybrid crossover (calibrated like the plane lane's):
                // once the candidate list covers ~5/8 of the vertices, a
                // linear dense sweep beats chasing the worklist.  Exact
                // because a vertex outside the worklist cannot change, so
                // the dense superset yields the identical change set.
                // `always_full` rounds (non-local rules) are full anyway.
                let dense = full || self.worklist.candidates().len() * 8 >= len * 5;
                generic_profile = if dense {
                    (1, 0, len as u64)
                } else {
                    (0, 1, self.worklist.candidates().len() as u64)
                };
                let evaluate_done;
                if self.step_threads == 1 {
                    if dense {
                        for v in 0..len {
                            let own = colors[v];
                            let new = eval_one(
                                &self.rule,
                                &self.adjacency,
                                self.regular4,
                                colors,
                                &mut self.scratch,
                                v,
                            );
                            if new != own {
                                self.changes.push((v as u32, own, new));
                            }
                        }
                    } else {
                        for i in 0..self.worklist.candidates().len() {
                            let v = self.worklist.candidates()[i] as usize;
                            let own = colors[v];
                            let new = eval_one(
                                &self.rule,
                                &self.adjacency,
                                self.regular4,
                                colors,
                                &mut self.scratch,
                                v,
                            );
                            if new != own {
                                self.changes.push((v as u32, own, new));
                            }
                        }
                    }
                    evaluate_done = monotonic_nanos();
                } else {
                    // Band-parallel evaluation against the frozen
                    // pre-round colours: dense rounds split the vertex
                    // range, sparse rounds chunk the candidate list (the
                    // round-stamped dedup already ran when the list was
                    // built, so chunks are disjoint by construction).
                    // Band-order concatenation reproduces the sequential
                    // change order exactly.
                    let ranges = if dense {
                        band_ranges(len, self.step_threads, 64)
                    } else {
                        band_ranges(self.worklist.candidates().len(), self.step_threads, 1)
                    };
                    generic_profile = if dense {
                        (ranges.len() as u32, 0, len as u64)
                    } else {
                        (0, ranges.len() as u32, generic_profile.2)
                    };
                    let mut band_changes = std::mem::take(&mut self.band_changes);
                    band_changes.resize_with(ranges.len(), Vec::new);
                    for buffer in &mut band_changes {
                        buffer.clear();
                    }
                    let rule = &self.rule;
                    let adjacency = &self.adjacency;
                    let regular4 = self.regular4;
                    let worklist = &self.worklist;
                    let colors_ref: &[Color] = colors;
                    run_bands(&ranges, &mut band_changes, |_band, start, end, out| {
                        // Per-band scratch: lazily allocated, and never
                        // touched on the 4-regular tori.
                        let mut scratch: Vec<Color> = Vec::new();
                        let mut eval = |v: usize, out: &mut Vec<(u32, Color, Color)>| {
                            let own = colors_ref[v];
                            let new =
                                eval_one(rule, adjacency, regular4, colors_ref, &mut scratch, v);
                            if new != own {
                                out.push((v as u32, own, new));
                            }
                        };
                        if dense {
                            for v in start..end {
                                eval(v, out);
                            }
                        } else {
                            for &v in &worklist.candidates()[start..end] {
                                eval(v as usize, out);
                            }
                        }
                    });
                    evaluate_done = monotonic_nanos();
                    for buffer in &band_changes {
                        self.changes.extend_from_slice(buffer);
                    }
                    self.band_changes = band_changes;
                }
                // Merge: band-order concatenation above plus the hash
                // delta, which only reads the change tuples and so can
                // fold before the colours move.
                if self.hash_live {
                    for &(v, old, new) in &self.changes {
                        self.hash ^= zkey(v as usize, old) ^ zkey(v as usize, new);
                    }
                }
                let merge_done = monotonic_nanos();
                // Apply after evaluating everything: synchronous semantics.
                for &(v, old, new) in &self.changes {
                    colors[v as usize] = new;
                    census.remove(old);
                    census.add(new);
                }
                self.worklist.begin_next();
                if !self.worklist.always_full() {
                    for i in 0..self.changes.len() {
                        let v = self.changes[i].0;
                        self.worklist.mark(v);
                        for &u in self.adjacency.neighbors_raw(v as usize) {
                            self.worklist.mark(u);
                        }
                    }
                }
                self.worklist.finish_round();
                let apply_done = monotonic_nanos();
                phase_profile = (
                    evaluate_done.saturating_sub(step_start),
                    merge_done.saturating_sub(evaluate_done),
                    apply_done.saturating_sub(merge_done),
                );
                self.changes.len()
            }
        };
        let (dense_bands, sparse_bands, cells) = match &self.state {
            StateVec::Packed { lane, .. } => lane.last_step_profile(),
            StateVec::Planes { lane } => lane.last_step_profile(),
            StateVec::Generic { .. } => generic_profile,
        };
        self.stats.record_round(dense_bands, sparse_bands, cells);
        self.stats
            .record_phases(phase_profile.0, phase_profile.1, phase_profile.2);
        self.round += 1;
        StepReport {
            changed,
            round: self.round,
        }
    }

    fn state_hash(&self) -> u64 {
        if self.degenerate_hash {
            0
        } else {
            self.hash
        }
    }

    /// Test hook: makes every configuration hash to the same value, so the
    /// collision-verification path of [`Simulator::run`] is exercised on
    /// every round.
    #[doc(hidden)]
    pub fn force_degenerate_hash(&mut self) {
        self.degenerate_hash = true;
    }

    /// Re-simulates `target_round - start_round` full-sweep rounds from
    /// `initial` and compares the result with the current configuration.
    /// Used to confirm that a state-hash match is a genuine repeat and not
    /// a 64-bit collision.
    fn replay_matches(&self, initial: &[Color], start_round: usize, target_round: usize) -> bool {
        let n = initial.len();
        let mut current = initial.to_vec();
        let mut next = current.clone();
        let mut scratch = Vec::with_capacity(self.adjacency.max_degree());
        for _ in start_round..target_round {
            for (v, slot) in next.iter_mut().enumerate() {
                *slot = eval_one(
                    &self.rule,
                    &self.adjacency,
                    self.regular4,
                    &current,
                    &mut scratch,
                    v,
                );
            }
            std::mem::swap(&mut current, &mut next);
        }
        (0..n).all(|v| current[v] == self.state.color_of(v))
    }

    /// A read-only [`StepView`] of the current configuration (round =
    /// rounds executed so far, change count 0 — views handed to run
    /// callbacks carry the real per-round change count).
    pub fn view(&self) -> StepView<'_> {
        StepView::new(&self.state, self.rows, self.cols, self.round, 0)
    }

    /// Runs until convergence (monochromatic or fixed point), a detected
    /// cycle, or the round limit.
    pub fn run(&mut self, config: &RunConfig) -> RunReport {
        self.run_with(config, |_| {})
    }

    /// [`Simulator::run`] with a per-round sink: `on_round` receives a
    /// [`StepView`] after every executed round (including the final idle
    /// or cycle-closing round).  This is the loop behind the observer API
    /// ([`crate::observe::Observer`]) and the trace recorder; `run`
    /// drives it with a no-op sink, so there is exactly one run loop in
    /// the engine.
    pub fn run_with<F: FnMut(&StepView<'_>)>(
        &mut self,
        config: &RunConfig,
        mut on_round: F,
    ) -> RunReport {
        let n = self.state.len();
        let max_rounds = if config.max_rounds == 0 {
            4 * n + 16
        } else {
            config.max_rounds
        };

        let mut times: Option<Vec<Option<usize>>> = config.track_times_for.map(|k| {
            (0..n)
                .map(|v| (self.state.color_of(v) == k).then_some(0))
                .collect()
        });
        let mut monotone = config.check_monotone_for.map(|_| true);

        let run_start_round = self.round;
        // Cycle candidates are verified by replaying from this snapshot,
        // so a hash collision can never be misreported as a cycle.
        let run_start_state: Option<Vec<Color>> = config.detect_cycles.then(|| self.snapshot());
        let mut seen: HashMap<u64, Vec<usize>> = HashMap::new();
        if config.detect_cycles {
            if !self.hash_live {
                // Switch the incremental Zobrist hash on: seed it from the
                // current configuration; step() keeps it fresh from here.
                let snapshot = run_start_state.as_ref().expect("snapshot was taken");
                self.hash = snapshot
                    .iter()
                    .enumerate()
                    .fold(0u64, |h, (v, &c)| h ^ zkey(v, c));
                self.hash_live = true;
            }
            seen.entry(self.state_hash()).or_default().push(self.round);
        }

        let termination = loop {
            if let Some(c) = self.state.monochromatic() {
                break Termination::Monochromatic(c);
            }
            if self.round >= max_rounds {
                break Termination::RoundLimit;
            }

            let report = self.step();
            let round = self.round;

            if let (Some(k), Some(times)) = (config.track_times_for, times.as_mut()) {
                self.for_each_last_change(|v, old, new| {
                    if new == k {
                        times[v] = Some(round);
                    } else if old == k {
                        times[v] = None;
                    }
                });
            }
            if let (Some(k), Some(mono)) = (config.check_monotone_for, monotone.as_mut()) {
                self.for_each_last_change(|_, old, new| {
                    if old == k && new != k {
                        *mono = false;
                    }
                });
            }

            {
                let view = StepView::new(&self.state, self.rows, self.cols, round, report.changed);
                on_round(&view);
            }

            if report.changed == 0 {
                break Termination::FixedPoint;
            }
            if config.detect_cycles {
                let h = self.state_hash();
                let initial = run_start_state.as_ref().expect("snapshot was taken");
                if let Some(previous) = seen.get(&h) {
                    let repeat = previous
                        .iter()
                        .find(|&&r0| self.replay_matches(initial, run_start_round, r0));
                    if let Some(&r0) = repeat {
                        break Termination::Cycle {
                            period: self.round - r0,
                        };
                    }
                }
                seen.entry(h).or_default().push(self.round);
            }
        };

        let final_target_count = config
            .track_times_for
            .or(config.check_monotone_for)
            .map(|k| self.count_of(k));

        RunReport {
            termination,
            rounds: self.round,
            recoloring_times: times,
            monotone,
            final_target_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_coloring::ColoringBuilder;
    use ctori_protocols::{ReverseSimpleMajority, SmpProtocol, ThresholdRule};
    use ctori_topology::{toroidal_mesh, torus_cordalis, Coord};

    fn k() -> Color {
        Color::new(2)
    }

    #[test]
    fn absorbed_patch_converges_monotonically() {
        // All colour 2 except a 2x2 patch of pairwise different colours:
        // every patch vertex sees at least two 2-coloured neighbours with
        // the other two different, so the patch is absorbed.
        let t = toroidal_mesh(5, 5);
        let coloring = ColoringBuilder::filled(&t, k())
            .cell(1, 1, Color::new(1))
            .cell(1, 2, Color::new(3))
            .cell(2, 1, Color::new(4))
            .cell(2, 2, Color::new(5))
            .build();
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        assert!(!sim.uses_packed_lane(), "five colours cannot pack");
        assert!(
            sim.uses_plane_lane(),
            "five colours + SMP select the plane lane"
        );
        let report = sim.run(&RunConfig::for_dynamo(k()));
        assert_eq!(report.termination, Termination::Monochromatic(k()));
        assert_eq!(report.monotone, Some(true));
        assert_eq!(report.final_target_count, Some(25));
        assert!(report.reached_monochromatic(k()));
        // every vertex has a recolouring time
        let times = report.recoloring_times.unwrap();
        assert!(times.iter().all(|t| t.is_some()));
        // vertices that started with colour 2 have time 0
        assert_eq!(times[t.id(Coord::new(0, 3)).index()], Some(0));
        // the patch recoloured strictly later
        assert!(times[t.id(Coord::new(1, 1)).index()].unwrap() > 0);
    }

    #[test]
    fn two_two_ties_freeze_the_configuration_under_smp() {
        // Vertical stripes of period 2 on an even torus: every vertex sees
        // two neighbours of its own colour (above/below) and two of the
        // other colour (left/right) — a 2-2 tie, so the SMP protocol never
        // changes anything.
        let t = toroidal_mesh(4, 4);
        let coloring =
            ctori_coloring::patterns::column_stripes(&t, &[Color::new(1), Color::new(2)]);
        let mut sim = Simulator::new(&t, SmpProtocol, coloring.clone());
        assert!(sim.uses_packed_lane(), "two colours + SMP select the lane");
        let report = sim.run(&RunConfig::default());
        assert_eq!(report.termination, Termination::FixedPoint);
        assert_eq!(
            report.rounds, 1,
            "fixed point is detected after one idle round"
        );
        assert_eq!(sim.coloring(), coloring);
    }

    #[test]
    fn stripes_converge_under_prefer_black_but_freeze_under_smp() {
        // The same 2-2 tie that freezes the SMP protocol makes the
        // prefer-black rule recolour every white vertex black — this is
        // exactly the behavioural difference the paper's introduction
        // emphasises.
        let t = toroidal_mesh(4, 4);
        let coloring = ctori_coloring::patterns::column_stripes(&t, &[Color::WHITE, Color::BLACK]);
        let mut pb = Simulator::new(&t, ReverseSimpleMajority::prefer_black(), coloring.clone());
        let report = pb.run(&RunConfig::default());
        assert_eq!(report.termination, Termination::Monochromatic(Color::BLACK));
        assert_eq!(report.rounds, 1);

        let mut smp = Simulator::new(&t, SmpProtocol, coloring);
        let report = smp.run(&RunConfig::default());
        assert_eq!(report.termination, Termination::FixedPoint);
    }

    #[test]
    fn cycle_detection_finds_period_two_blinker() {
        // On a checkerboard every vertex's four neighbours all hold the
        // opposite colour, so under SMP the whole configuration flips each
        // round: a limit cycle of period 2.
        let t = toroidal_mesh(4, 4);
        let coloring = ctori_coloring::patterns::checkerboard(&t, Color::new(1), Color::new(2));
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let report = sim.run(&RunConfig::default());
        assert_eq!(report.termination, Termination::Cycle { period: 2 });

        // With detection disabled the same run hits the round limit.
        let coloring = ctori_coloring::patterns::checkerboard(&t, Color::new(1), Color::new(2));
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let report = sim.run(
            &RunConfig::default()
                .without_cycle_detection()
                .with_max_rounds(10),
        );
        assert_eq!(report.termination, Termination::RoundLimit);
        assert_eq!(report.rounds, 10);
    }

    #[test]
    fn hash_collisions_are_not_reported_as_cycles() {
        // Regression for the PR-1 behaviour where any 64-bit hash match
        // was reported as a cycle without comparing states.  With the
        // degenerate hash every round "collides" with every earlier round,
        // so only the replay verification separates real repeats from
        // false ones: a converging run must still converge...
        let t = toroidal_mesh(5, 5);
        let coloring = ColoringBuilder::filled(&t, k())
            .cell(1, 1, Color::new(1))
            .cell(1, 2, Color::new(3))
            .cell(2, 1, Color::new(4))
            .cell(2, 2, Color::new(5))
            .build();
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        sim.force_degenerate_hash();
        let report = sim.run(&RunConfig::default());
        assert_eq!(
            report.termination,
            Termination::Monochromatic(k()),
            "a colliding hash must not fake a cycle"
        );

        // ...and a genuine period-2 blinker must still be reported with
        // the right period (checkerboards only blink on even tori).
        let t = toroidal_mesh(4, 4);
        let coloring = ctori_coloring::patterns::checkerboard(&t, Color::new(1), Color::new(2));
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        sim.force_degenerate_hash();
        let report = sim.run(&RunConfig::default());
        assert_eq!(report.termination, Termination::Cycle { period: 2 });
    }

    #[test]
    fn packed_generic_and_full_sweep_steppers_agree() {
        // The three data paths — packed lane, generic frontier, generic
        // full sweep — must produce identical trajectories round for
        // round (the cross-backend proptests widen this to random
        // configurations).
        let t = torus_cordalis(6, 7);
        let coloring = ColoringBuilder::filled(&t, Color::WHITE)
            .cell(1, 1, Color::BLACK)
            .cell(1, 2, Color::BLACK)
            .cell(2, 1, Color::BLACK)
            .cell(4, 5, Color::BLACK)
            .build();
        let mut packed =
            Simulator::new(&t, ReverseSimpleMajority::prefer_black(), coloring.clone());
        let mut generic =
            Simulator::new(&t, ReverseSimpleMajority::prefer_black(), coloring.clone())
                .with_generic_lane();
        let mut sweep = Simulator::new(&t, ReverseSimpleMajority::prefer_black(), coloring)
            .with_generic_lane()
            .with_full_sweep();
        assert!(packed.uses_packed_lane());
        assert!(!generic.uses_packed_lane());
        for round in 0..12 {
            let a = packed.step();
            let b = generic.step();
            let c = sweep.step();
            assert_eq!(a, b, "packed vs generic diverge at round {round}");
            assert_eq!(b, c, "generic vs full sweep diverge at round {round}");
            assert_eq!(packed.snapshot(), generic.snapshot());
            assert_eq!(generic.snapshot(), sweep.snapshot());
        }
    }

    #[test]
    fn packed_lane_run_reports_match_generic() {
        let t = toroidal_mesh(8, 8);
        let seed = Color::new(2);
        let mut builder = ColoringBuilder::filled(&t, Color::new(1));
        for (r, c) in [(1, 1), (1, 2), (2, 1), (2, 2)] {
            builder = builder.cell(r, c, seed);
        }
        let coloring = builder.build();
        let rule = ThresholdRule::new(seed, 2);
        let mut packed = Simulator::new(&t, rule, coloring.clone());
        let mut generic = Simulator::new(&t, rule, coloring).with_generic_lane();
        assert!(packed.uses_packed_lane());
        let a = packed.run(&RunConfig::for_dynamo(seed));
        let b = generic.run(&RunConfig::for_dynamo(seed));
        assert_eq!(a.termination, b.termination);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.monotone, b.monotone);
        assert_eq!(a.recoloring_times, b.recoloring_times);
        assert_eq!(a.final_target_count, b.final_target_count);
    }

    /// All colour `k` except a 3x3 patch of pairwise distinct colours:
    /// absorbing, but the patch centre needs two rounds.
    fn slow_absorbing_config(t: &Torus) -> Coloring {
        let mut b = ColoringBuilder::filled(t, k());
        let mut next = 3u16;
        for r in 1..=3 {
            for c in 1..=3 {
                let color = if (r, c) == (2, 2) {
                    Color::new(1)
                } else {
                    Color::new(next)
                };
                next += 1;
                b = b.cell(r, c, color);
            }
        }
        b.build()
    }

    #[test]
    fn round_limit_is_respected() {
        let t = torus_cordalis(7, 7);
        let coloring = slow_absorbing_config(&t);
        let mut sim = Simulator::new(&t, SmpProtocol, coloring.clone());
        let full = sim.run(&RunConfig::default());
        assert_eq!(full.termination, Termination::Monochromatic(k()));
        assert!(full.rounds >= 2, "patch centre needs at least two rounds");

        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let report = sim.run(&RunConfig::default().with_max_rounds(1));
        assert_eq!(report.termination, Termination::RoundLimit);
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn monotonicity_violation_is_reported() {
        // Under prefer-black, black can *lose* vertices when surrounded by
        // white (3 white neighbours) — craft a lone black vertex.
        let t = toroidal_mesh(4, 4);
        let coloring = ColoringBuilder::filled(&t, Color::WHITE)
            .cell(1, 1, Color::BLACK)
            .build();
        let mut sim = Simulator::new(&t, ReverseSimpleMajority::prefer_black(), coloring);
        let cfg = RunConfig {
            check_monotone_for: Some(Color::BLACK),
            ..RunConfig::default()
        };
        let report = sim.run(&cfg);
        assert_eq!(report.monotone, Some(false));
        assert_eq!(report.termination, Termination::Monochromatic(Color::WHITE));
    }

    #[test]
    fn from_topology_runs_on_general_graphs() {
        use ctori_topology::Graph;
        // A path of 5 vertices, threshold 1, seeded at one end: activation
        // sweeps across the path one vertex per round.
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1));
        }
        let mut state = vec![Color::new(1); 5];
        state[0] = Color::new(2);
        let rule = ThresholdRule::new(Color::new(2), 1);
        let mut sim = Simulator::from_topology(&g, rule, state);
        assert!(
            sim.uses_packed_lane(),
            "two-colour threshold runs pack even on non-regular graphs"
        );
        let report = sim.run(&RunConfig::default());
        assert_eq!(
            report.termination,
            Termination::Monochromatic(Color::new(2))
        );
        assert_eq!(report.rounds, 4);
    }

    #[test]
    fn step_counts_changes() {
        let t = toroidal_mesh(7, 7);
        let coloring = slow_absorbing_config(&t);
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let r1 = sim.step();
        assert!(r1.changed > 0);
        assert_eq!(r1.round, 1);
        assert_eq!(sim.round(), 1);
        assert_eq!(sim.rule().name(), "SMP-Protocol");
    }

    #[test]
    #[should_panic(expected = "dimensions do not match")]
    fn dimension_mismatch_is_rejected() {
        let t = toroidal_mesh(4, 4);
        let other = toroidal_mesh(5, 5);
        let coloring = Coloring::uniform(&other, Color::new(1));
        let _ = Simulator::new(&t, SmpProtocol, coloring);
    }

    #[test]
    fn state_accessors() {
        let t = toroidal_mesh(3, 3);
        let coloring = ColoringBuilder::filled(&t, Color::new(1))
            .cell(0, 0, k())
            .build();
        let sim = Simulator::new(&t, SmpProtocol, coloring);
        assert_eq!(sim.count_of(k()), 1);
        assert_eq!(sim.color_of(t.id(Coord::new(0, 0))), k());
        assert_eq!(sim.class_of(k()).count(), 1);
        assert_eq!(sim.snapshot().len(), 9);
        assert_eq!(sim.monochromatic(), None);
    }
}
