//! The synchronous simulator.

use ctori_coloring::{Color, Coloring};
use ctori_protocols::LocalRule;
use ctori_topology::{Adjacency, NodeId, NodeSet, Topology, Torus};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// How a run terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Termination {
    /// Every vertex holds the given colour (the paper's monochromatic
    /// configuration).  This is also a fixed point of every rule in the
    /// workspace.
    Monochromatic(Color),
    /// No vertex changed colour in the last round, but the configuration is
    /// not monochromatic.
    FixedPoint,
    /// The configuration repeated an earlier one: the system entered a
    /// limit cycle of the given period (period 1 would have been reported
    /// as a fixed point instead).
    Cycle {
        /// Length of the cycle.
        period: usize,
    },
    /// The round limit of the [`RunConfig`] was reached first.
    RoundLimit,
}

impl Termination {
    /// Whether the run ended in a monochromatic configuration of colour `k`.
    pub fn is_monochromatic_in(&self, k: Color) -> bool {
        matches!(self, Termination::Monochromatic(c) if *c == k)
    }
}

/// Configuration of a [`Simulator::run`] call.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Hard cap on the number of rounds.  The theorems' round counts are
    /// O(m·n), so the default (`4·|V| + 16`) is far above anything a
    /// converging configuration needs.
    pub max_rounds: usize,
    /// Detect limit cycles by hashing configurations (costs one hash of the
    /// state per round plus a hash-map entry).
    pub detect_cycles: bool,
    /// Record, for this colour, the round at which each vertex most
    /// recently adopted it (the matrices of Figures 5 and 6).
    pub track_times_for: Option<Color>,
    /// Verify monotonicity with respect to this colour: the set of
    /// `k`-coloured vertices must never lose a member (Definition 3).
    pub check_monotone_for: Option<Color>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_rounds: 0, // 0 = auto (4·|V| + 16), resolved in run()
            detect_cycles: true,
            track_times_for: None,
            check_monotone_for: None,
        }
    }
}

impl RunConfig {
    /// A config that tracks everything needed to verify a monotone dynamo
    /// of colour `k` and reproduce its recolouring-time matrix.
    pub fn for_dynamo(k: Color) -> Self {
        RunConfig {
            max_rounds: 0,
            detect_cycles: true,
            track_times_for: Some(k),
            check_monotone_for: Some(k),
        }
    }

    /// Sets an explicit round limit.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Disables cycle detection (slightly faster for throughput benches).
    pub fn without_cycle_detection(mut self) -> Self {
        self.detect_cycles = false;
        self
    }
}

/// Result of a single synchronous round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepReport {
    /// Number of vertices that changed colour this round.
    pub changed: usize,
    /// The round index that was just completed (1-based).
    pub round: usize,
}

/// Result of a [`Simulator::run`] call.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Why the run stopped.
    pub termination: Termination,
    /// Number of rounds executed.
    pub rounds: usize,
    /// For each vertex, the round at which it most recently adopted the
    /// tracked colour (0 for vertices that started with it); `None` for
    /// vertices that do not currently hold it.  Present only when
    /// [`RunConfig::track_times_for`] was set.
    pub recoloring_times: Option<Vec<Option<usize>>>,
    /// Whether the run was monotone in the checked colour.  Present only
    /// when [`RunConfig::check_monotone_for`] was set.
    pub monotone: Option<bool>,
    /// Number of vertices holding the tracked/checked colour at the end
    /// (equals the vertex count iff the run ended `Monochromatic` in it).
    pub final_target_count: Option<usize>,
}

impl RunReport {
    /// Whether the run converged to the `k`-monochromatic configuration.
    pub fn reached_monochromatic(&self, k: Color) -> bool {
        self.termination.is_monochromatic_in(k)
    }
}

/// A double-buffered synchronous simulator over the shared CSR kernel.
///
/// The simulator flattens its topology once into a
/// [`ctori_topology::Adjacency`] (or borrows a prebuilt one through
/// [`Simulator::from_adjacency`]), owns two dense colour buffers and swaps
/// them each round.  The stepper is monomorphised per [`LocalRule`] and the
/// neighbour-colour scratch buffer is sized to the maximum degree at
/// construction, so **no heap allocation happens per round** — the hot
/// loop is pure slice indexing.
pub struct Simulator<R> {
    adjacency: Adjacency,
    rule: R,
    rows: usize,
    cols: usize,
    current: Vec<Color>,
    next: Vec<Color>,
    round: usize,
    scratch: Vec<Color>,
    regular4: bool,
}

impl<R: LocalRule> Simulator<R> {
    /// Creates a simulator for a torus and an initial colouring.
    ///
    /// # Panics
    ///
    /// Panics if the colouring's dimensions do not match the torus.
    pub fn new(torus: &Torus, rule: R, initial: Coloring) -> Self {
        assert_eq!(
            (initial.rows(), initial.cols()),
            (torus.rows(), torus.cols()),
            "colouring dimensions do not match the torus"
        );
        assert!(
            !initial.has_unset_cells(),
            "initial colouring contains unset cells"
        );
        let adjacency = Adjacency::from_torus(torus);
        let cells = initial.cells().to_vec();
        Simulator::assemble(adjacency, rule, torus.rows(), torus.cols(), cells)
    }

    /// Creates a simulator over an arbitrary topology with a flat state
    /// vector (used by the TSS substrate on general graphs).
    pub fn from_topology<T: Topology + ?Sized>(topology: &T, rule: R, initial: Vec<Color>) -> Self {
        assert_eq!(
            initial.len(),
            topology.node_count(),
            "state length does not match the topology"
        );
        let adjacency = Adjacency::build(topology);
        Simulator::from_adjacency(adjacency, rule, initial)
    }

    /// Creates a simulator over a prebuilt CSR adjacency, sharing the
    /// flattening cost across many runs on the same topology.
    ///
    /// The state is treated as a flat vector: [`Simulator::coloring`] will
    /// report a `1 × n` grid.  For grid-shaped reporting on a torus, use
    /// [`Simulator::new`] (which builds the CSR arithmetically via
    /// [`Adjacency::from_torus`] and keeps the torus dimensions).
    pub fn from_adjacency(adjacency: Adjacency, rule: R, initial: Vec<Color>) -> Self {
        assert_eq!(
            initial.len(),
            adjacency.node_count(),
            "state length does not match the topology"
        );
        let cols = initial.len();
        Simulator::assemble(adjacency, rule, 1, cols, initial)
    }

    fn assemble(
        adjacency: Adjacency,
        rule: R,
        rows: usize,
        cols: usize,
        cells: Vec<Color>,
    ) -> Self {
        let scratch = Vec::with_capacity(adjacency.max_degree());
        let regular4 = adjacency.uniform_degree() == Some(4);
        Simulator {
            adjacency,
            rule,
            rows,
            cols,
            next: cells.clone(),
            current: cells,
            round: 0,
            scratch,
            regular4,
        }
    }

    /// The CSR adjacency driving the hot loop.
    pub fn adjacency(&self) -> &Adjacency {
        &self.adjacency
    }

    /// The number of rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The rule driving the simulation.
    pub fn rule(&self) -> &R {
        &self.rule
    }

    /// The current colour of a vertex.
    pub fn color_of(&self, v: NodeId) -> Color {
        self.current[v.index()]
    }

    /// Read-only view of the current state.
    pub fn state(&self) -> &[Color] {
        &self.current
    }

    /// The current state as a [`Coloring`] (grid-shaped).
    pub fn coloring(&self) -> Coloring {
        Coloring::from_cells(self.rows, self.cols, self.current.clone())
    }

    /// The set of vertices currently holding `k`.
    pub fn class_of(&self, k: Color) -> NodeSet {
        let mut set = NodeSet::new(self.current.len());
        for (i, &c) in self.current.iter().enumerate() {
            if c == k {
                set.insert(NodeId::new(i));
            }
        }
        set
    }

    /// Number of vertices currently holding `k`.
    pub fn count_of(&self, k: Color) -> usize {
        self.current.iter().filter(|&&c| c == k).count()
    }

    /// Whether the current configuration is monochromatic, and in which
    /// colour.
    pub fn monochromatic(&self) -> Option<Color> {
        let first = *self.current.first()?;
        self.current.iter().all(|&c| c == first).then_some(first)
    }

    /// Executes one synchronous round and returns how many vertices
    /// changed.
    ///
    /// The loop allocates nothing: on 4-regular topologies (all the
    /// paper's tori) the neighbour colours are gathered into a stack
    /// array, and on general graphs into the preallocated scratch buffer.
    pub fn step(&mut self) -> StepReport {
        let n = self.current.len();
        let mut changed = 0usize;
        if self.regular4 {
            for v in 0..n {
                let nb = self.adjacency.neighbors_raw(v);
                let colors = [
                    self.current[nb[0] as usize],
                    self.current[nb[1] as usize],
                    self.current[nb[2] as usize],
                    self.current[nb[3] as usize],
                ];
                let own = self.current[v];
                let new = self.rule.next_color(own, &colors);
                self.next[v] = new;
                changed += usize::from(new != own);
            }
        } else {
            for v in 0..n {
                self.scratch.clear();
                for &u in self.adjacency.neighbors_raw(v) {
                    self.scratch.push(self.current[u as usize]);
                }
                let own = self.current[v];
                let new = self.rule.next_color(own, &self.scratch);
                self.next[v] = new;
                changed += usize::from(new != own);
            }
        }
        std::mem::swap(&mut self.current, &mut self.next);
        self.round += 1;
        StepReport {
            changed,
            round: self.round,
        }
    }

    fn state_hash(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        self.current.hash(&mut hasher);
        hasher.finish()
    }

    /// Runs until convergence (monochromatic or fixed point), a detected
    /// cycle, or the round limit.
    pub fn run(&mut self, config: &RunConfig) -> RunReport {
        let n = self.current.len();
        let max_rounds = if config.max_rounds == 0 {
            4 * n + 16
        } else {
            config.max_rounds
        };

        let mut times: Option<Vec<Option<usize>>> = config.track_times_for.map(|k| {
            self.current
                .iter()
                .map(|&c| if c == k { Some(0) } else { None })
                .collect()
        });
        let mut monotone = config.check_monotone_for.map(|_| true);
        let mut prev_k_set: Option<Vec<bool>> = config
            .check_monotone_for
            .map(|k| self.current.iter().map(|&c| c == k).collect());

        let mut seen: HashMap<u64, usize> = HashMap::new();
        if config.detect_cycles {
            seen.insert(self.state_hash(), self.round);
        }

        let termination = loop {
            if let Some(c) = self.monochromatic() {
                break Termination::Monochromatic(c);
            }
            if self.round >= max_rounds {
                break Termination::RoundLimit;
            }

            let report = self.step();

            // After the swap in step(), `self.next` still holds the
            // previous round's state, so tracking needs no snapshot clone.
            if let (Some(k), Some(times)) = (config.track_times_for, times.as_mut()) {
                for (v, slot) in times.iter_mut().enumerate() {
                    let now = self.current[v];
                    let was = self.next[v];
                    if now == k && was != k {
                        *slot = Some(self.round);
                    } else if now != k && was == k {
                        *slot = None;
                    }
                }
            }
            if let (Some(k), Some(mono), Some(prev)) = (
                config.check_monotone_for,
                monotone.as_mut(),
                prev_k_set.as_mut(),
            ) {
                for (v, was_k) in prev.iter_mut().enumerate() {
                    let now_k = self.current[v] == k;
                    if *was_k && !now_k {
                        *mono = false;
                    }
                    *was_k = now_k;
                }
            }

            if report.changed == 0 {
                break Termination::FixedPoint;
            }
            if config.detect_cycles {
                let h = self.state_hash();
                if let Some(&first) = seen.get(&h) {
                    break Termination::Cycle {
                        period: self.round - first,
                    };
                }
                seen.insert(h, self.round);
            }
        };

        let final_target_count = config
            .track_times_for
            .or(config.check_monotone_for)
            .map(|k| self.count_of(k));

        RunReport {
            termination,
            rounds: self.round,
            recoloring_times: times,
            monotone,
            final_target_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_coloring::ColoringBuilder;
    use ctori_protocols::{ReverseSimpleMajority, SmpProtocol};
    use ctori_topology::{toroidal_mesh, torus_cordalis, Coord};

    fn k() -> Color {
        Color::new(2)
    }

    #[test]
    fn absorbed_patch_converges_monotonically() {
        // All colour 2 except a 2x2 patch of pairwise different colours:
        // every patch vertex sees at least two 2-coloured neighbours with
        // the other two different, so the patch is absorbed.
        let t = toroidal_mesh(5, 5);
        let coloring = ColoringBuilder::filled(&t, k())
            .cell(1, 1, Color::new(1))
            .cell(1, 2, Color::new(3))
            .cell(2, 1, Color::new(4))
            .cell(2, 2, Color::new(5))
            .build();
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let report = sim.run(&RunConfig::for_dynamo(k()));
        assert_eq!(report.termination, Termination::Monochromatic(k()));
        assert_eq!(report.monotone, Some(true));
        assert_eq!(report.final_target_count, Some(25));
        assert!(report.reached_monochromatic(k()));
        // every vertex has a recolouring time
        let times = report.recoloring_times.unwrap();
        assert!(times.iter().all(|t| t.is_some()));
        // vertices that started with colour 2 have time 0
        assert_eq!(times[t.id(Coord::new(0, 3)).index()], Some(0));
        // the patch recoloured strictly later
        assert!(times[t.id(Coord::new(1, 1)).index()].unwrap() > 0);
    }

    #[test]
    fn two_two_ties_freeze_the_configuration_under_smp() {
        // Vertical stripes of period 2 on an even torus: every vertex sees
        // two neighbours of its own colour (above/below) and two of the
        // other colour (left/right) — a 2-2 tie, so the SMP protocol never
        // changes anything.
        let t = toroidal_mesh(4, 4);
        let coloring =
            ctori_coloring::patterns::column_stripes(&t, &[Color::new(1), Color::new(2)]);
        let mut sim = Simulator::new(&t, SmpProtocol, coloring.clone());
        let report = sim.run(&RunConfig::default());
        assert_eq!(report.termination, Termination::FixedPoint);
        assert_eq!(
            report.rounds, 1,
            "fixed point is detected after one idle round"
        );
        assert_eq!(sim.coloring(), coloring);
    }

    #[test]
    fn stripes_converge_under_prefer_black_but_freeze_under_smp() {
        // The same 2-2 tie that freezes the SMP protocol makes the
        // prefer-black rule recolour every white vertex black — this is
        // exactly the behavioural difference the paper's introduction
        // emphasises.
        let t = toroidal_mesh(4, 4);
        let coloring = ctori_coloring::patterns::column_stripes(&t, &[Color::WHITE, Color::BLACK]);
        let mut pb = Simulator::new(&t, ReverseSimpleMajority::prefer_black(), coloring.clone());
        let report = pb.run(&RunConfig::default());
        assert_eq!(report.termination, Termination::Monochromatic(Color::BLACK));
        assert_eq!(report.rounds, 1);

        let mut smp = Simulator::new(&t, SmpProtocol, coloring);
        let report = smp.run(&RunConfig::default());
        assert_eq!(report.termination, Termination::FixedPoint);
    }

    #[test]
    fn cycle_detection_finds_period_two_blinker() {
        // On a checkerboard every vertex's four neighbours all hold the
        // opposite colour, so under SMP the whole configuration flips each
        // round: a limit cycle of period 2.
        let t = toroidal_mesh(4, 4);
        let coloring = ctori_coloring::patterns::checkerboard(&t, Color::new(1), Color::new(2));
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let report = sim.run(&RunConfig::default());
        assert_eq!(report.termination, Termination::Cycle { period: 2 });

        // With detection disabled the same run hits the round limit.
        let coloring = ctori_coloring::patterns::checkerboard(&t, Color::new(1), Color::new(2));
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let report = sim.run(
            &RunConfig::default()
                .without_cycle_detection()
                .with_max_rounds(10),
        );
        assert_eq!(report.termination, Termination::RoundLimit);
        assert_eq!(report.rounds, 10);
    }

    /// All colour `k` except a 3x3 patch of pairwise distinct colours:
    /// absorbing, but the patch centre needs two rounds.
    fn slow_absorbing_config(t: &Torus) -> Coloring {
        let mut b = ColoringBuilder::filled(t, k());
        let mut next = 3u16;
        for r in 1..=3 {
            for c in 1..=3 {
                let color = if (r, c) == (2, 2) {
                    Color::new(1)
                } else {
                    Color::new(next)
                };
                next += 1;
                b = b.cell(r, c, color);
            }
        }
        b.build()
    }

    #[test]
    fn round_limit_is_respected() {
        let t = torus_cordalis(7, 7);
        let coloring = slow_absorbing_config(&t);
        let mut sim = Simulator::new(&t, SmpProtocol, coloring.clone());
        let full = sim.run(&RunConfig::default());
        assert_eq!(full.termination, Termination::Monochromatic(k()));
        assert!(full.rounds >= 2, "patch centre needs at least two rounds");

        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let report = sim.run(&RunConfig::default().with_max_rounds(1));
        assert_eq!(report.termination, Termination::RoundLimit);
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn monotonicity_violation_is_reported() {
        // Under prefer-black, black can *lose* vertices when surrounded by
        // white (3 white neighbours) — craft a lone black vertex.
        let t = toroidal_mesh(4, 4);
        let coloring = ColoringBuilder::filled(&t, Color::WHITE)
            .cell(1, 1, Color::BLACK)
            .build();
        let mut sim = Simulator::new(&t, ReverseSimpleMajority::prefer_black(), coloring);
        let cfg = RunConfig {
            check_monotone_for: Some(Color::BLACK),
            ..RunConfig::default()
        };
        let report = sim.run(&cfg);
        assert_eq!(report.monotone, Some(false));
        assert_eq!(report.termination, Termination::Monochromatic(Color::WHITE));
    }

    #[test]
    fn from_topology_runs_on_general_graphs() {
        use ctori_protocols::ThresholdRule;
        use ctori_topology::Graph;
        // A path of 5 vertices, threshold 1, seeded at one end: activation
        // sweeps across the path one vertex per round.
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1));
        }
        let mut state = vec![Color::new(1); 5];
        state[0] = Color::new(2);
        let rule = ThresholdRule::new(Color::new(2), 1);
        let mut sim = Simulator::from_topology(&g, rule, state);
        let report = sim.run(&RunConfig::default());
        assert_eq!(
            report.termination,
            Termination::Monochromatic(Color::new(2))
        );
        assert_eq!(report.rounds, 4);
    }

    #[test]
    fn step_counts_changes() {
        let t = toroidal_mesh(7, 7);
        let coloring = slow_absorbing_config(&t);
        let mut sim = Simulator::new(&t, SmpProtocol, coloring);
        let r1 = sim.step();
        assert!(r1.changed > 0);
        assert_eq!(r1.round, 1);
        assert_eq!(sim.round(), 1);
        assert_eq!(sim.rule().name(), "SMP-Protocol");
    }

    #[test]
    #[should_panic(expected = "dimensions do not match")]
    fn dimension_mismatch_is_rejected() {
        let t = toroidal_mesh(4, 4);
        let other = toroidal_mesh(5, 5);
        let coloring = Coloring::uniform(&other, Color::new(1));
        let _ = Simulator::new(&t, SmpProtocol, coloring);
    }

    #[test]
    fn state_accessors() {
        let t = toroidal_mesh(3, 3);
        let coloring = ColoringBuilder::filled(&t, Color::new(1))
            .cell(0, 0, k())
            .build();
        let sim = Simulator::new(&t, SmpProtocol, coloring);
        assert_eq!(sim.count_of(k()), 1);
        assert_eq!(sim.color_of(t.id(Coord::new(0, 0))), k());
        assert_eq!(sim.class_of(k()).count(), 1);
        assert_eq!(sim.state().len(), 9);
        assert_eq!(sim.monochromatic(), None);
    }
}
