//! Parallel parameter sweeps.
//!
//! The experiment harness and the exhaustive searches run very many small,
//! independent simulations (one per torus size, per candidate seed set, per
//! random replicate).  The per-simulation work is tiny, so the parallelism
//! lives here: an atomic work queue fanned out over `std::thread::scope`
//! workers.  Each worker accumulates `(index, output)` pairs in its own
//! local buffer and the results are scattered into the output vector after
//! the workers are joined — no shared lock is ever taken, so threads never
//! serialize on result collection.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every input, in parallel, preserving input order in the
/// output.
///
/// Falls back to a sequential loop when `threads <= 1` or there are fewer
/// inputs than threads would help with.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if threads <= 1 || inputs.len() <= 1 {
        return inputs.iter().map(&f).collect();
    }

    let n = inputs.len();
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<O>> = Vec::with_capacity(n);
    results.resize_with(n, || None);

    let (inputs, next, f) = (&inputs, &next, &f);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(n))
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        local.push((idx, f(&inputs[idx])));
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            for (idx, out) in worker.join().expect("sweep worker panicked") {
                results[idx] = Some(out);
            }
        }
    });

    results
        .into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

/// The default worker-thread budget: the machine's available parallelism,
/// capped at 16.
///
/// This is the **single** source of the fallback used everywhere a caller
/// does not choose a thread count explicitly — [`parallel_runs`],
/// [`crate::runner::Runner::new`], and the simulation-service worker pool
/// all resolve their "auto" setting here, so the policy can only be tuned
/// in one place.  An explicit count is threaded through
/// [`crate::spec::EngineOptions::threads`] /
/// [`crate::runner::Runner::with_threads`] instead.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(16)
}

/// Convenience wrapper: runs `f` for every input with the
/// [`default_threads`] budget.
pub fn parallel_runs<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    parallel_map(inputs, default_threads(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{RunConfig, Simulator, Termination};
    use ctori_coloring::{Color, ColoringBuilder};
    use ctori_protocols::SmpProtocol;
    use ctori_topology::toroidal_mesh;

    #[test]
    fn default_threads_is_positive_and_capped() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(inputs.clone(), 4, |&x| x * x);
        let expected: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn sequential_fallback_matches_parallel() {
        let inputs: Vec<u64> = (0..37).collect();
        let seq = parallel_map(inputs.clone(), 1, |&x| x + 1);
        let par = parallel_map(inputs, 8, |&x| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert_eq!(parallel_map(empty, 4, |&x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(vec![7u32], 4, |&x| x * 2), vec![14]);
    }

    #[test]
    fn more_threads_than_inputs() {
        let out = parallel_map(vec![1u32, 2, 3], 16, |&x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn uneven_workloads_are_balanced_dynamically() {
        // A mix of heavy and light items: the work queue hands items to
        // whichever thread is free, so the result must still be in order.
        let inputs: Vec<u64> = (0..64).collect();
        let out = parallel_map(inputs, 4, |&x| {
            if x % 7 == 0 {
                (0..10_000u64).fold(x, |a, b| a.wrapping_add(b))
            } else {
                x
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[1], 1);
        assert_eq!(out[0], (0..10_000u64).fold(0u64, |a, b| a.wrapping_add(b)));
    }

    #[test]
    fn parallel_simulations_agree_with_sequential() {
        // Run the same family of simulations sequentially and in parallel
        // and check identical outcomes (the simulations are deterministic).
        let sizes: Vec<(usize, usize)> = vec![(4, 4), (5, 5), (6, 4), (4, 7), (8, 8)];
        let run_one = |&(m, n): &(usize, usize)| -> (usize, bool) {
            let t = toroidal_mesh(m, n);
            let k = Color::new(2);
            let coloring = ColoringBuilder::filled(&t, k)
                .cell(1, 1, Color::new(1))
                .cell(1, 2, Color::new(3))
                .cell(2, 1, Color::new(4))
                .cell(2, 2, Color::new(5))
                .build();
            let mut sim = Simulator::new(&t, SmpProtocol, coloring);
            let report = sim.run(&RunConfig::for_dynamo(k));
            (
                report.rounds,
                report.termination == Termination::Monochromatic(k),
            )
        };
        let seq: Vec<_> = sizes.iter().map(run_one).collect();
        let par = parallel_runs(sizes, run_one);
        assert_eq!(seq, par);
        assert!(par.iter().all(|&(_, mono)| mono));
    }
}
