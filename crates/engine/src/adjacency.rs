//! Historical location of the CSR adjacency.
//!
//! The CSR kernel moved down into [`ctori_topology::adjacency`] so that the
//! topology crate, the simulator, the diffusion processes and the
//! connectivity helpers all share one sparse substrate.  This module
//! re-exports it so `ctori_engine::Adjacency` keeps compiling; new code
//! should import [`ctori_topology::Adjacency`] directly.

pub use ctori_topology::Adjacency;
