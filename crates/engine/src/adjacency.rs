//! Precomputed adjacency in compressed sparse row (CSR) form.
//!
//! The simulation hot loop touches every vertex's neighbourhood once per
//! round.  Asking the [`Topology`] trait for a fresh `Vec<NodeId>` each time
//! would allocate per vertex per round, so the simulator flattens the
//! adjacency once at construction into a CSR structure and the hot loop is
//! pure slice indexing.

use ctori_topology::{NodeId, Topology};

/// Flattened adjacency lists of a topology.
#[derive(Clone, Debug)]
pub struct Adjacency {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Adjacency {
    /// Builds the CSR adjacency of a topology.
    pub fn build<T: Topology + ?Sized>(topology: &T) -> Self {
        let n = topology.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for v in 0..n {
            for u in topology.neighbors(NodeId::new(v)) {
                targets.push(u.index() as u32);
            }
            offsets.push(targets.len() as u32);
        }
        Adjacency { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The neighbour indices of vertex `v` as a slice of raw indices.
    #[inline]
    pub fn neighbors_raw(&self, v: usize) -> &[u32] {
        let start = self.offsets[v] as usize;
        let end = self.offsets[v + 1] as usize;
        &self.targets[start..end]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count()).map(|v| self.degree(v)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_topology::{toroidal_mesh, torus_serpentinus, Graph};

    #[test]
    fn csr_matches_torus_neighbors() {
        let t = toroidal_mesh(4, 5);
        let adj = Adjacency::build(&t);
        assert_eq!(adj.node_count(), 20);
        assert_eq!(adj.max_degree(), 4);
        for v in 0..t.node_count() {
            let mut a: Vec<u32> = adj.neighbors_raw(v).to_vec();
            let mut b: Vec<u32> = t
                .neighbors(NodeId::new(v))
                .iter()
                .map(|u| u.index() as u32)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "adjacency mismatch at vertex {v}");
            assert_eq!(adj.degree(v), 4);
        }
    }

    #[test]
    fn csr_handles_irregular_graphs() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(1), NodeId::new(2));
        g.add_edge(NodeId::new(1), NodeId::new(3));
        let adj = Adjacency::build(&g);
        assert_eq!(adj.degree(0), 1);
        assert_eq!(adj.degree(1), 3);
        assert_eq!(adj.degree(2), 1);
        assert_eq!(adj.max_degree(), 3);
        assert_eq!(adj.neighbors_raw(0), &[1]);
    }

    #[test]
    fn csr_on_serpentinus() {
        let t = torus_serpentinus(3, 3);
        let adj = Adjacency::build(&t);
        assert_eq!(adj.node_count(), 9);
        for v in 0..9 {
            assert_eq!(adj.degree(v), 4);
        }
    }
}
