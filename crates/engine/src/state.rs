//! State-vector backends of the simulator.
//!
//! The simulator stores the configuration behind the [`StateVec`]
//! abstraction, which has three backends:
//!
//! * [`StateVec::Generic`] — one [`Color`] (`u16`) per vertex plus an
//!   incrementally maintained per-colour census, serving any rule and any
//!   palette;
//! * [`StateVec::Packed`] — one **bit** per vertex inside a
//!   [`PackedFrontier`] lane, used when the initial configuration has at
//!   most two colours and the rule advertises a two-colour degenerate form
//!   through [`ctori_protocols::LocalRule::as_two_state_threshold`];
//! * [`StateVec::Planes`] — `⌈log₂ k⌉` bits per vertex inside a
//!   [`PlaneLane`], used when up to 16 colours are present and the rule
//!   advertises a per-colour counting form through
//!   [`ctori_protocols::LocalRule::as_color_count_rule`].
//!
//! All backends keep their aggregate queries (`count_of`,
//! `monochromatic`, `histogram_counts`) O(palette) or better by updating
//! counters as changes are applied, so the run loop never re-scans the
//! configuration between rounds.

use crate::frontier::PackedFrontier;
use crate::planes::PlaneLane;
use ctori_coloring::Color;

/// An incrementally maintained per-colour census.
///
/// Counts are indexed by the raw colour value; the table grows on demand
/// (colours are `u16`, so it is at most 256 KiB even for adversarial
/// palettes) and tracks how many distinct colours are currently present.
#[derive(Clone, Debug, Default)]
pub struct ColorCensus {
    counts: Vec<u32>,
    distinct: usize,
}

impl ColorCensus {
    /// Builds the census of a configuration.
    pub fn of(colors: &[Color]) -> Self {
        let mut census = ColorCensus::default();
        for &c in colors {
            census.add(c);
        }
        census
    }

    /// Records one more vertex of colour `c`.
    pub fn add(&mut self, c: Color) {
        let idx = c.index() as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        if self.counts[idx] == 0 {
            self.distinct += 1;
        }
        self.counts[idx] += 1;
    }

    /// Records one fewer vertex of colour `c`.
    pub fn remove(&mut self, c: Color) {
        let idx = c.index() as usize;
        self.counts[idx] -= 1;
        if self.counts[idx] == 0 {
            self.distinct -= 1;
        }
    }

    /// Number of vertices currently holding `c`.
    pub fn count(&self, c: Color) -> usize {
        self.counts
            .get(c.index() as usize)
            .map(|&n| n as usize)
            .unwrap_or(0)
    }

    /// Number of distinct colours currently present.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// The `(colour, count)` pairs of every colour currently present, in
    /// ascending colour order.  O(palette), not O(vertices) — this is
    /// what makes per-round histogram sampling cheap for the progress
    /// events of the execution API.
    pub fn present(&self) -> Vec<(Color, usize)> {
        self.counts
            .iter()
            .enumerate()
            .skip(1) // index 0 is the unset sentinel, never in a built run
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (Color::new(idx as u16), n as usize))
            .collect()
    }
}

/// The simulator's configuration storage.
pub enum StateVec {
    /// One colour per vertex; works for every rule and palette.
    Generic {
        /// The configuration.
        colors: Vec<Color>,
        /// Incremental per-colour census of `colors`.
        census: ColorCensus,
    },
    /// One bit per vertex inside a packed two-colour lane.
    Packed {
        /// The bit state plus the frontier scheduler and flip thresholds.
        lane: PackedFrontier,
        /// The colour a 0-bit stands for.
        zero: Color,
        /// The colour a 1-bit stands for.
        one: Color,
    },
    /// `⌈log₂ k⌉` bits per vertex across the bit-planes of a multi-colour
    /// lane (the lane owns its palette and per-colour census).
    Planes {
        /// The bit-plane state plus the word-granular frontier scheduler.
        lane: PlaneLane,
    },
}

impl StateVec {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        match self {
            StateVec::Generic { colors, .. } => colors.len(),
            StateVec::Packed { lane, .. } => lane.len(),
            StateVec::Planes { lane } => lane.len(),
        }
    }

    /// Whether the state is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the packed two-colour backend is in use.
    pub fn is_packed(&self) -> bool {
        matches!(self, StateVec::Packed { .. })
    }

    /// Whether the multi-colour bit-plane backend is in use.
    pub fn is_planes(&self) -> bool {
        matches!(self, StateVec::Planes { .. })
    }

    /// The colour of vertex `v`.
    #[inline]
    pub fn color_of(&self, v: usize) -> Color {
        match self {
            StateVec::Generic { colors, .. } => colors[v],
            StateVec::Packed { lane, zero, one } => {
                if lane.is_one(v) {
                    *one
                } else {
                    *zero
                }
            }
            StateVec::Planes { lane } => lane.color_at(v),
        }
    }

    /// Materialises the configuration as one colour per vertex.
    pub fn snapshot(&self) -> Vec<Color> {
        match self {
            StateVec::Generic { colors, .. } => colors.clone(),
            StateVec::Packed { lane, zero, one } => (0..lane.len())
                .map(|v| if lane.is_one(v) { *one } else { *zero })
                .collect(),
            StateVec::Planes { lane } => lane.snapshot(),
        }
    }

    /// Number of vertices currently holding `k` (O(1); O(log palette) on
    /// the plane lane).
    pub fn count_of(&self, k: Color) -> usize {
        match self {
            StateVec::Generic { census, .. } => census.count(k),
            StateVec::Packed { lane, zero, one } => {
                if k == *one {
                    lane.ones()
                } else if k == *zero {
                    lane.len() - lane.ones()
                } else {
                    0
                }
            }
            StateVec::Planes { lane } => lane.count_of(k),
        }
    }

    /// The `(colour, count)` pairs of every colour currently present, in
    /// ascending colour order (O(palette) on the generic and plane
    /// backends, O(1) on the packed lane) — never O(vertices), which is
    /// what keeps per-round histogram observers cheap.
    pub fn histogram_counts(&self) -> Vec<(Color, usize)> {
        match self {
            StateVec::Generic { census, .. } => census.present(),
            StateVec::Planes { lane } => lane.histogram(),
            StateVec::Packed { lane, zero, one } => {
                let ones = lane.ones();
                let zeros = lane.len() - ones;
                let mut counts = Vec::with_capacity(2);
                for (color, count) in [(*zero, zeros), (*one, ones)] {
                    if count > 0 {
                        counts.push((color, count));
                    }
                }
                counts.sort_unstable_by_key(|(c, _)| c.index());
                counts
            }
        }
    }

    /// The monochromatic colour, if every vertex holds the same one (O(1)).
    pub fn monochromatic(&self) -> Option<Color> {
        if self.is_empty() {
            return None;
        }
        match self {
            StateVec::Generic { colors, census } => (census.distinct() == 1).then(|| colors[0]),
            StateVec::Packed { lane, zero, one } => {
                if lane.ones() == lane.len() {
                    Some(*one)
                } else if lane.ones() == 0 {
                    Some(*zero)
                } else {
                    None
                }
            }
            StateVec::Planes { lane } => lane.monochromatic(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> Color {
        Color::new(i)
    }

    #[test]
    fn census_tracks_distinct_colors() {
        let mut census = ColorCensus::of(&[c(1), c(1), c(2)]);
        assert_eq!(census.count(c(1)), 2);
        assert_eq!(census.count(c(9)), 0);
        assert_eq!(census.distinct(), 2);
        census.remove(c(2));
        census.add(c(1));
        assert_eq!(census.distinct(), 1);
        assert_eq!(census.count(c(1)), 3);
    }

    #[test]
    fn generic_state_queries() {
        let colors = vec![c(1), c(2), c(1)];
        let state = StateVec::Generic {
            census: ColorCensus::of(&colors),
            colors,
        };
        assert_eq!(state.len(), 3);
        assert!(!state.is_packed());
        assert_eq!(state.color_of(1), c(2));
        assert_eq!(state.count_of(c(1)), 2);
        assert_eq!(state.monochromatic(), None);
        assert_eq!(state.snapshot(), vec![c(1), c(2), c(1)]);
    }

    #[test]
    fn packed_state_queries() {
        let mut lane = PackedFrontier::new(4, vec![u32::MAX; 4], vec![u32::MAX; 4]);
        lane.set_one(2);
        let state = StateVec::Packed {
            lane,
            zero: c(1),
            one: c(2),
        };
        assert_eq!(state.len(), 4);
        assert!(state.is_packed());
        assert_eq!(state.color_of(2), c(2));
        assert_eq!(state.color_of(0), c(1));
        assert_eq!(state.count_of(c(2)), 1);
        assert_eq!(state.count_of(c(1)), 3);
        assert_eq!(state.count_of(c(7)), 0);
        assert_eq!(state.monochromatic(), None);
        assert_eq!(state.snapshot(), vec![c(1), c(1), c(2), c(1)]);
    }
}
