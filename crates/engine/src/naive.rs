//! Bench-only allocating baseline for the CSR hot loop.
//!
//! This module is compiled only with the `naive-baseline` feature and
//! exists solely so the benchmarks can quantify what the shared
//! [`ctori_topology::Adjacency`] kernel buys: it steps the same synchronous
//! dynamics through the [`Topology`] trait with a fresh neighbour list (and
//! a fresh colour list) allocated per vertex per round — exactly the data
//! path the workspace had before the CSR refactor.  Never use it outside
//! benchmarks.

use ctori_coloring::Color;
use ctori_protocols::LocalRule;
use ctori_topology::{NodeId, Topology};

/// A synchronous stepper that re-materialises every neighbourhood as a
/// fresh `Vec` each visit.
pub struct NaiveSimulator<T, R> {
    topology: T,
    rule: R,
    current: Vec<Color>,
    next: Vec<Color>,
    round: usize,
}

impl<T: Topology, R: LocalRule> NaiveSimulator<T, R> {
    /// Creates a naive stepper over a topology and a flat state vector.
    pub fn new(topology: T, rule: R, initial: Vec<Color>) -> Self {
        assert_eq!(
            initial.len(),
            topology.node_count(),
            "state length does not match the topology"
        );
        NaiveSimulator {
            topology,
            rule,
            next: initial.clone(),
            current: initial,
            round: 0,
        }
    }

    /// Executes one synchronous round and returns how many vertices
    /// changed.
    pub fn step(&mut self) -> usize {
        let n = self.current.len();
        let mut changed = 0usize;
        for v in 0..n {
            // A fresh buffer per vertex on purpose: this baseline measures
            // the allocate-per-visit data path the CSR kernel replaced.
            let mut neighbors = Vec::new();
            self.topology.neighbors_into(NodeId::new(v), &mut neighbors);
            let colors: Vec<Color> = neighbors.iter().map(|u| self.current[u.index()]).collect();
            let own = self.current[v];
            let new = self.rule.next_color(own, &colors);
            self.next[v] = new;
            if new != own {
                changed += 1;
            }
        }
        std::mem::swap(&mut self.current, &mut self.next);
        self.round += 1;
        changed
    }

    /// Read-only view of the current state.
    pub fn state(&self) -> &[Color] {
        &self.current
    }

    /// The number of rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;
    use ctori_coloring::{Color, ColoringBuilder};
    use ctori_protocols::SmpProtocol;
    use ctori_topology::toroidal_mesh;

    #[test]
    fn naive_and_csr_steppers_agree() {
        let t = toroidal_mesh(6, 7);
        let coloring = ColoringBuilder::filled(&t, Color::new(2))
            .cell(1, 1, Color::new(1))
            .cell(1, 2, Color::new(3))
            .cell(2, 1, Color::new(4))
            .cell(2, 2, Color::new(5))
            .build();
        let mut naive = NaiveSimulator::new(&t, SmpProtocol, coloring.cells().to_vec());
        let mut csr = Simulator::new(&t, SmpProtocol, coloring);
        for _ in 0..5 {
            naive.step();
            csr.step();
            assert_eq!(naive.state(), csr.snapshot());
        }
    }
}
