//! The k-colour bit-plane lane.
//!
//! The packed lane of [`crate::frontier`] collapses a **two**-colour run to
//! one bit per vertex; this module generalises it to any palette of up to
//! 16 colours by *bit-plane slicing*: the palette is sorted and each colour
//! mapped to a dense code `0..k`, and the configuration is stored as
//! `⌈log₂ k⌉` parallel `u64` bit arrays ("planes") — bit `v` of plane `p`
//! is bit `p` of vertex `v`'s code.  Sixty-four vertices then share a word
//! in every plane, and a whole word's rule evaluation becomes a short
//! branch-free sequence of word ops:
//!
//! 1. **Gather** each of the four torus directions as one word per plane
//!    (a funnel shift over two adjacent words — no per-vertex indexing).
//! 2. **Decode** per-colour indicator words: `ind_c = ∧_p (nb_p` or
//!    `!nb_p)` depending on bit `p` of code `c`.
//! 3. **Count** the four direction indicators per colour with a half-adder
//!    tree into 64 parallel 3-bit counters, and apply the rule's
//!    comparators (`≥2`, `≥3`, `=4`, unique-plurality masks) to get a
//!    per-colour *adopt* word.
//! 4. **Merge** the adopted codes back into the planes with two masks.
//!
//! The per-vertex cost is a few ALU ops instead of a rule dispatch plus a
//! colour multiset scan.  Which rules qualify is declared by the rules
//! themselves through [`ctori_protocols::LocalRule::as_color_count_rule`],
//! the multi-colour sibling of `as_two_state_threshold`.
//!
//! # Frontier words and wrap handling
//!
//! Scheduling is *word-granular*: the dirty-tracking worklist (the same
//! round-stamped structure the per-vertex frontier uses) holds
//! word indices, and a word is re-evaluated when any of its 64 vertices or
//! their neighbours changed last round (dirty propagation is word-level
//! too, through a per-word neighbour-word table built at construction —
//! no per-flip CSR walks).  Words are classified once at construction:
//!
//! * **fast** — the word is full and every vertex `v` in it has the CSR
//!   neighbour pattern `[v-cols, v+cols, v-1, v+1]`, the interior pattern
//!   shared by all three [`ctori_topology::TorusKind`]s (on the chordal
//!   tori even the row-wrap columns match it, because their west/east
//!   wraps are literally `v∓1` in row-major order);
//! * **wrap** — as fast, except that at most one lane's west and one
//!   lane's east neighbour differ (a toroidal-mesh row-wrap column): the
//!   word goes through the same vector kernel with those lanes patched
//!   from their true CSR source after the horizontal gathers;
//! * **slow** — everything else (the two vertical-wrap boundary rows, the
//!   partial tail word, non-torus structure): exact per-vertex CSR
//!   evaluation.
//!
//! Explicit wrap handling therefore costs two patched bits on O(rows)
//! words and the scalar path only O(cols) vertices, while the O(rows ·
//! cols) interior streams through the vector kernel.
//!
//! # Cache-tiled traversal
//!
//! Full sweeps over large tori walk the words in L1-sized 2D tiles
//! (16 rows × 32 words ≈ 16 KiB of plane data for a 4-plane palette, plus
//! the two neighbouring rows each gather touches) instead of row-major
//! order, so a 4096² torus streams each cache line once per round instead
//! of thrashing between distant rows.  Evaluation is strictly
//! read-old/write-new (patches are applied after the whole round is
//! evaluated), so traversal order never affects results.

use crate::frontier::Worklist;
use crate::parallel::{band_ranges, run_bands};
use ctori_coloring::Color;
use ctori_protocols::{ColorCountForm, ColorCountRule};
use ctori_topology::Adjacency;

/// Planes needed for the largest supported palette (16 colours → 4 bits).
const MAX_PLANES: usize = 4;
/// Largest palette the lane accepts.
const MAX_PALETTE: usize = 1 << MAX_PLANES;
/// Tile height of the cache-tiled full sweep, in torus rows.
const TILE_ROWS: usize = 16;
/// Tile width of the cache-tiled full sweep, in 64-vertex words.
const TILE_WORD_COLS: usize = 32;

/// The rule, compiled to palette codes at construction.
#[derive(Clone, Copy, Debug)]
enum Decision {
    /// Adopt the unique strict plurality colour if it has at least
    /// `min_pair` holders.
    Plurality { min_pair: u32 },
    /// Adopt the colour of code `code` at `threshold` holders; `None` if
    /// the activation colour is not in the palette (the lane is inert).
    Activation { code: Option<u8>, threshold: u32 },
}

/// How one 64-vertex word is evaluated (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WordClass {
    /// Full word, interior CSR pattern in all four directions.
    Fast,
    /// Full word, interior pattern vertically; the horizontal gathers
    /// need at most one lane each patched from its true wrap source
    /// (`(lane, source vertex)` — a toroidal-mesh row-wrap column).
    Wrap {
        west: Option<(u8, u32)>,
        east: Option<(u8, u32)>,
    },
    /// Anything else: exact per-vertex CSR evaluation.
    Slow,
}

/// One word's pending rewrite, evaluated against the pre-round planes.
///
/// Keeping the old plane words alongside the new makes the patch a full
/// record of the round's changes, so per-flip data (`(vertex, old, new)`
/// tuples for observers and hashing) can be derived lazily instead of
/// materialised inside the hot apply loop.
#[derive(Clone, Copy, Debug)]
struct Patch {
    word: u32,
    /// Lanes whose vertex changes code this round.
    changed: u64,
    /// The word's pre-round value in every plane.
    old: [u64; MAX_PLANES],
    /// The word's full new value in every plane.
    new: [u64; MAX_PLANES],
}

/// A band worker's running summary of the patches it produced, computed
/// while the patch words are still in registers so the sequential apply
/// phase has nothing left to count (see [`PlaneLane::step`]).
#[derive(Clone, Copy, Debug, Default)]
struct BandDelta {
    /// Vertices changed in this band.
    flips: usize,
    /// Signed per-code census movement (codes partition the changed
    /// bits, so indicator popcounts over old/new words are exact).
    census: [i64; MAX_PALETTE],
}

impl BandDelta {
    /// Folds one patch into the summary.
    #[inline]
    fn account(&mut self, patch: &Patch, plane_count: usize, k: usize) {
        self.flips += patch.changed.count_ones() as usize;
        for (code, slot) in self.census.iter_mut().enumerate().take(k) {
            let gained = indicator(&patch.new, plane_count, code) & patch.changed;
            let lost = indicator(&patch.old, plane_count, code) & patch.changed;
            *slot += i64::from(gained.count_ones()) - i64::from(lost.count_ones());
        }
    }
}

/// Reads the 64 bits starting at bit `base` of a packed bit array.
///
/// Callers guarantee `base + 63` is a valid bit index (fast-word
/// classification does: every gathered position is a CSR neighbour of an
/// in-range vertex), which bounds both word accesses.
#[inline(always)]
fn gather(plane: &[u64], base: usize) -> u64 {
    let q = base >> 6;
    let r = base & 63;
    if r == 0 {
        plane[q]
    } else {
        (plane[q] >> r) | (plane[q + 1] << (64 - r))
    }
}

/// The per-colour indicator of one gathered (or own) word set: lane `v` is
/// set iff vertex `v`'s code equals `code`.
#[inline(always)]
fn indicator(words: &[u64; MAX_PLANES], plane_count: usize, code: usize) -> u64 {
    let mut ind = !0u64;
    for (p, &plane) in words.iter().enumerate().take(plane_count) {
        ind &= if (code >> p) & 1 == 1 { plane } else { !plane };
    }
    ind
}

/// 64 parallel 3-bit counters over four indicator words: lane `v` of the
/// result `(hi, mid, low)` encodes `a + b + c + d` at that lane as
/// `4·hi + 2·mid + low` (a classic half-adder tree, exact for degree 4).
#[inline(always)]
fn count4(a: u64, b: u64, c: u64, d: u64) -> (u64, u64, u64) {
    let s0 = a ^ b;
    let c0 = a & b;
    let s1 = c ^ d;
    let c1 = c & d;
    let low = s0 ^ s1;
    let carry = s0 & s1;
    let mid = c0 ^ c1 ^ carry;
    let hi = (c0 & c1) | (carry & (c0 ^ c1));
    (hi, mid, low)
}

/// The multi-colour bit-plane frontier stepper.
///
/// Construction compiles a [`ColorCountRule`] and an initial configuration
/// of at most 16 distinct colours down to palette codes; stepping then
/// evaluates 64 vertices per word against the pre-round planes (see the
/// [module docs](crate::planes) for the kernel).  Like
/// [`crate::PackedFrontier`], the adjacency is passed to
/// [`PlaneLane::step`] rather than owned, so one CSR can serve many lanes.
#[derive(Clone, Debug)]
pub struct PlaneLane {
    /// `planes[p]` holds bit `p` of every vertex code; tail bits past
    /// `len` stay zero.
    planes: Vec<Vec<u64>>,
    plane_count: usize,
    len: usize,
    words: usize,
    cols: usize,
    /// Distinct colours of the initial configuration in ascending order;
    /// a vertex's code is its colour's position here.
    palette: Vec<Color>,
    /// Vertices currently holding each code (incremental census).
    census: Vec<usize>,
    /// Per-word evaluation class (vector kernel, patched vector kernel,
    /// or exact per-vertex fallback).
    class: Vec<WordClass>,
    /// Word-granular dirty propagation: `mark_words[mark_offsets[w]..
    /// mark_offsets[w + 1]]` are the *other* words holding a neighbour of
    /// some vertex of word `w`, so a changed word marks a handful of words
    /// instead of walking the CSR per flip.
    mark_offsets: Vec<u32>,
    mark_words: Vec<u32>,
    /// Tile geometry `(rows, words_per_row)` when the torus rows are
    /// word-aligned; `None` keeps full sweeps in linear word order.
    tile_geometry: Option<(usize, usize)>,
    decision: Decision,
    locked_code: Option<u8>,
    worklist: Worklist,
    /// Per-band double buffers of the last step's patches (band workers
    /// write their own vector; the concatenation in band order is the
    /// sequential patch stream).
    band_patches: Vec<Vec<Patch>>,
    /// Reused per-band candidate buckets for sparse rounds.
    band_cands: Vec<Vec<u32>>,
    /// Requested step-parallelism (row-band workers per round).
    threads: usize,
    /// The thread count `band_plan` was computed for; `0` forces a
    /// replan on the next step.
    planned_threads: usize,
    /// Contiguous word ranges, one per band, tile-row aligned.
    band_plan: Vec<(usize, usize)>,
    /// Bands that ran the full tiled sweep last step.
    last_dense_bands: u32,
    /// Bands that ran the worklist path last step.
    last_sparse_bands: u32,
    /// Vertices examined last step (64 per evaluated word).
    last_cells_evaluated: u64,
    /// Number of vertices changed by the last step.
    flipped: usize,
}

impl PlaneLane {
    /// Compiles a configuration and rule into a plane lane.
    ///
    /// `cols` is the torus row stride used to recognise interior words
    /// (pass the column count of the grid; any value is *safe* — words
    /// not matching the interior pattern just take the exact per-vertex
    /// path).  Returns `None` when the configuration has no vertices or
    /// more than 16 distinct colours, or when the rule could introduce a
    /// colour outside the initial palette (an absent activation colour
    /// with a zero threshold), in which cases the caller should stay on
    /// the generic backend.
    ///
    /// # Panics
    ///
    /// Panics if the adjacency and configuration lengths differ.
    pub fn from_colors(
        adjacency: &Adjacency,
        cols: usize,
        colors: &[Color],
        rule: &ColorCountRule,
    ) -> Option<PlaneLane> {
        let len = colors.len();
        assert_eq!(
            adjacency.node_count(),
            len,
            "adjacency does not match the configuration"
        );
        let mut palette: Vec<Color> = colors.to_vec();
        palette.sort_unstable();
        palette.dedup();
        if palette.is_empty() || palette.len() > MAX_PALETTE {
            return None;
        }
        let code_of_color = |c: Color| palette.binary_search(&c).ok().map(|i| i as u8);
        let decision = match rule.form() {
            ColorCountForm::Plurality { min_pair } => Decision::Plurality { min_pair },
            ColorCountForm::Activation { active, threshold } => {
                let code = code_of_color(active);
                if code.is_none() && threshold == 0 {
                    // Would recolour everything to a colour outside the
                    // palette in round one — not representable in codes.
                    return None;
                }
                Decision::Activation { code, threshold }
            }
            // Future plane-evaluable forms fall back to the generic lane.
            _ => return None,
        };
        // A locked colour nobody holds can never matter.
        let locked_code = rule.locked().and_then(code_of_color);

        let k = palette.len();
        let plane_count = if k <= 2 {
            1
        } else {
            (usize::BITS - (k - 1).leading_zeros()) as usize
        };
        let words = len.div_ceil(64);
        let mut planes = vec![vec![0u64; words]; plane_count];
        let mut census = vec![0usize; k];
        for (v, &c) in colors.iter().enumerate() {
            let code = code_of_color(c).expect("every colour is in the palette");
            census[code as usize] += 1;
            for (p, plane) in planes.iter_mut().enumerate() {
                if (code >> p) & 1 == 1 {
                    plane[v >> 6] |= 1u64 << (v & 63);
                }
            }
        }

        // Classify words against the shared interior CSR pattern
        // [v-cols, v+cols, v-1, v+1].  Computed in i64 so grid-edge
        // vertices (whose wrapped neighbours differ per torus kind) can
        // never match accidentally.  A full word whose only deviations are
        // one west and/or one east lane (a row-wrap column) still takes
        // the vector kernel with those lanes patched; the matching
        // vertical pattern guarantees every gather it performs stays in
        // bounds (base >= cols and base + 64 <= len - cols).
        let mut class = vec![WordClass::Slow; words];
        if cols > 0 {
            let stride = cols as i64;
            'words: for (w, slot) in class.iter_mut().enumerate() {
                let start = w * 64;
                if start + 64 > len {
                    continue;
                }
                let mut west_fix: Option<(u8, u32)> = None;
                let mut east_fix: Option<(u8, u32)> = None;
                for v in start..start + 64 {
                    let nbrs = adjacency.neighbors_raw(v);
                    let vi = v as i64;
                    if nbrs.len() != 4
                        || i64::from(nbrs[0]) != vi - stride
                        || i64::from(nbrs[1]) != vi + stride
                    {
                        continue 'words;
                    }
                    let lane = (v - start) as u8;
                    if i64::from(nbrs[2]) != vi - 1 {
                        if west_fix.is_some() {
                            continue 'words;
                        }
                        west_fix = Some((lane, nbrs[2]));
                    }
                    if i64::from(nbrs[3]) != vi + 1 {
                        if east_fix.is_some() {
                            continue 'words;
                        }
                        east_fix = Some((lane, nbrs[3]));
                    }
                }
                *slot = match (west_fix, east_fix) {
                    (None, None) => WordClass::Fast,
                    (west, east) => WordClass::Wrap { west, east },
                };
            }
        }

        // The word-granular dirty table: which other words hold a
        // neighbour of some vertex of each word.
        let mut mark_offsets = vec![0u32; words + 1];
        let mut mark_words: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        for w in 0..words {
            scratch.clear();
            let start = w * 64;
            for v in start..(start + 64).min(len) {
                for &u in adjacency.neighbors_raw(v) {
                    let uw = u >> 6;
                    if uw as usize != w && !scratch.contains(&uw) {
                        scratch.push(uw);
                    }
                }
            }
            mark_words.extend_from_slice(&scratch);
            mark_offsets[w + 1] = mark_words.len() as u32;
        }
        let tile_geometry = if cols >= 64 && cols.is_multiple_of(64) && len.is_multiple_of(cols) {
            Some((len / cols, cols / 64))
        } else {
            None
        };

        Some(PlaneLane {
            planes,
            plane_count,
            len,
            words,
            cols,
            palette,
            census,
            class,
            mark_offsets,
            mark_words,
            tile_geometry,
            decision,
            locked_code,
            worklist: Worklist::new(words),
            band_patches: Vec::new(),
            band_cands: Vec::new(),
            threads: 1,
            planned_threads: 0,
            band_plan: Vec::new(),
            last_dense_bands: 0,
            last_sparse_bands: 0,
            last_cells_evaluated: 0,
            flipped: 0,
        })
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the lane has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The distinct colours of the initial configuration, ascending.  The
    /// palette is closed under the compiled rule, so it never changes.
    pub fn palette(&self) -> &[Color] {
        &self.palette
    }

    /// Number of bit planes in use (`⌈log₂ |palette|⌉`, at least 1).
    pub fn plane_count(&self) -> usize {
        self.plane_count
    }

    /// The current colour of vertex `v`.
    #[inline]
    pub fn color_at(&self, v: usize) -> Color {
        self.palette[self.code_of(v) as usize]
    }

    /// Number of vertices currently holding `k` (O(log palette)).
    pub fn count_of(&self, k: Color) -> usize {
        match self.palette.binary_search(&k) {
            Ok(code) => self.census[code],
            Err(_) => 0,
        }
    }

    /// The `(colour, count)` pairs of every colour currently present, in
    /// ascending colour order — O(palette), straight off the census.
    pub fn histogram(&self) -> Vec<(Color, usize)> {
        self.palette
            .iter()
            .zip(&self.census)
            .filter(|&(_, &n)| n > 0)
            .map(|(&c, &n)| (c, n))
            .collect()
    }

    /// The monochromatic colour, if every vertex holds the same one
    /// (O(palette)).
    pub fn monochromatic(&self) -> Option<Color> {
        if self.is_empty() {
            return None;
        }
        self.census
            .iter()
            .position(|&n| n == self.len)
            .map(|code| self.palette[code])
    }

    /// Materialises the configuration as one colour per vertex.
    pub fn snapshot(&self) -> Vec<Color> {
        (0..self.len).map(|v| self.color_at(v)).collect()
    }

    /// The `(vertex, old colour, new colour)` changes of the last
    /// [`PlaneLane::step`] call, derived lazily from the retained patches
    /// so the hot apply loop never materialises per-flip tuples.
    pub fn flips(&self) -> impl Iterator<Item = (u32, Color, Color)> + '_ {
        let pc = self.plane_count;
        self.band_patches.iter().flatten().flat_map(move |patch| {
            let base = patch.word as usize * 64;
            let mut mask = patch.changed;
            std::iter::from_fn(move || {
                if mask == 0 {
                    return None;
                }
                let bit = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let (mut old, mut new) = (0u8, 0u8);
                for p in 0..pc {
                    old |= (((patch.old[p] >> bit) & 1) as u8) << p;
                    new |= (((patch.new[p] >> bit) & 1) as u8) << p;
                }
                Some((
                    (base + bit) as u32,
                    self.palette[old as usize],
                    self.palette[new as usize],
                ))
            })
        })
    }

    /// Number of vertices changed by the last [`PlaneLane::step`] call.
    pub fn flip_count(&self) -> usize {
        self.flipped
    }

    /// Pins every future round to a full sweep (the benchmark baseline
    /// and the fallback for non-local rules).
    pub fn set_always_full(&mut self) {
        self.worklist.set_always_full();
    }

    /// Sets the number of row-band workers [`PlaneLane::step`] uses.
    ///
    /// Values are clamped to at least 1; the number of bands actually
    /// spawned is further bounded by how many tile-row-aligned bands the
    /// grid supports.  Results are bit-identical for every thread count
    /// (evaluation reads only the frozen pre-round planes and writes
    /// band-local buffers), so this is a pure throughput knob.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// `(dense bands, sparse bands, cells evaluated)` of the last step —
    /// the hybrid crossover's per-round decision record.
    pub(crate) fn last_step_profile(&self) -> (u32, u32, u64) {
        (
            self.last_dense_bands,
            self.last_sparse_bands,
            self.last_cells_evaluated,
        )
    }

    /// Recomputes the band partition when the thread count changed.
    fn ensure_plan(&mut self) {
        if self.planned_threads == self.threads {
            return;
        }
        // Align band starts to whole tile rows so each band's full sweep
        // keeps the cache-tiled traversal intact.
        let align = match self.tile_geometry {
            Some((_, words_per_row)) => words_per_row * TILE_ROWS,
            None => 1,
        };
        self.band_plan = band_ranges(self.words, self.threads, align);
        let bands = self.band_plan.len();
        self.band_patches.resize_with(bands, Vec::new);
        self.band_cands.resize_with(bands, Vec::new);
        self.planned_threads = self.threads;
    }

    /// The current code of vertex `v` (its colour's palette position).
    #[inline]
    fn code_of(&self, v: usize) -> u8 {
        let (w, b) = (v >> 6, v & 63);
        let mut code = 0u8;
        for (p, plane) in self.planes.iter().enumerate() {
            code |= (((plane[w] >> b) & 1) as u8) << p;
        }
        code
    }

    /// Evaluates one word against the pre-round planes.
    fn eval_word(&self, adjacency: &Adjacency, w: u32) -> Option<Patch> {
        match self.class[w as usize] {
            WordClass::Fast => self.eval_vector(w, None, None),
            WordClass::Wrap { west, east } => self.eval_vector(w, west, east),
            WordClass::Slow => self.eval_slow(adjacency, w),
        }
    }

    /// Replaces one lane of a gathered word set with the bit of its true
    /// source vertex (the explicit wrap handling of row-wrap columns).
    #[inline(always)]
    fn patch_lane(planes: &[Vec<u64>], words: &mut [u64; MAX_PLANES], lane: u8, src: u32) {
        let (q, r) = ((src >> 6) as usize, src & 63);
        let mask = 1u64 << lane;
        for (p, plane) in planes.iter().enumerate() {
            let bit = (plane[q] >> r) & 1;
            words[p] = (words[p] & !mask) | (bit << lane);
        }
    }

    /// The vectorised kernel: 64 vertices in one pass of word ops, valid
    /// because fast and wrap words are full and share the interior
    /// neighbour pattern (degree exactly 4) up to the patched lanes.
    fn eval_vector(
        &self,
        w: u32,
        west: Option<(u8, u32)>,
        east: Option<(u8, u32)>,
    ) -> Option<Patch> {
        let wi = w as usize;
        let base = wi * 64;
        let pc = self.plane_count;
        let k = self.palette.len();

        let mut own = [0u64; MAX_PLANES];
        for (p, plane) in self.planes.iter().enumerate() {
            own[p] = plane[wi];
        }
        // One gathered word set per direction.  Classification guarantees
        // base >= cols and base >= 1, and that every gathered bit index is
        // a valid vertex, so the funnel shifts stay in bounds.
        let bases = [base - self.cols, base + self.cols, base - 1, base + 1];
        let mut nb = [[0u64; MAX_PLANES]; 4];
        for (d, &b) in bases.iter().enumerate() {
            for (p, plane) in self.planes.iter().enumerate() {
                nb[d][p] = gather(plane, b);
            }
        }
        if let Some((lane, src)) = west {
            Self::patch_lane(&self.planes, &mut nb[2], lane, src);
        }
        if let Some((lane, src)) = east {
            Self::patch_lane(&self.planes, &mut nb[3], lane, src);
        }

        let mut changed = 0u64;
        let mut adopted = [0u64; MAX_PLANES];
        let mut adopt_code = |code: usize, adopt: u64, changed: &mut u64| {
            let effective = adopt & !indicator(&own, pc, code);
            if effective != 0 {
                *changed |= effective;
                for (p, slot) in adopted.iter_mut().enumerate().take(pc) {
                    if (code >> p) & 1 == 1 {
                        *slot |= effective;
                    }
                }
            }
        };

        match self.decision {
            Decision::Plurality { min_pair } if min_pair <= 2 => {
                // On degree 4 a unique plurality of one is impossible
                // (four singletons tie), so min_pair <= 2 all behave as 2:
                // adopt on counts 4, 3-1 and 2-1-1; keep on 2-2 ties.
                let mut ge2 = [0u64; MAX_PALETTE];
                let mut ge3 = [0u64; MAX_PALETTE];
                let mut any2 = 0u64;
                let mut dup2 = 0u64;
                for code in 0..k {
                    let (hi, mid, low) = count4(
                        indicator(&nb[0], pc, code),
                        indicator(&nb[1], pc, code),
                        indicator(&nb[2], pc, code),
                        indicator(&nb[3], pc, code),
                    );
                    let g2 = hi | mid;
                    ge2[code] = g2;
                    ge3[code] = hi | (mid & low);
                    dup2 |= any2 & g2;
                    any2 |= g2;
                }
                for code in 0..k {
                    // A pair is the unique plurality iff no *other* colour
                    // also reaches two: either two colours reached two
                    // (dup2) or some colour did and it is not this one.
                    let other_pair = dup2 | (any2 & !ge2[code]);
                    let adopt = ge3[code] | (ge2[code] & !ge3[code] & !other_pair);
                    adopt_code(code, adopt, &mut changed);
                }
            }
            Decision::Plurality { min_pair } => {
                // min_pair 3 or 4 of four neighbours is automatically a
                // unique plurality; 5+ can never fire on degree 4.
                if (3..=4).contains(&min_pair) {
                    for code in 0..k {
                        let (hi, mid, low) = count4(
                            indicator(&nb[0], pc, code),
                            indicator(&nb[1], pc, code),
                            indicator(&nb[2], pc, code),
                            indicator(&nb[3], pc, code),
                        );
                        let adopt = if min_pair == 3 { hi | (mid & low) } else { hi };
                        adopt_code(code, adopt, &mut changed);
                    }
                }
            }
            Decision::Activation {
                code: Some(active),
                threshold,
            } => {
                let code = active as usize;
                let (hi, mid, low) = count4(
                    indicator(&nb[0], pc, code),
                    indicator(&nb[1], pc, code),
                    indicator(&nb[2], pc, code),
                    indicator(&nb[3], pc, code),
                );
                let reached = match threshold {
                    0 => !0u64,
                    1 => hi | mid | low,
                    2 => hi | mid,
                    3 => hi | (mid & low),
                    4 => hi,
                    _ => 0,
                };
                adopt_code(code, reached, &mut changed);
            }
            // Activation colour absent with a positive threshold: inert.
            Decision::Activation { code: None, .. } => {}
        }

        if let Some(locked) = self.locked_code {
            changed &= !indicator(&own, pc, locked as usize);
        }
        if changed == 0 {
            return None;
        }
        let mut new = [0u64; MAX_PLANES];
        for p in 0..pc {
            new[p] = (own[p] & !changed) | (adopted[p] & changed);
        }
        Some(Patch {
            word: w,
            changed,
            old: own,
            new,
        })
    }

    /// The exact per-vertex path for boundary words, the partial tail
    /// word and non-torus structure: counts neighbour codes straight off
    /// the CSR, at any degree.
    fn eval_slow(&self, adjacency: &Adjacency, w: u32) -> Option<Patch> {
        let wi = w as usize;
        let start = wi * 64;
        let end = (start + 64).min(self.len);
        let mut changed = 0u64;
        let mut old = [0u64; MAX_PLANES];
        for (p, plane) in self.planes.iter().enumerate() {
            old[p] = plane[wi];
        }
        let mut new = old;
        for v in start..end {
            let own = self.code_of(v);
            let mut counts = [0u32; MAX_PALETTE];
            for &u in adjacency.neighbors_raw(v) {
                counts[self.code_of(u as usize) as usize] += 1;
            }
            let next = self.decide_one(own, &counts);
            if next != own {
                let bit = 1u64 << (v - start);
                changed |= bit;
                for (p, slot) in new.iter_mut().enumerate().take(self.plane_count) {
                    if (next >> p) & 1 == 1 {
                        *slot |= bit;
                    } else {
                        *slot &= !bit;
                    }
                }
            }
        }
        (changed != 0).then_some(Patch {
            word: w,
            changed,
            old,
            new,
        })
    }

    /// The compiled rule on one vertex's per-code neighbour counts —
    /// the reference [`ColorCountRule::next_color`] in code space.
    fn decide_one(&self, own: u8, counts: &[u32; MAX_PALETTE]) -> u8 {
        if self.locked_code == Some(own) {
            return own;
        }
        match self.decision {
            Decision::Plurality { min_pair } => {
                let mut best: Option<(u8, u32)> = None;
                let mut tied = false;
                for (code, &n) in counts.iter().enumerate().take(self.palette.len()) {
                    if n == 0 {
                        continue;
                    }
                    match best {
                        Some((_, b)) if n > b => {
                            best = Some((code as u8, n));
                            tied = false;
                        }
                        Some((_, b)) if n == b => tied = true,
                        None => best = Some((code as u8, n)),
                        _ => {}
                    }
                }
                match best {
                    Some((code, n)) if !tied && n >= min_pair => code,
                    _ => own,
                }
            }
            Decision::Activation {
                code: Some(active),
                threshold,
            } => {
                if own == active || counts[active as usize] < threshold {
                    own
                } else {
                    active
                }
            }
            Decision::Activation { code: None, .. } => own,
        }
    }

    /// The full tiled sweep over one band's word range, accumulating
    /// patches and their census/flip summary band-locally.
    ///
    /// Tiling applies when the range covers whole torus rows (band
    /// alignment guarantees it on tiled grids); otherwise the range
    /// streams in linear word order.
    fn eval_dense_range(
        &self,
        adjacency: &Adjacency,
        start_w: usize,
        end_w: usize,
        out: &mut Vec<Patch>,
        delta: &mut BandDelta,
    ) {
        let pc = self.plane_count;
        let k = self.palette.len();
        match self.tile_geometry {
            Some((_, words_per_row))
                if start_w.is_multiple_of(words_per_row) && end_w.is_multiple_of(words_per_row) =>
            {
                let row0 = start_w / words_per_row;
                let row1 = end_w / words_per_row;
                for tile_row in (row0..row1).step_by(TILE_ROWS) {
                    for tile_col in (0..words_per_row).step_by(TILE_WORD_COLS) {
                        for r in tile_row..(tile_row + TILE_ROWS).min(row1) {
                            for wc in tile_col..(tile_col + TILE_WORD_COLS).min(words_per_row) {
                                let w = (r * words_per_row + wc) as u32;
                                if let Some(p) = self.eval_word(adjacency, w) {
                                    delta.account(&p, pc, k);
                                    out.push(p);
                                }
                            }
                        }
                    }
                }
            }
            _ => {
                for w in start_w..end_w {
                    if let Some(p) = self.eval_word(adjacency, w as u32) {
                        delta.account(&p, pc, k);
                        out.push(p);
                    }
                }
            }
        }
    }

    /// The worklist path over one band's candidate bucket.
    fn eval_candidates(
        &self,
        adjacency: &Adjacency,
        cands: &[u32],
        out: &mut Vec<Patch>,
        delta: &mut BandDelta,
    ) {
        let pc = self.plane_count;
        let k = self.palette.len();
        for &w in cands {
            if let Some(p) = self.eval_word(adjacency, w) {
                delta.account(&p, pc, k);
                out.push(p);
            }
        }
    }

    /// Executes one synchronous round and returns the number of changed
    /// vertices.
    ///
    /// The first round after construction evaluates every word; later
    /// rounds evaluate only the dirty words (words holding last round's
    /// flips or their neighbours).  Evaluation is partitioned into
    /// tile-aligned row bands (one worker each, see [`crate::parallel`])
    /// and each band independently chooses dense or sparse execution: a
    /// band whose candidate bucket covers ≳62.5 % of its words re-runs
    /// the full tiled sweep instead of chasing the worklist, which is
    /// exact because a word absent from the worklist cannot change (its
    /// evaluation is a no-op), so the dense superset yields the identical
    /// patch set.  Changes are available through [`PlaneLane::flips`]
    /// until the next step.
    pub fn step(&mut self, adjacency: &Adjacency) -> usize {
        assert_eq!(
            adjacency.node_count(),
            self.len,
            "adjacency does not match the lane"
        );
        self.ensure_plan();
        self.flipped = 0;
        let full = self.worklist.is_full_round();
        let bands = self.band_plan.len();

        // Bucket the candidate words by owning band (bands are contiguous
        // and start at 0, so a binary search over starts places each).
        let mut band_cands = std::mem::take(&mut self.band_cands);
        for bucket in &mut band_cands {
            bucket.clear();
        }
        if !full {
            if bands == 1 {
                band_cands[0].extend_from_slice(self.worklist.candidates());
            } else {
                for &w in self.worklist.candidates() {
                    let band = self
                        .band_plan
                        .partition_point(|&(start, _)| start <= w as usize)
                        - 1;
                    band_cands[band].push(w);
                }
            }
        }

        // The hybrid dense/sparse crossover, per band: the worklist path
        // costs roughly a per-candidate dispatch that the tiled sweep
        // amortises away, so once a band's bucket passes ~5/8 of its
        // words the full sweep is cheaper (calibrated on the BENCH_6
        // scatter workloads, where near-full buckets made sparse k=8
        // rounds pay the 3-plane gather tax word by word).
        let dense: Vec<bool> = self
            .band_plan
            .iter()
            .enumerate()
            .map(|(b, &(start, end))| full || band_cands[b].len() * 8 >= (end - start) * 5)
            .collect();

        // Evaluate all bands against the frozen pre-round planes; each
        // worker owns one patch buffer and returns its census/flip
        // summary.  `run_bands` is the barrier that publishes the round.
        let mut band_patches = std::mem::take(&mut self.band_patches);
        for buffer in &mut band_patches {
            buffer.clear();
        }
        let lane = &*self;
        let deltas = run_bands(
            &lane.band_plan,
            &mut band_patches,
            |band, start, end, out| {
                let mut delta = BandDelta::default();
                if dense[band] {
                    lane.eval_dense_range(adjacency, start, end, out, &mut delta);
                } else {
                    lane.eval_candidates(adjacency, &band_cands[band], out, &mut delta);
                }
                delta
            },
        );

        // Merge phase: the workers already counted flips and census
        // movement, so the sequential section only writes the new plane
        // words and marks the worklist — order across bands is
        // irrelevant (each word has at most one patch).
        for delta in &deltas {
            self.flipped += delta.flips;
            for (slot, &moved) in self.census.iter_mut().zip(&delta.census) {
                *slot = (*slot as i64 + moved) as usize;
            }
        }
        for patch in band_patches.iter().flatten() {
            let wi = patch.word as usize;
            for (p, plane) in self.planes.iter_mut().enumerate() {
                plane[wi] = patch.new[p];
            }
        }

        self.last_dense_bands = 0;
        self.last_sparse_bands = 0;
        let mut words_evaluated = 0u64;
        for (b, &(start, end)) in self.band_plan.iter().enumerate() {
            if dense[b] {
                self.last_dense_bands += 1;
                words_evaluated += (end - start) as u64;
            } else {
                self.last_sparse_bands += 1;
                words_evaluated += band_cands[b].len() as u64;
            }
        }
        self.last_cells_evaluated = words_evaluated * 64;
        self.band_patches = band_patches;
        self.band_cands = band_cands;

        self.worklist.begin_next();
        if !self.worklist.always_full() {
            // Word-granular propagation: a changed word dirties itself and
            // the handful of words holding neighbours of its vertices
            // (a safe superset of the per-flip marks, with no CSR walk).
            for patch in self.band_patches.iter().flatten() {
                let w = patch.word;
                self.worklist.mark(w);
                let from = self.mark_offsets[w as usize] as usize;
                let to = self.mark_offsets[w as usize + 1] as usize;
                for &u in &self.mark_words[from..to] {
                    self.worklist.mark(u);
                }
            }
        }
        self.worklist.finish_round();
        self.flipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctori_topology::{Torus, TorusKind};

    fn c(i: u16) -> Color {
        Color::new(i)
    }

    /// A deterministic pseudo-random colouring over `palette` colours.
    fn scatter_colors(n: usize, palette: u16, seed: u64) -> Vec<Color> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                // xorshift64
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                c(1 + (x % u64::from(palette)) as u16)
            })
            .collect()
    }

    /// Reference: one synchronous full-sweep round through the compiled
    /// rule's scalar evaluator.
    fn reference_round(
        adjacency: &Adjacency,
        rule: &ColorCountRule,
        colors: &[Color],
    ) -> Vec<Color> {
        (0..colors.len())
            .map(|v| {
                let counts: Vec<(Color, u32)> = {
                    let mut acc: Vec<(Color, u32)> = Vec::new();
                    for &u in adjacency.neighbors_raw(v) {
                        let cu = colors[u as usize];
                        match acc.iter_mut().find(|(cc, _)| *cc == cu) {
                            Some((_, n)) => *n += 1,
                            None => acc.push((cu, 1)),
                        }
                    }
                    acc
                };
                rule.next_color(colors[v], &counts)
            })
            .collect()
    }

    fn check_lane_matches_reference(
        kind: TorusKind,
        m: usize,
        n: usize,
        palette: u16,
        rule: ColorCountRule,
    ) {
        let torus = Torus::new(kind, m, n);
        let adjacency = Adjacency::from_torus(&torus);
        let mut colors = scatter_colors(m * n, palette, 0x5EED ^ (m * 31 + n) as u64);
        let mut lane =
            PlaneLane::from_colors(&adjacency, n, &colors, &rule).expect("palette fits the lane");
        for round in 0..12 {
            let expected = reference_round(&adjacency, &rule, &colors);
            let flips = lane.step(&adjacency);
            let changed = expected.iter().zip(&colors).filter(|(a, b)| a != b).count();
            assert_eq!(flips, changed, "flip count diverges at round {round}");
            assert_eq!(lane.snapshot(), expected, "state diverges at round {round}");
            colors = expected;
        }
    }

    #[test]
    fn plurality_matches_scalar_reference_on_all_kinds() {
        for kind in TorusKind::ALL {
            // 65 columns: every word contains a wrap column, so the whole
            // torus takes the exact per-vertex path.
            check_lane_matches_reference(kind, 8, 65, 5, ColorCountRule::plurality(2));
            // 256 columns: interior rows hold genuinely fast words, so the
            // vectorised kernel and the boundary path are checked against
            // each other through the shared reference.
            check_lane_matches_reference(kind, 8, 256, 5, ColorCountRule::plurality(2));
            check_lane_matches_reference(kind, 6, 9, 3, ColorCountRule::plurality(2));
        }
    }

    #[test]
    fn activation_matches_scalar_reference() {
        for kind in TorusKind::ALL {
            check_lane_matches_reference(kind, 7, 64, 4, ColorCountRule::activation(c(1), 2));
        }
    }

    #[test]
    fn locked_colors_freeze_their_holders() {
        check_lane_matches_reference(
            TorusKind::ToroidalMesh,
            6,
            66,
            4,
            ColorCountRule::plurality(2).with_locked(c(2)),
        );
    }

    #[test]
    fn higher_min_pair_forms_match() {
        for min_pair in [3, 4, 5] {
            check_lane_matches_reference(
                TorusKind::TorusCordalis,
                5,
                70,
                6,
                ColorCountRule::plurality(min_pair),
            );
        }
    }

    #[test]
    fn census_and_histogram_stay_consistent() {
        let torus = Torus::new(TorusKind::ToroidalMesh, 8, 64);
        let adjacency = Adjacency::from_torus(&torus);
        let colors = scatter_colors(8 * 64, 7, 99);
        let rule = ColorCountRule::plurality(2);
        let mut lane = PlaneLane::from_colors(&adjacency, 64, &colors, &rule).unwrap();
        for _ in 0..8 {
            lane.step(&adjacency);
            let snapshot = lane.snapshot();
            for &color in lane.palette() {
                let expected = snapshot.iter().filter(|&&x| x == color).count();
                assert_eq!(lane.count_of(color), expected);
            }
            let histogram = lane.histogram();
            assert!(histogram.windows(2).all(|w| w[0].0 < w[1].0));
            assert_eq!(histogram.iter().map(|&(_, n)| n).sum::<usize>(), lane.len());
        }
        assert_eq!(lane.count_of(c(200)), 0);
    }

    #[test]
    fn frontier_and_full_sweep_agree() {
        let torus = Torus::new(TorusKind::TorusSerpentinus, 9, 67);
        let adjacency = Adjacency::from_torus(&torus);
        let colors = scatter_colors(9 * 67, 4, 7);
        let rule = ColorCountRule::plurality(2);
        let mut frontier = PlaneLane::from_colors(&adjacency, 67, &colors, &rule).unwrap();
        let mut full = PlaneLane::from_colors(&adjacency, 67, &colors, &rule).unwrap();
        full.set_always_full();
        for round in 0..20 {
            let a = frontier.step(&adjacency);
            let b = full.step(&adjacency);
            assert_eq!(a, b, "flip counts diverge at round {round}");
            assert_eq!(
                frontier.snapshot(),
                full.snapshot(),
                "states diverge at round {round}"
            );
        }
    }

    #[test]
    fn band_parallel_stepping_is_bit_identical() {
        // 128 columns → 2 words per row, 12 rows: with threads=3 the
        // tile-row alignment still splits the grid, and the frontier
        // worklist shrinks over time so later rounds cross the hybrid
        // dense→sparse threshold per band.
        for kind in TorusKind::ALL {
            let torus = Torus::new(kind, 12, 128);
            let adjacency = Adjacency::from_torus(&torus);
            let colors = scatter_colors(12 * 128, 5, 0xBAD5EED);
            let rule = ColorCountRule::plurality(2);
            let mut seq = PlaneLane::from_colors(&adjacency, 128, &colors, &rule).unwrap();
            let mut par = PlaneLane::from_colors(&adjacency, 128, &colors, &rule).unwrap();
            par.set_threads(3);
            for round in 0..16 {
                let a = seq.step(&adjacency);
                let b = par.step(&adjacency);
                assert_eq!(a, b, "{kind:?}: flip counts diverge at round {round}");
                assert_eq!(
                    seq.snapshot(),
                    par.snapshot(),
                    "{kind:?}: states diverge at round {round}"
                );
                let mut sf: Vec<_> = seq.flips().collect();
                let mut pf: Vec<_> = par.flips().collect();
                sf.sort_unstable();
                pf.sort_unstable();
                assert_eq!(sf, pf, "{kind:?}: flip sets diverge at round {round}");
                assert_eq!(seq.histogram(), par.histogram());
            }
        }
    }

    #[test]
    fn hybrid_dense_rounds_match_the_sparse_path() {
        // A quiescing pattern: one active block in a monochrome sea.  The
        // first frontier rounds are near-full (dense crossover fires),
        // later rounds go sparse; an always-full lane pins the reference.
        let torus = Torus::new(TorusKind::ToroidalMesh, 16, 64);
        let adjacency = Adjacency::from_torus(&torus);
        let mut colors = vec![c(1); 16 * 64];
        for (i, slot) in colors.iter_mut().enumerate().take(6 * 64).skip(4 * 64) {
            if i % 3 == 0 {
                *slot = c(2);
            }
        }
        let rule = ColorCountRule::plurality(2);
        let mut hybrid = PlaneLane::from_colors(&adjacency, 64, &colors, &rule).unwrap();
        hybrid.set_threads(2);
        let mut full = PlaneLane::from_colors(&adjacency, 64, &colors, &rule).unwrap();
        full.set_always_full();
        let mut saw_dense = false;
        let mut saw_sparse = false;
        for round in 0..24 {
            let a = hybrid.step(&adjacency);
            let b = full.step(&adjacency);
            assert_eq!(a, b, "flip counts diverge at round {round}");
            assert_eq!(hybrid.snapshot(), full.snapshot());
            let (dense, sparse, cells) = hybrid.last_step_profile();
            assert_eq!((dense + sparse) as usize, hybrid.band_plan.len());
            assert!(cells <= (hybrid.words as u64) * 64);
            saw_dense |= dense > 0;
            saw_sparse |= sparse > 0;
        }
        assert!(saw_dense, "the dense crossover never fired");
        assert!(saw_sparse, "the sparse path never ran");
    }

    #[test]
    fn oversized_palettes_are_rejected() {
        let torus = Torus::new(TorusKind::ToroidalMesh, 5, 5);
        let adjacency = Adjacency::from_torus(&torus);
        let colors: Vec<Color> = (0..25).map(|v| c(1 + (v % 17) as u16)).collect();
        assert!(
            PlaneLane::from_colors(&adjacency, 5, &colors, &ColorCountRule::plurality(2)).is_none()
        );
    }

    #[test]
    fn absent_zero_threshold_activation_is_rejected() {
        let torus = Torus::new(TorusKind::ToroidalMesh, 4, 4);
        let adjacency = Adjacency::from_torus(&torus);
        let colors = vec![c(1); 16];
        // Active colour 9 is absent; threshold 0 would recolour everything
        // to it — outside the palette, so the lane must refuse.
        assert!(PlaneLane::from_colors(
            &adjacency,
            4,
            &colors,
            &ColorCountRule::activation(c(9), 0)
        )
        .is_none());
        // With a positive threshold the lane is simply inert.
        let mut lane =
            PlaneLane::from_colors(&adjacency, 4, &colors, &ColorCountRule::activation(c(9), 1))
                .unwrap();
        assert_eq!(lane.step(&adjacency), 0);
        assert_eq!(lane.monochromatic(), Some(c(1)));
    }

    #[test]
    fn interior_words_are_classified_on_all_kinds() {
        // On a 8x256 torus rows are four words wide and rows 1..=6 avoid
        // the vertical wrap.  On the toroidal mesh the row wrap breaks the
        // linear pattern at columns 0 and 255, so the two middle words of
        // each interior row are fast and the two edge words take the
        // vector kernel with one patched lane each; on the chordal tori
        // the wrap of (i, 0) is literally vertex v-1 (and of (i, n-1)
        // vertex v+1), so whole interior rows are fast with no patching.
        for (kind, expected_fast, expected_wrap) in [
            (TorusKind::ToroidalMesh, 6 * 2, 6 * 2),
            (TorusKind::TorusCordalis, 6 * 4, 0),
            (TorusKind::TorusSerpentinus, 6 * 4, 0),
        ] {
            let torus = Torus::new(kind, 8, 256);
            let adjacency = Adjacency::from_torus(&torus);
            let colors = scatter_colors(8 * 256, 3, 3);
            let lane =
                PlaneLane::from_colors(&adjacency, 256, &colors, &ColorCountRule::plurality(2))
                    .unwrap();
            let fast_words = lane.class.iter().filter(|&&c| c == WordClass::Fast).count();
            let wrap_words = lane
                .class
                .iter()
                .filter(|&&c| matches!(c, WordClass::Wrap { .. }))
                .count();
            assert_eq!(fast_words, expected_fast, "{kind:?}: fast-word census");
            assert_eq!(wrap_words, expected_wrap, "{kind:?}: wrap-word census");
            // Row 0 and the last row always touch a vertical wrap.
            assert_eq!(lane.class[0], WordClass::Slow);
            assert_eq!(lane.class[lane.words - 1], WordClass::Slow);
        }
    }

    #[test]
    fn mesh_wrap_words_patch_the_wrap_columns() {
        // First word of an interior toroidal-mesh row: lane 0 is column 0,
        // whose west neighbour wraps to (row, n-1); the last word's lane
        // 63 is column n-1, whose east neighbour wraps to (row, 0).
        let torus = Torus::new(TorusKind::ToroidalMesh, 4, 128);
        let adjacency = Adjacency::from_torus(&torus);
        let colors = scatter_colors(4 * 128, 3, 11);
        let lane = PlaneLane::from_colors(&adjacency, 128, &colors, &ColorCountRule::plurality(2))
            .unwrap();
        // Row 1 spans words 2 and 3.
        assert_eq!(
            lane.class[2],
            WordClass::Wrap {
                west: Some((0, 128 + 127)),
                east: None,
            }
        );
        assert_eq!(
            lane.class[3],
            WordClass::Wrap {
                west: None,
                east: Some((63, 128)),
            }
        );
    }
}
