//! Property tests for the telemetry layer.
//!
//! The two algebraic contracts everything downstream leans on:
//!
//! * log2 **bucketing is monotone** — a larger observation never lands
//!   in an earlier bucket, so cumulative counts (and therefore the
//!   quantile estimates) are well defined;
//! * **snapshot merging is associative and commutative** — shards,
//!   layers and processes can fold their expositions in any order and
//!   agree on the result.

use ctori_engine::telemetry::{Histogram, MetricValue};
use ctori_engine::MetricsSnapshot;
use proptest::prelude::*;

/// Six names with the kind fixed per name, the way a real schema pins
/// it (merge commutes only when kinds agree per key).
const NAMES: [&str; 6] = [
    "alpha.count",
    "beta.count",
    "alpha.level",
    "beta.level",
    "alpha.lat-us",
    "beta.lat-us",
];

/// The bucket one observation of `value` lands in.
fn bucket_of(value: u64) -> usize {
    let h = Histogram::new();
    h.record(value);
    let snapshot = h.snapshot();
    snapshot
        .buckets
        .iter()
        .position(|&n| n == 1)
        .expect("exactly one bucket holds the observation")
}

/// Observation batches.  Values stay within `u32` so counter additions
/// and histogram sums cannot overflow across three-way merges.
fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..=u32::MAX as u64, 0..64)
}

/// Random well-formed snapshots over the fixed six-name schema.
fn snapshots() -> impl Strategy<Value = MetricsSnapshot> {
    proptest::collection::vec((0usize..6, 0u64..=u32::MAX as u64, values()), 0..6).prop_map(
        |entries| {
            let mut snap = MetricsSnapshot::new();
            for (slot, n, vs) in entries {
                let value = match slot / 2 {
                    0 => MetricValue::Counter(n),
                    1 => MetricValue::Gauge(n),
                    _ => {
                        let h = Histogram::new();
                        for v in vs {
                            h.record(v);
                        }
                        MetricValue::Histogram(Box::new(h.snapshot()))
                    }
                };
                snap.insert(NAMES[slot], value);
            }
            snap
        },
    )
}

proptest! {
    #[test]
    fn bucket_index_is_monotone_in_the_value(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_of(lo) <= bucket_of(hi), "{lo} -> {}, {hi} -> {}", bucket_of(lo), bucket_of(hi));
    }

    #[test]
    fn bucket_counts_account_for_every_observation(vs in values()) {
        let h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        let snapshot = h.snapshot();
        prop_assert_eq!(snapshot.buckets.iter().sum::<u64>(), vs.len() as u64);
        prop_assert_eq!(snapshot.count, vs.len() as u64);
        prop_assert_eq!(snapshot.sum, vs.iter().sum::<u64>());
        prop_assert_eq!(snapshot.max, vs.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn quantiles_are_monotone_in_q(vs in values(), q1 in 0u32..=1000, q2 in 0u32..=1000) {
        let h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        let snapshot = h.snapshot();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(
            snapshot.quantile(lo as f64 / 1000.0) <= snapshot.quantile(hi as f64 / 1000.0)
        );
    }

    #[test]
    fn snapshot_merge_is_commutative(a in snapshots(), b in snapshots()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn snapshot_merge_is_associative(a in snapshots(), b in snapshots(), c in snapshots()) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn exposition_text_round_trips(snap in snapshots()) {
        let text = snap.to_text();
        let reparsed = MetricsSnapshot::from_text(&text).expect("own exposition parses");
        prop_assert_eq!(reparsed, snap, "\n{}", text);
    }
}
