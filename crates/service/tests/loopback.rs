//! End-to-end service tests over real loopback TCP.
//!
//! Every test binds its own server on an ephemeral port (`127.0.0.1:0`),
//! so tests run in parallel without port coordination and CI never needs
//! the network beyond loopback.
//!
//! The headline contract (the PR's acceptance criterion) is
//! [`duplicate_submit_is_served_from_cache`]: a `SUBMIT` of a PR-3 spec
//! text returns a parseable outcome, and a second identical submit is
//! served from the content-addressed cache — observed *through the
//! protocol* via the `STATS` hit counter and the `STATUS … cached`
//! marker, with byte-identical outcomes.

use ctori_coloring::Color;
use ctori_engine::{
    MetricsSnapshot, RuleSpec, RunEvent, RunSpec, Runner, SeedSpec, SpanKind, TopologySpec,
};
use ctori_service::{
    JobState, Priority, SchedulerConfig, Server, ServiceClient, ServiceConfig, ServiceError,
    ServiceStats,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread::JoinHandle;
use std::time::Duration;

type ServerHandle = JoinHandle<std::io::Result<ServiceStats>>;

fn start_server(scheduler: SchedulerConfig) -> (String, ServerHandle) {
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        scheduler,
    })
    .expect("bind ephemeral loopback port");
    let addr = server.local_addr().expect("local addr").to_string();
    // Deliberate spawn: the test joins the handle after SHUTDOWN.
    #[allow(clippy::disallowed_methods)]
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn default_server() -> (String, ServerHandle) {
    start_server(SchedulerConfig {
        workers: 2,
        queue_capacity: 256,
        cache_capacity: 64,
        ..SchedulerConfig::default()
    })
}

fn spec(size: usize, node: usize) -> RunSpec {
    RunSpec::new(
        TopologySpec::toroidal_mesh(size, size),
        RuleSpec::parse("smp").unwrap(),
        SeedSpec::nodes(Color::new(1), Color::new(2), [node]),
    )
}

#[test]
fn duplicate_submit_is_served_from_cache() {
    let (addr, server) = default_server();
    let mut client = ServiceClient::connect(addr.as_str()).unwrap();

    // SUBMIT a spec *text* (the PR-3 wire form) and get a parseable
    // outcome back.
    let spec = spec(12, 5);
    let first_id = client.submit(&spec).unwrap();
    let first = client.result(first_id).unwrap();
    assert_eq!(first.rule, "smp");
    assert_eq!(first.final_coloring.rows(), 12);

    // The identical spec again: byte-identical memoized outcome.
    let second_id = client.submit(&spec).unwrap();
    let second = client.result(second_id).unwrap();
    assert_eq!(second, first);
    assert!(client.status(second_id).unwrap().from_cache);
    assert!(!client.status(first_id).unwrap().from_cache);

    // The cache hit is observable through STATS.
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache.hits, 1, "exactly the duplicate hit");
    assert_eq!(stats.cache.misses, 1, "exactly the first execution missed");
    assert_eq!(stats.done, 2);
    assert_eq!(stats.failed, 0);

    // The outcome matches an in-process execution of the same spec.
    assert_eq!(first, Runner::with_threads(1).execute(&spec));

    client.shutdown().unwrap();
    let final_stats = server.join().unwrap().unwrap();
    assert_eq!(final_stats.queued, 0);
}

#[test]
fn sweep_returns_ordered_ids_and_correct_outcomes() {
    let (addr, server) = default_server();
    let mut client = ServiceClient::connect(addr.as_str()).unwrap();

    let grid: Vec<RunSpec> = (0..5).map(|n| spec(8, n)).collect();
    let ids = client.sweep(&grid).unwrap();
    assert_eq!(ids.len(), grid.len());
    for (s, id) in grid.iter().zip(&ids) {
        let outcome = client.result(*id).unwrap();
        assert_eq!(outcome, Runner::with_threads(1).execute(s), "job {id}");
    }
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn two_clients_share_one_cache() {
    let (addr, server) = default_server();
    let mut alice = ServiceClient::connect(addr.as_str()).unwrap();
    let mut bob = ServiceClient::connect(addr.as_str()).unwrap();

    let shared = spec(10, 7);
    let a = alice.submit(&shared).unwrap();
    let first = alice.result(a).unwrap();
    let b = bob.submit(&shared).unwrap();
    let second = bob.result(b).unwrap();
    assert_eq!(first, second, "cross-client memoization");
    assert!(bob.status(b).unwrap().from_cache);

    bob.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn wire_errors_carry_codes() {
    let (addr, server) = default_server();
    let mut client = ServiceClient::connect(addr.as_str()).unwrap();

    // Unknown job.
    let missing = "999".parse().unwrap();
    match client.status(missing) {
        Err(ServiceError::Remote { code, .. }) => assert_eq!(code, "unknown-job"),
        other => panic!("expected unknown-job, got {other:?}"),
    }

    // A structurally invalid spec (1×1 torus) is rejected at the door,
    // not executed.
    let mut invalid =
        RunSpec::from_text("topology: toroidal-mesh 4x4\nrule: smp\nseed: uniform 1\n").unwrap();
    invalid.topology = TopologySpec::toroidal_mesh(1, 1);
    match client.submit(&invalid) {
        Err(ServiceError::Remote { code, .. }) => assert_eq!(code, "bad-spec"),
        other => panic!("expected bad-spec, got {other:?}"),
    }

    // Terminal jobs are not cancellable.
    let id = client.submit(&spec(6, 1)).unwrap();
    client.result(id).unwrap();
    match client.cancel(id) {
        Err(ServiceError::Remote { code, .. }) => assert_eq!(code, "not-cancellable"),
        other => panic!("expected not-cancellable, got {other:?}"),
    }

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn try_result_polls_until_done() {
    let (addr, server) = default_server();
    let mut client = ServiceClient::connect(addr.as_str()).unwrap();
    let id = client.submit(&spec(16, 3)).unwrap();
    // Poll (an impatient client): None while pending, Some when done.
    let outcome = loop {
        if let Some(outcome) = client.try_result(id).unwrap() {
            break outcome;
        }
        std::thread::yield_now();
    };
    assert_eq!(client.status(id).unwrap().state, JobState::Done);
    assert_eq!(outcome, Runner::with_threads(1).execute(&spec(16, 3)));
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn watch_streams_monotone_rounds_ending_terminal() {
    let (addr, server) = default_server();
    let mut client = ServiceClient::connect(addr.as_str()).unwrap();

    // A long-running job: threshold-1 growth floods a 48x48 torus in ~70
    // rounds, so WATCH polls genuinely overlap the in-flight run.
    let growth = RunSpec::new(
        TopologySpec::toroidal_mesh(48, 48),
        RuleSpec::parse("threshold(2,1)").unwrap(),
        SeedSpec::nodes(Color::new(2), Color::new(1), [0usize]),
    );
    let id = client.submit(&growth).unwrap();

    // The WATCH polling loop a streaming client runs: everything first,
    // then only progress beyond the last seen round.
    let mut since = None;
    let mut rounds = Vec::new();
    let mut started = 0usize;
    let terminal = loop {
        let events = client.watch(id, since).unwrap();
        // A first poll may land before any round completed and return
        // only the started event; advance the cursor past "everything"
        // so that event is not replayed (RemoteHandle does the same).
        if since.is_none() && events.iter().any(|e| !e.is_terminal()) {
            since = Some(0);
        }
        let mut done = None;
        for event in &events {
            match event {
                RunEvent::Started { nodes } => {
                    assert_eq!(*nodes, 48 * 48);
                    started += 1;
                }
                RunEvent::Progress {
                    round, histogram, ..
                } => {
                    rounds.push(*round);
                    since = Some(*round);
                    assert_eq!(histogram.total(), 48 * 48, "histogram covers the torus");
                }
                terminal => done = Some(terminal.clone()),
            }
        }
        if let Some(terminal) = done {
            break terminal;
        }
        std::thread::yield_now();
    };

    // The acceptance contract: strictly increasing rounds, a terminal
    // close, and the started event exactly once (the since-round cursor
    // never replays it).
    assert!(rounds.len() >= 2, "saw rounds {rounds:?}");
    assert!(
        rounds.windows(2).all(|w| w[0] < w[1]),
        "rounds must be strictly increasing: {rounds:?}"
    );
    assert!(started <= 1, "started must not be replayed");
    match terminal {
        RunEvent::Finished { rounds: total, .. } => {
            assert_eq!(total, *rounds.last().unwrap(), "auto stride samples all");
        }
        other => panic!("expected Finished, got {other:?}"),
    }

    // After termination a fresh watcher still gets the full stream, and
    // an unknown job is an unknown-job error.
    let replay = client.watch(id, None).unwrap();
    assert!(matches!(replay.first(), Some(RunEvent::Started { .. })));
    assert!(matches!(replay.last(), Some(RunEvent::Finished { .. })));
    match client.watch("999".parse().unwrap(), None) {
        Err(ServiceError::Remote { code, .. }) => assert_eq!(code, "unknown-job"),
        other => panic!("expected unknown-job, got {other:?}"),
    }

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn read_timeout_surfaces_instead_of_blocking_forever() {
    let (addr, server) = start_server(SchedulerConfig {
        workers: 1,
        queue_capacity: 64,
        cache_capacity: 0,
        ..SchedulerConfig::default()
    });
    let mut client = ServiceClient::connect(addr.as_str()).unwrap();
    // Head occupies the single worker; the tail's RESULT(wait) would
    // block far beyond the client's read deadline.
    let head = client.submit(&spec(32, 0)).unwrap();
    let tail = client.submit(&spec(32, 1)).unwrap();
    client
        .set_read_timeout(Some(Duration::from_millis(30)))
        .unwrap();
    match client.result(tail) {
        Err(ServiceError::TimedOut) => {}
        Ok(_) => {} // absurdly fast machine; still correct
        other => panic!("expected TimedOut, got {other:?}"),
    }
    // A timed-out connection may hold a half-read reply: reconnect, as
    // the docs instruct, and finish the work on a fresh client.
    let mut fresh = ServiceClient::connect(addr.as_str()).unwrap();
    fresh.result(head).unwrap();
    fresh.result(tail).unwrap();
    // connect_timeout also works against a live server.
    let probe = ServiceClient::connect_timeout(addr.as_str(), Duration::from_secs(5)).unwrap();
    probe.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn raw_socket_gets_err_for_garbage() {
    let (addr, server) = default_server();
    let mut stream = TcpStream::connect(addr.as_str()).unwrap();
    stream.write_all(b"TELEPORT 9\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR bad-request"), "{line}");
    // The connection survives a bad request.
    stream.write_all(b"STATS\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("OK stats"), "{line}");
    // Drain the stats block, then shut the server down politely.
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line.trim_end() == "." {
            break;
        }
    }
    stream.write_all(b"SHUTDOWN\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "OK bye");
    server.join().unwrap().unwrap();
}

#[test]
fn unterminated_oversized_line_is_bounded() {
    let (addr, server) = default_server();
    let mut stream = TcpStream::connect(addr.as_str()).unwrap();
    // Stream past the 1 MiB line bound without ever sending `\n`.  The
    // server must stop buffering, reply `ERR bad-request` and close the
    // connection instead of growing memory without limit.
    let chunk = vec![b'a'; 64 * 1024];
    let mut sent = 0usize;
    while sent <= (1 << 20) + chunk.len() {
        // The server may already have closed on us mid-write.
        if stream.write_all(&chunk).is_err() {
            break;
        }
        sent += chunk.len();
    }
    // The server drains our leftover bytes before closing, so the reply
    // arrives intact (a clean FIN, not an abortive reset) and names the
    // bound that tripped.
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR bad-request"), "{line}");
    assert!(line.contains("line exceeds"), "{line}");
    // The server survives and keeps serving other clients.
    let mut client = ServiceClient::connect(addr.as_str()).unwrap();
    let id = client.submit(&spec(6, 2)).unwrap();
    client.result(id).unwrap();
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn invalid_utf8_line_gets_bad_request() {
    let (addr, server) = default_server();
    let mut stream = TcpStream::connect(addr.as_str()).unwrap();
    stream.write_all(b"STATS \xff\xfe\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR bad-request"), "{line}");
    assert!(line.contains("utf-8"), "{line}");
    // The connection is closed after the reply...
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0);
    // ...and the server keeps serving everyone else.
    let client = ServiceClient::connect(addr.as_str()).unwrap();
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn metrics_expose_wire_and_executor_instruments() {
    let (addr, server) = default_server();
    let mut client = ServiceClient::connect(addr.as_str()).unwrap();

    // Generate traffic: one executed job plus a STATS round trip.
    let id = client.submit(&spec(12, 4)).unwrap();
    client.result(id).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_submitted, 1);
    assert!(stats.queue_depth_hwm >= 1, "{stats:?}");

    // A raw socket feeding invalid UTF-8 trips the framing counter (and
    // its reply happens-before our next request is served).
    {
        let mut stream = TcpStream::connect(addr.as_str()).unwrap();
        stream.write_all(b"STATS \xff\xfe\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR bad-request"), "{line}");
    }

    let snapshot = client.metrics().unwrap();
    // Per-verb counters: this connection issued SUBMIT, RESULT, STATS
    // and the METRICS request itself (counted before dispatch, so the
    // exposition includes its own request).
    assert_eq!(snapshot.counter("server.requests.SUBMIT"), Some(1));
    assert_eq!(snapshot.counter("server.requests.RESULT"), Some(1));
    assert_eq!(snapshot.counter("server.requests.STATS"), Some(1));
    assert_eq!(snapshot.counter("server.requests.METRICS"), Some(1));
    // Wire-layer counters observed real bytes and connections.
    assert!(snapshot.counter("server.bytes.in").unwrap() > 0);
    assert!(snapshot.counter("server.bytes.out").unwrap() > 0);
    assert!(snapshot.counter("server.connections").unwrap() >= 2);
    assert!(snapshot.counter("server.framing-errors").unwrap() >= 1);
    // Executor instruments: the job's queue wait and run time landed in
    // the latency histograms.
    assert_eq!(snapshot.counter("exec.jobs.submitted"), Some(1));
    let run = snapshot.histogram("exec.job.run-us").unwrap();
    assert_eq!(run.count, 1);
    assert!(run.quantile(0.99) >= run.quantile(0.5));
    assert_eq!(snapshot.histogram("exec.queue.wait-us").unwrap().count, 1);
    // The exposition is the canonical text form: it reparses losslessly.
    let reparsed = MetricsSnapshot::from_text(&snapshot.to_text()).unwrap();
    assert_eq!(reparsed, snapshot);

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn trace_returns_a_monotone_span_ring_for_a_finished_job() {
    let (addr, server) = default_server();
    let mut client = ServiceClient::connect(addr.as_str()).unwrap();

    let id = client.submit(&spec(16, 2)).unwrap();
    client.result(id).unwrap();

    let trace = client.trace(id).unwrap();
    assert!(trace.is_monotone(), "{trace:?}");
    let kinds: Vec<SpanKind> = trace.spans().iter().map(|s| s.kind).collect();
    assert_eq!(
        &kinds[..4],
        [
            SpanKind::Submitted,
            SpanKind::Queued,
            SpanKind::Claimed,
            SpanKind::Running,
        ],
        "lifecycle prefix"
    );
    assert_eq!(trace.terminal().map(|s| s.kind), Some(SpanKind::Done));
    // Both durations derive from the ring.
    assert!(trace.queue_wait_nanos().is_some());
    assert!(trace.run_nanos().is_some());

    // An unknown job surfaces the usual wire error.
    match client.trace("999".parse().unwrap()) {
        Err(ServiceError::Remote { code, .. }) => assert_eq!(code, "unknown-job"),
        other => panic!("expected unknown-job, got {other:?}"),
    }

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_admitted_jobs() {
    let (addr, server) = start_server(SchedulerConfig {
        workers: 1,
        queue_capacity: 256,
        cache_capacity: 0,
        ..SchedulerConfig::default()
    });
    let mut client = ServiceClient::connect(addr.as_str()).unwrap();
    let ids: Vec<_> = (0..6)
        .map(|n| {
            client
                .submit_with_priority(&spec(16, n), Priority::Low)
                .unwrap()
        })
        .collect();
    client.shutdown().unwrap();
    let final_stats = server.join().unwrap().unwrap();
    assert_eq!(final_stats.queued, 0, "drain leaves nothing queued");
    assert_eq!(final_stats.running, 0);
    assert_eq!(final_stats.done, ids.len() as u64, "every admitted job ran");
}
