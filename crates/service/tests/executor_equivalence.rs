//! The acceptance property of the execution-API redesign: the **same
//! spec driven through `LocalExecutor` and `RemoteExecutor` yields equal
//! `RunOutcome`s** — so caller code is genuinely backend-agnostic, and
//! moving a workload from laptop to server cannot change a result.
//!
//! One embedded server (ephemeral loopback port) and one local pool are
//! shared across all proptest cases; every case generates a random small
//! scenario, submits it to both backends through the *same*
//! `&dyn Executor` code path, and compares the outcomes field by field —
//! plus against a plain blocking `Runner::execute` as the ground truth.

use ctori_coloring::Color;
use ctori_engine::spec::PatternSpec;
use ctori_engine::{
    EngineOptions, Executor, JobHandle, LaneSpec, LocalExecutor, LocalExecutorConfig, RuleSpec,
    RunOutcome, RunSpec, Runner, SeedSpec, SubmitOptions, TopologySpec,
};
use ctori_service::{RemoteExecutor, SchedulerConfig, Server, ServiceConfig};
use ctori_topology::TorusKind;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Both backends, shared across every proptest case (starting a server
/// per case would dominate the test's runtime).
struct Harness {
    local: LocalExecutor,
    remote: RemoteExecutor,
}

fn harness() -> &'static Harness {
    static HARNESS: OnceLock<Harness> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let server = Server::bind(ServiceConfig {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig {
                workers: 2,
                queue_capacity: 256,
                cache_capacity: 64,
                ..SchedulerConfig::default()
            },
        })
        .expect("bind ephemeral loopback port");
        let addr = server.local_addr().expect("local addr").to_string();
        // The server thread lives for the whole test process; the test
        // harness exits without a drain, which is fine for a test.
        #[allow(clippy::disallowed_methods)]
        std::thread::spawn(move || server.serve());
        Harness {
            local: LocalExecutor::start(LocalExecutorConfig {
                workers: 2,
                ..LocalExecutorConfig::default()
            }),
            remote: RemoteExecutor::connect(addr.as_str()).expect("connect"),
        }
    })
}

/// The backend-agnostic driver under test: submit through the trait,
/// wait through the handle.  Identical code runs against both backends.
fn drive(exec: &dyn Executor, spec: &RunSpec) -> RunOutcome {
    let mut handle: JobHandle = exec
        .submit(spec, SubmitOptions::default())
        .expect("submit must be admitted");
    (*handle.wait().expect("job must finish")).clone()
}

fn torus_kind() -> impl Strategy<Value = TorusKind> {
    prop_oneof![
        Just(TorusKind::ToroidalMesh),
        Just(TorusKind::TorusCordalis),
        Just(TorusKind::TorusSerpentinus),
    ]
}

fn rule_text() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("smp"),
        Just("prefer-black"),
        Just("prefer-current"),
        Just("strong-majority"),
        Just("threshold(2,1)"),
        Just("irreversible-smp(2)"),
    ]
}

fn seed_spec(m: usize, n: usize) -> impl Strategy<Value = SeedSpec> {
    let c = Color::new;
    let nodes = proptest::collection::vec(0..(m * n) as u32, 0..8).prop_map(|mut nodes| {
        nodes.sort_unstable();
        nodes.dedup();
        SeedSpec::Nodes {
            color: Color::BLACK,
            background: Color::WHITE,
            nodes,
        }
    });
    let pattern = prop_oneof![
        Just(SeedSpec::Pattern(PatternSpec::Checkerboard(c(1), c(2)))),
        Just(SeedSpec::uniform(c(2))),
    ];
    let density =
        (0u64..1_000_000, 0u32..=100).prop_map(move |(rng_seed, percent)| SeedSpec::Density {
            color: c(1),
            palette: 4,
            fraction: f64::from(percent) / 100.0,
            rng_seed,
        });
    prop_oneof![nodes, pattern, density]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn local_and_remote_backends_agree(
        kind in torus_kind(),
        m in 3usize..=7,
        n in 3usize..=7,
        rule in rule_text(),
        lane_full in any::<bool>(),
        track in any::<bool>(),
        seed in seed_spec(7, 7),
    ) {
        // Clamp node-list seeds to the actual grid.
        let seed = match seed {
            SeedSpec::Nodes { color, background, nodes } => SeedSpec::Nodes {
                color,
                background,
                nodes: nodes.into_iter().filter(|&v| (v as usize) < m * n).collect(),
            },
            other => other,
        };
        let mut options = if track {
            EngineOptions::for_dynamo(Color::BLACK)
        } else {
            EngineOptions::default()
        };
        if lane_full {
            options = options.with_lane(LaneSpec::FullSweep);
        }
        let spec = RunSpec::new(
            TopologySpec::torus(kind, m, n),
            RuleSpec::parse(rule).unwrap(),
            seed,
        )
        .with_options(options);

        let harness = harness();
        let local = drive(&harness.local, &spec);
        let remote = drive(&harness.remote, &spec);

        prop_assert_eq!(&local, &remote, "backends must agree\n{}", spec.to_text());

        // And both must equal the plain blocking path.
        let direct = Runner::with_threads(1).execute(&spec);
        prop_assert_eq!(&local, &direct, "executor must equal Runner::execute");
    }
}

/// `submit_sweep` is equally backend-agnostic: one batch through each
/// backend, outcomes equal pairwise and in order.
#[test]
fn sweeps_agree_across_backends() {
    let grid: Vec<RunSpec> = TorusKind::ALL
        .into_iter()
        .flat_map(|kind| {
            [0.25f64, 0.6].into_iter().map(move |fraction| {
                RunSpec::new(
                    TopologySpec::torus(kind, 6, 6),
                    RuleSpec::parse("smp").unwrap(),
                    SeedSpec::Density {
                        color: Color::new(1),
                        palette: 4,
                        fraction,
                        rng_seed: 2011,
                    },
                )
            })
        })
        .collect();
    let harness = harness();
    let wait_all = |handles: Vec<JobHandle>| -> Vec<RunOutcome> {
        handles
            .into_iter()
            .map(|mut h| (*h.wait().expect("job must finish")).clone())
            .collect()
    };
    let local = wait_all(
        harness
            .local
            .submit_sweep(&grid, SubmitOptions::default())
            .unwrap(),
    );
    let remote = wait_all(
        harness
            .remote
            .submit_sweep(&grid, SubmitOptions::default())
            .unwrap(),
    );
    assert_eq!(local, remote);
    for (spec, outcome) in grid.iter().zip(&local) {
        assert_eq!(
            *outcome,
            Runner::with_threads(1).execute(spec),
            "order kept"
        );
    }
}
