//! The service error type.
//!
//! One enum covers the whole stack — scheduler admission, job lifecycle,
//! wire-protocol framing, and transport I/O — and implements
//! [`std::error::Error`] with `source()` chaining, so binaries compose it
//! with `Box<dyn Error>` and `?` throughout.  Server-side errors cross
//! the wire as `ERR <code> <message>` lines and are rebuilt on the client
//! as [`ServiceError::Remote`].

use crate::job::{JobId, JobState};
use ctori_engine::{OutcomeParseError, SpecParseError};

/// Anything that can go wrong between a client call and its outcome.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// A transport-level I/O failure.
    Io(std::io::Error),
    /// The submission queue is at capacity; retry later.
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// No job with that id was ever submitted here.
    UnknownJob(JobId),
    /// The job has not reached a terminal state yet.
    NotFinished {
        /// The job in question.
        id: JobId,
        /// Its current state.
        state: JobState,
    },
    /// The job cannot be cancelled in its current state (only queued jobs
    /// can).
    NotCancellable {
        /// The job in question.
        id: JobId,
        /// Its current state.
        state: JobState,
    },
    /// The job's execution failed.
    JobFailed {
        /// The job in question.
        id: JobId,
        /// The failure message recorded by the worker.
        message: String,
    },
    /// The job was cancelled before it could run.
    JobCancelled(JobId),
    /// The scheduler is draining and accepts no new submissions.
    ShuttingDown,
    /// A client-side connect or read deadline expired before the server
    /// replied.  After a mid-request timeout the connection may hold a
    /// half-read reply and should be dropped, not reused.
    TimedOut,
    /// The transport dropped mid-conversation (broken pipe, reset, or an
    /// unexpected EOF where a reply was due).  Unlike [`ServiceError::Io`],
    /// this is a *reconnectable* condition: the peer address is still
    /// valid, the connection is not.  See [`crate::ServiceClient::reconnect`].
    ConnectionLost,
    /// A submitted spec failed to parse or validate.
    BadSpec(SpecParseError),
    /// An outcome payload failed to parse.
    BadOutcome(OutcomeParseError),
    /// Malformed wire data (unknown command, bad framing, bad token).
    Protocol(String),
    /// An `ERR` reply from the server, rebuilt client-side.
    Remote {
        /// The machine-readable error code.
        code: String,
        /// The human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} jobs)")
            }
            ServiceError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ServiceError::NotFinished { id, state } => {
                write!(f, "job {id} is not finished (currently {state})")
            }
            ServiceError::NotCancellable { id, state } => {
                write!(f, "job {id} cannot be cancelled while {state}")
            }
            ServiceError::JobFailed { id, message } => write!(f, "job {id} failed: {message}"),
            ServiceError::JobCancelled(id) => write!(f, "job {id} was cancelled"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::TimedOut => write!(f, "timed out waiting for the server"),
            ServiceError::ConnectionLost => {
                write!(f, "connection to the server was lost mid-conversation")
            }
            ServiceError::BadSpec(e) => write!(f, "bad run spec: {e}"),
            ServiceError::BadOutcome(e) => write!(f, "bad run outcome: {e}"),
            ServiceError::Protocol(detail) => write!(f, "protocol error: {detail}"),
            ServiceError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            ServiceError::BadSpec(e) => Some(e),
            ServiceError::BadOutcome(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<SpecParseError> for ServiceError {
    fn from(e: SpecParseError) -> Self {
        ServiceError::BadSpec(e)
    }
}

impl From<OutcomeParseError> for ServiceError {
    fn from(e: OutcomeParseError) -> Self {
        ServiceError::BadOutcome(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn errors_display_and_chain() {
        let e = ServiceError::QueueFull { capacity: 8 };
        assert!(e.to_string().contains("8"));
        let e: ServiceError = ctori_engine::RunSpec::from_text("junk").unwrap_err().into();
        assert!(e.source().is_some(), "spec errors chain through source()");
        let boxed: Box<dyn Error> = Box::new(e);
        assert!(boxed.to_string().contains("bad run spec"));
        let e: ServiceError = ctori_engine::RunOutcome::from_text("junk")
            .unwrap_err()
            .into();
        assert!(e.source().is_some());
        let io: ServiceError = std::io::Error::other("boom").into();
        assert!(io.source().is_some());
    }
}
