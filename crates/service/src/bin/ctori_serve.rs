//! `ctori-serve` — the simulation service binary.
//!
//! ```text
//! ctori-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--retain N]
//! ```
//!
//! Binds the TCP front-end (default `127.0.0.1:7171`; port `0` picks an
//! ephemeral port, printed on startup), serves until a client issues
//! `SHUTDOWN`, drains every admitted job, prints the final counters and
//! exits `0`.

use ctori_service::{SchedulerConfig, Server, ServiceConfig};
use std::error::Error;

fn usage() -> ! {
    eprintln!(
        "usage: ctori-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--retain N]\n\
         \n\
         --addr     listen address (default 127.0.0.1:7171; port 0 = ephemeral)\n\
         --workers  worker-pool size (default: available parallelism, capped at 16)\n\
         --queue    submission-queue bound (default 1024)\n\
         --cache    result-cache capacity in outcomes (default 256; 0 disables)\n\
         --retain   terminal job records kept for STATUS/RESULT (default 4096)"
    );
    std::process::exit(2);
}

fn parse_args() -> Result<ServiceConfig, Box<dyn Error>> {
    let mut config = ServiceConfig {
        addr: "127.0.0.1:7171".into(),
        scheduler: SchedulerConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> Result<String, Box<dyn Error>> {
            args.next()
                .ok_or_else(|| format!("{flag} needs {what}").into())
        };
        match flag.as_str() {
            "--addr" => config.addr = value("HOST:PORT")?,
            "--workers" => config.scheduler.workers = value("a count")?.parse()?,
            "--queue" => config.scheduler.queue_capacity = value("a bound")?.parse()?,
            "--cache" => config.scheduler.cache_capacity = value("a capacity")?.parse()?,
            "--retain" => config.scheduler.retain_jobs = value("a bound")?.parse()?,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    Ok(config)
}

fn main() -> Result<(), Box<dyn Error>> {
    let config = parse_args()?;
    let server = Server::bind(config)?;
    // The smoke test greps this line for the bound (possibly ephemeral)
    // address, so keep its shape stable.
    println!("ctori-serve listening on {}", server.local_addr()?);
    let stats = server.serve()?;
    println!(
        "ctori-serve drained: {} done, {} failed, {} cancelled, cache {}/{} hits",
        stats.done,
        stats.failed,
        stats.cancelled,
        stats.cache.hits,
        stats.cache.hits + stats.cache.misses,
    );
    Ok(())
}
